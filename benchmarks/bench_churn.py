"""Churn-replay benchmark: Internet-scale fixture, correctness-gated.

The workload-ingestion tentpole's acceptance run: the checked-in
``amsix2014`` fixture (Table 1 scale — 160 members, >100k prefixes,
paper-calibrated announcement skew derived from the data, not knobs)
replays the two heaviest churn scenarios end-to-end through a single
controller under the event-loop runtime:

* a **failover storm** — a mid-tier transit's session dies, its whole
  table (primaries and the backup routes it carries as a transit)
  drains in bursts, then returns with path-prepended re-announcements;
* a **correlated withdrawal** — a shared upstream failure pulls
  overlapping prefix slices from the six heaviest members in the same
  bursts, with staggered per-member recovery.

The PR-5 differential oracle samples router-faithful probes plus the
structural invariant sweep throughout, and periodic full guarded
compilations exercise the §4.3.2 background re-optimization mid-storm.

Unlike the latency/compile benchmarks, the gate here is *correctness*,
not speed: zero probe mismatches and zero invariant violations, plus
byte-deterministic workload shape (same members, prefixes, events, and
bursts as the checked-in baseline — the generators are seed-stable
across processes and hash seeds).  Throughput numbers are reported for
information only; they never fail the gate.

Run standalone to (re)generate the checked-in baseline::

    PYTHONPATH=src python benchmarks/bench_churn.py --emit benchmarks/BENCH_churn.json

or as the CI regression gate::

    PYTHONPATH=src python benchmarks/bench_churn.py --check benchmarks/BENCH_churn.json
"""

import argparse
import json
import sys
import time

from _report import emit

from repro.core.config import SDXConfig
from repro.core.controller import SDXController
from repro.guard import GuardConfig
from repro.runtime import RuntimeConfig
from repro.workloads.policy_gen import generate_policies
from repro.workloads.providers import load_fixture
from repro.workloads.scenarios import ScenarioSpec, build_scenario_trace, replay

FIXTURE = "amsix2014"
SEED = 11
PROBE_BUDGET = 16  # the commit guard's probe pass on every forced compile
PROBES = 24  # oracle probes per mid-replay verification pass
VERIFY_EVERY = 4  # bursts between verification passes
RECOMPILE_EVERY = 8  # bursts between forced full (guarded) compilations

#: The failover-storm victim: a mid-tier transit, so the storm is heavy
#: (hundreds of routes, both primary and backup) without replaying the
#: top announcer's 58k-route table through the Python fast path.
VICTIM = "AS7018"

SCENARIOS = (
    ScenarioSpec(
        name="failover-storm",
        kind="failover-storm",
        seed=SEED,
        params={"victim": VICTIM, "waves": 1, "burst_size": 120, "churn_per_burst": 4},
    ),
    ScenarioSpec(
        name="correlated-withdrawal",
        kind="correlated-withdrawal",
        seed=SEED + 1,
        params={"members": 6, "waves": 2, "slice_size": 40},
    ),
)


def _skew(ixp):
    """Announcement-share skew, Table 1 style: top 1% vs bottom 90%."""
    counts = sorted((len(v) for v in ixp.announced.values()), reverse=True)
    total = sum(counts)
    top = max(1, round(0.01 * len(counts)))
    bottom = round(0.10 * len(counts))
    return {
        "top_1pct_share": sum(counts[:top]) / total,
        "bottom_90pct_share": sum(counts[bottom:]) / total,
    }


def _controller(ixp):
    controller = SDXController(
        ixp.config,
        sdx=SDXConfig(
            runtime_mode="eventloop",
            runtime_config=RuntimeConfig(coalesce=True),
            guard=GuardConfig(probe_budget=PROBE_BUDGET, seed=SEED),
        ),
    )
    controller.route_server.load(ixp.updates)
    workload = generate_policies(ixp, seed=SEED + 1)
    with controller.deferred_recompilation():
        for name, policy_set in workload.policies.items():
            controller.policy.set_policies(name, policy_set)
    return controller


def run_benchmark():
    started = time.perf_counter()
    ixp = load_fixture(FIXTURE).build()
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    controller = _controller(ixp)
    compile_seconds = time.perf_counter() - started

    scenarios = {}
    for spec in SCENARIOS:
        trace = build_scenario_trace(ixp, spec)
        report = replay(
            controller,
            trace.updates,
            scenario=spec.name,
            verify_every=VERIFY_EVERY,
            probes=PROBES,
            seed=SEED,
            recompile_every=RECOMPILE_EVERY,
        )
        scenarios[spec.name] = {
            "events": report.events,
            "bursts": report.bursts,
            "commits": report.commits,
            "verify_passes": report.verify_passes,
            "probes_checked": report.probes_checked,
            "mismatches": report.mismatches,
            "violations": report.violations,
            "seconds": report.seconds,
            "updates_per_sec": report.events / report.seconds,
        }
    return {
        "workload": {
            "fixture": FIXTURE,
            "seed": SEED,
            "participants": len(ixp.config),
            "prefixes": sum(len(v) for v in ixp.announced.values()),
            "skew": _skew(ixp),
            "victim": VICTIM,
        },
        "setup": {
            "build_seconds": build_seconds,
            "initial_compile_seconds": compile_seconds,
            "initial_rules": len(controller.switch.table),
        },
        "scenarios": scenarios,
    }


def print_result(result):
    workload = result["workload"]
    setup = result["setup"]
    skew = workload["skew"]
    print(
        f"\n== Churn replay on {workload['fixture']}: "
        f"{workload['participants']} members, {workload['prefixes']:,} "
        f"prefixes (top 1% announce {skew['top_1pct_share']:.0%}, "
        f"bottom 90% {skew['bottom_90pct_share']:.1%}) =="
    )
    print(
        f"  setup: fixture {setup['build_seconds']:.1f} s, initial compile "
        f"{setup['initial_compile_seconds']:.1f} s "
        f"({setup['initial_rules']:,} rules)"
    )
    for name, row in result["scenarios"].items():
        verdict = (
            "clean"
            if row["mismatches"] == 0 and row["violations"] == 0
            else f"{row['mismatches']} mismatches, {row['violations']} violations"
        )
        print(
            f"  {name}: {row['events']} updates in {row['bursts']} bursts, "
            f"{row['commits']} commits, {row['verify_passes']} verify passes "
            f"({row['probes_checked']} probes): {verdict}; "
            f"{row['updates_per_sec']:,.0f} updates/s"
        )


def check_against_baseline(result, baseline):
    """CI gate: zero incorrectness, identical deterministic workload shape.

    Timing is machine-dependent and stays informational; the failure
    conditions are (a) any probe mismatch or invariant violation and
    (b) the replayed workload drifting from the baseline's shape — the
    fixture ingestion and scenario builders are seed-deterministic, so
    any drift means a silent generator or provider change.
    """
    failures = []
    for name, row in result["scenarios"].items():
        for metric in ("mismatches", "violations"):
            status = "ok" if row[metric] == 0 else "FAIL"
            print(f"  {name}.{metric}: {row[metric]} {status}")
            if row[metric] != 0:
                failures.append(f"{name}.{metric}")
    shape = [
        ("workload", "participants"),
        ("workload", "prefixes"),
    ] + [("scenarios", name, key) for name in result["scenarios"] for key in ("events", "bursts")]
    for path in shape:
        measured, reference = result, baseline
        for key in path:
            measured = measured[key]
            reference = reference[key]
        label = ".".join(path)
        status = "ok" if measured == reference else "DRIFTED"
        print(f"  {label}: measured {measured} vs baseline {reference} {status}")
        if measured != reference:
            failures.append(label)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_churn.py",
        description="Internet-scale churn replay, gated on correctness",
    )
    parser.add_argument(
        "--emit", metavar="PATH", help="write the result JSON (the baseline file)"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on any mismatch, "
        "invariant violation, or workload-shape drift",
    )
    options = parser.parse_args(argv)

    result = run_benchmark()
    print_result(result)
    if options.emit:
        with open(options.emit, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {options.emit}")
    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        print(f"\n== Churn gate vs {options.check} ==")
        failures = check_against_baseline(result, baseline)
        if failures:
            print(f"FAIL: churn gate: {', '.join(failures)}")
            return 1
        print("gate passed")
    return 0


# -- pytest-benchmark wrapper (make bench) ----------------------------------


def test_churn_replay(benchmark):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    emit(lambda: print_result(result))
    for row in result["scenarios"].values():
        assert row["mismatches"] == 0
        assert row["violations"] == 0
        assert row["verify_passes"] >= 1 and row["probes_checked"] > 0


if __name__ == "__main__":
    sys.exit(main())
