"""Baseline benchmark: naive per-prefix compilation vs the VMAC scheme.

Quantifies the Section 4.2 motivation — without forwarding equivalence
classes the rule table scales with the routing table, not the policy
structure.  Prints the side-by-side rule counts and asserts the gap
widens with the prefix count.
"""

from _report import emit

from repro.experiments import baseline

SWEEP = ((25, 500), (35, 1000), (45, 1500))


def test_naive_vs_vmac_compilation(benchmark):
    result = benchmark.pedantic(
        baseline.run, kwargs={"sweep": SWEEP}, rounds=1, iterations=1
    )
    emit(result.print)
    ratios = [naive / max(vmac, 1) for _, _, naive, vmac, _, _ in result.rows]
    assert all(ratio > 2.0 for ratio in ratios), "VMAC must reduce state"
    # the naive table keeps growing with the routing table
    naive_counts = [naive for _, _, naive, _, _, _ in result.rows]
    assert naive_counts == sorted(naive_counts)
