"""Compilation benchmark: superset-VMAC compression at AMS-IX scale.

Section 5.3's case for the superset encoding is a state argument: with
attribute-carrying VMACs, one masked match covers every forwarding
class that shares an announcer roster, so fabric rule count tracks the
number of *rosters* instead of the number of *FEC groups*.  This
benchmark measures that claim directly at the paper's headline scale —
300 participants and 100,000 prefixes — by compiling one synthetic
exchange twice, once per VMAC encoding, and comparing fabric size and
compile latency.

The route table is constructed (not sampled) so the group/roster split
is controlled: ``ROSTERS`` distinct announcer pairs, each appearing in
``VARIANTS`` BGP-attribute variants with disjoint export scopes.  Every
variant is a separate forwarding-equivalence class — the per-FEC
encoder must spend exact-match rules on each — while all variants of a
roster share superset positions, so the superset encoder covers them
with the same masked rules and a serial byte.  Outbound policies are
the §6.1 port-based mix aimed at the popular announcers, which is
where per-FEC rule expansion actually hurts.

Run standalone to (re)generate the checked-in baseline::

    PYTHONPATH=src python benchmarks/bench_compile.py --emit benchmarks/BENCH_compile.json

or as the CI regression gate, which fails when the compression ratio
falls below the 5x floor or the (deterministic) fabric sizes drift
from the baseline::

    PYTHONPATH=src python benchmarks/bench_compile.py --check benchmarks/BENCH_compile.json
"""

import argparse
import json
import sys
import time

from _report import emit

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.bgp.route_server import RouteServer
from repro.core.compiler import CompilationOptions, SDXCompiler
from repro.core.participant import SDXPolicySet
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Prefix
from repro.policy.language import fwd, match, parallel
from repro.workloads.prefixes import allocate_prefix_pool

PARTICIPANTS = 300
PREFIXES = 100_000
#: /24 pool wide enough for the 100k-prefix census (10.0.0.0/8 caps at 65,536).
PREFIX_POOL_ROOT = IPv4Prefix("10.0.0.0/7")

#: Heavily-announced targets the §6.1 policies aim at; every roster
#: pairs one of these with a unique filler participant.
POPULAR = 16
ROSTERS = 160
#: BGP-attribute variants per roster: each gets its own export scope,
#: hence its own fingerprint, hence its own FEC group.
VARIANTS = 12
SENDERS = 40
CLAUSES_PER_SENDER = 2
APP_PORTS = (80, 443)

#: Measured compile rounds per encoding (p50/p99 come from these).
MEASURE_ROUNDS = 3

#: The acceptance floor: superset must install at least 5x fewer
#: fabric rules than per-FEC at this scale.
COMPRESSION_FLOOR = 5.0


def _participant_name(index):
    return f"AS{index + 1:03d}"


def build_exchange():
    """The controlled-roster exchange: config, loaded RIB, policies."""
    config = IXPConfig(vnh_pool="172.16.0.0/12")
    for index in range(PARTICIPANTS):
        name = _participant_name(index)
        host = index * 4 + 1
        address = f"172.{(host >> 16) & 0x0F}.{(host >> 8) & 0xFF}.{host & 0xFF}"
        hardware = f"08:00:27:{(index >> 8) & 0xFF:02x}:{index & 0xFF:02x}:01"
        config.add_participant(
            name, asn=65001 + index, ports=[(f"{name}-p1", address, hardware)]
        )

    names = [_participant_name(index) for index in range(PARTICIPANTS)]
    populars = names[:POPULAR]
    fillers = names[POPULAR:]
    everyone = frozenset(names)

    # Announcements: class c = (roster r, variant v).  Roster r pairs
    # popular[r % POPULAR] (primary, shorter AS path) with filler[r]
    # (backup).  Variant v shrinks the export scope by one bystander
    # filler — enough to split the BGP fingerprint without changing
    # what any policy participant can reach.
    pool = allocate_prefix_pool(PREFIXES, root=PREFIX_POOL_ROOT)
    classes = ROSTERS * VARIANTS
    announcements = {name: [] for name in names}
    for index, prefix in enumerate(pool):
        roster, variant = divmod(index % classes, VARIANTS)
        primary = config.participant(populars[roster % POPULAR])
        backup = config.participant(fillers[roster])
        scope = everyone - {fillers[ROSTERS + variant]}
        origin_as = 64512 + roster
        announcements[primary.name].append(
            Announcement(
                prefix,
                RouteAttributes(
                    as_path=[primary.asn, origin_as],
                    next_hop=primary.ports[0].address,
                ),
                export_to=scope,
            )
        )
        announcements[backup.name].append(
            Announcement(
                prefix,
                RouteAttributes(
                    as_path=[backup.asn, 64700, origin_as],
                    next_hop=backup.ports[0].address,
                ),
                export_to=scope,
            )
        )

    route_server = RouteServer()
    for name in names:
        route_server.add_peer(name, asn=config.participant(name).asn)
    loaded = time.perf_counter()
    route_server.load(
        BGPUpdate(name, announced=batch)
        for name, batch in announcements.items()
        if batch
    )
    load_seconds = time.perf_counter() - loaded

    # §6.1 port-based outbound mix: senders deflect application ports
    # toward the popular announcers, round-robin.
    policies = {}
    senders = fillers[ROSTERS + VARIANTS : ROSTERS + VARIANTS + SENDERS]
    for rank, sender in enumerate(senders):
        clauses = [
            match(dstport=APP_PORTS[clause]) >> fwd(
                populars[(rank * CLAUSES_PER_SENDER + clause) % POPULAR]
            )
            for clause in range(CLAUSES_PER_SENDER)
        ]
        policies[sender] = SDXPolicySet(outbound=parallel(*clauses))
    return config, route_server, policies, load_seconds


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def measure_mode(vmac_mode, config, route_server, policies):
    """Compile ``MEASURE_ROUNDS`` times under one encoding; summarize."""
    latencies = []
    result = None
    for _ in range(MEASURE_ROUNDS):
        compiler = SDXCompiler(
            config,
            route_server,
            CompilationOptions(build_advertisements=False),
            vmac_mode=vmac_mode,
        )
        started = time.perf_counter()
        result = compiler.compile(policies)
        latencies.append(time.perf_counter() - started)
    p50 = _percentile(latencies, 0.50)
    return {
        "rules": len(result.classifier),
        "fec_groups": len(result.fec_table.affected_groups),
        "compile_p50_ms": p50 * 1e3,
        "compile_p99_ms": _percentile(latencies, 0.99) * 1e3,
        "rules_per_sec": len(result.classifier) / p50 if p50 else None,
    }


def run_benchmark():
    config, route_server, policies, load_seconds = build_exchange()
    modes = {}
    for vmac_mode in ("fec", "superset"):
        modes[vmac_mode] = measure_mode(vmac_mode, config, route_server, policies)
    ratio = modes["fec"]["rules"] / modes["superset"]["rules"]
    return {
        "workload": {
            "participants": PARTICIPANTS,
            "prefixes": PREFIXES,
            "rosters": ROSTERS,
            "variants_per_roster": VARIANTS,
            "popular_targets": POPULAR,
            "senders": SENDERS,
            "clauses_per_sender": CLAUSES_PER_SENDER,
            "rib_load_seconds": load_seconds,
        },
        "modes": modes,
        "compression": {"ratio": ratio, "floor": COMPRESSION_FLOOR},
    }


def print_result(result):
    workload = result["workload"]
    print(
        f"\n== Compile scaling: {workload['participants']} participants, "
        f"{workload['prefixes']:,} prefixes "
        f"({workload['rosters']} rosters x {workload['variants_per_roster']} variants) =="
    )
    for vmac_mode in ("fec", "superset"):
        mode = result["modes"][vmac_mode]
        print(
            f"  {vmac_mode:>8}: {mode['rules']:>6} fabric rules over "
            f"{mode['fec_groups']} groups, compile p50 {mode['compile_p50_ms']:,.0f} ms / "
            f"p99 {mode['compile_p99_ms']:,.0f} ms, {mode['rules_per_sec']:,.0f} rules/s"
        )
    compression = result["compression"]
    print(
        f"== Compression: {compression['ratio']:.1f}x fewer rules with supersets "
        f"(floor {compression['floor']:.0f}x) =="
    )


def check_against_baseline(result, baseline):
    """CI gate: the compression floor, and no silent fabric-size drift.

    Compilation is deterministic, so rule counts are gated exactly — a
    changed count is a behavioral change that must re-emit the
    baseline, not noise.  Latencies are printed but never gated; CI
    machines are too variable for wall-clock ceilings.
    """
    failures = []
    ratio = result["compression"]["ratio"]
    floor = baseline["compression"]["floor"]
    status = "ok" if ratio >= floor else "REGRESSED"
    print(f"  compression ratio: measured {ratio:.2f} vs floor {floor:.2f} {status}")
    if ratio < floor:
        failures.append("compression_ratio")
    for vmac_mode in ("fec", "superset"):
        measured = result["modes"][vmac_mode]["rules"]
        reference = baseline["modes"][vmac_mode]["rules"]
        status = "ok" if measured == reference else "DRIFTED"
        print(f"  {vmac_mode} fabric rules: measured {measured} vs baseline {reference} {status}")
        if measured != reference:
            failures.append(f"{vmac_mode}_rules")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_compile.py",
        description="superset-vs-per-FEC compilation benchmark (300p / 100k prefixes)",
    )
    parser.add_argument(
        "--emit", metavar="PATH", help="write the result JSON (the baseline file)"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 below the 5x floor or on rule drift",
    )
    options = parser.parse_args(argv)

    result = run_benchmark()
    print_result(result)
    if options.emit:
        with open(options.emit, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {options.emit}")
    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        print(f"\n== Compression gate vs {options.check} ==")
        failures = check_against_baseline(result, baseline)
        if failures:
            print(f"FAIL: compile benchmark regressed: {', '.join(failures)}")
            return 1
        print("gate passed")
    return 0


# -- pytest-benchmark wrapper (make bench) ----------------------------------


def test_superset_compression_at_scale(benchmark):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    emit(lambda: print_result(result))
    # the ISSUE acceptance floor: >= 5x fewer fabric rules at 300/100k
    assert result["compression"]["ratio"] >= COMPRESSION_FLOOR
    # both encodings compiled the same forwarding classes
    assert (
        result["modes"]["fec"]["fec_groups"]
        == result["modes"]["superset"]["fec_groups"]
    )


if __name__ == "__main__":
    sys.exit(main())
