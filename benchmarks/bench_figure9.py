"""Figure 9 benchmark: additional forwarding rules after update bursts.

Replays worst-case BGP bursts (every update flips a best path) against
a compiled SDX and prints the (burst size, additional rules) series;
asserts the linear growth and participant-dependent slope the paper
shows.
"""

from _report import emit

from repro.experiments import figure9

PARTICIPANTS = (50, 100)
BURSTS = (5, 10, 20, 40)


def test_figure9_additional_rules(benchmark):
    result = benchmark.pedantic(
        figure9.run,
        kwargs={
            "participants_sweep": PARTICIPANTS,
            "burst_sizes": BURSTS,
            "prefixes_per_participant": 10,
        },
        rounds=1,
        iterations=1,
    )
    emit(result.print)
    for participants in PARTICIPANTS:
        points = result.series[participants]
        extras = [extra for _, extra in points]
        assert extras == sorted(extras), "rule inflation must grow with burst size"
        per_update = [extra / burst for burst, extra in points]
        assert max(per_update) < 3 * min(per_update), "growth should be linear"
    # slope grows with participant count
    small = dict(result.series[PARTICIPANTS[0]])
    large = dict(result.series[PARTICIPANTS[1]])
    shared = set(small) & set(large)
    assert all(large[burst] > small[burst] for burst in shared)
