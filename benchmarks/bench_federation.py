"""Federation benchmark: relay propagation, sweep cost, failover latency.

Three questions decide whether the federation layer scales past a demo:

1. **What does relay convergence cost?**  A synthetic federation is
   generated unconverged and :meth:`FederatedExchange.sync` is timed —
   the full fixpoint over every inter-IXP link, from cold.
2. **What does the federation-wide verification sweep cost?**  The
   cross-exchange invariant checkers walk every (prefix, flow) pair of
   the re-entry graph plus per-exchange differential probes; its
   latency bounds how often an operator can afford to run it.
3. **How fast does a backhaul failover re-converge?**  One inter-IXP
   link fails; the time to withdraw, re-sync the surviving relays, and
   recompile every member exchange is the federation's recovery floor.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_federation.py

or via pytest-benchmark (``make bench``).
"""

import argparse
import json
import sys
import time

from _report import emit

from repro.verify import FederationChecker
from repro.workloads import generate_federation

EXCHANGES = 3
PARTICIPANTS = 6
TRANSITS = 2
PREFIXES_EACH = 3
SEED = 7
SWEEP_PROBES = 32


def measure_sync():
    synthetic = generate_federation(
        exchanges=EXCHANGES,
        participants_per_exchange=PARTICIPANTS,
        transits=TRANSITS,
        prefixes_per_participant=PREFIXES_EACH,
        seed=SEED,
        converge=False,
    )
    federation = synthetic.federation
    started = time.perf_counter()
    updates = federation.sync()
    sync_seconds = time.perf_counter() - started
    started = time.perf_counter()
    federation.compile_all()
    compile_seconds = time.perf_counter() - started
    return federation, {
        "exchanges": len(federation),
        "links": len(federation.links()),
        "prefixes": len(synthetic.prefixes),
        "relayed_updates": updates,
        "sync_ms": sync_seconds * 1e3,
        "compile_all_ms": compile_seconds * 1e3,
        "updates_per_sec": updates / sync_seconds if sync_seconds else None,
    }


def measure_sweep(federation):
    checker = FederationChecker(federation)
    started = time.perf_counter()
    report = checker.sweep(probes=SWEEP_PROBES)
    seconds = time.perf_counter() - started
    return report, {
        "probes_per_exchange": SWEEP_PROBES,
        "traces": len(report.traces),
        "violations": len(report.violations),
        "ok": report.ok,
        "sweep_ms": seconds * 1e3,
    }


def measure_failover(federation):
    link = next(link for link in federation.links() if link.relayed_prefixes())
    started = time.perf_counter()
    withdrawn = link.fail()
    federation.sync()
    federation.compile_all()
    seconds = time.perf_counter() - started
    link.restore()
    federation.sync()
    federation.compile_all()
    return {
        "failed_link": link.name,
        "withdrawn_routes": withdrawn,
        "reconverge_ms": seconds * 1e3,
    }


def run_benchmark():
    federation, sync_result = measure_sync()
    report, sweep_result = measure_sweep(federation)
    assert report.ok, report.summary()
    failover_result = measure_failover(federation)
    return {
        "workload": {
            "exchanges": EXCHANGES,
            "participants_per_exchange": PARTICIPANTS,
            "transits": TRANSITS,
            "prefixes_per_participant": PREFIXES_EACH,
            "seed": SEED,
        },
        "sync": sync_result,
        "sweep": sweep_result,
        "failover": failover_result,
    }


def print_result(result):
    sync = result["sync"]
    sweep = result["sweep"]
    failover = result["failover"]
    print(
        f"\n== Federation: {sync['exchanges']} exchanges, {sync['links']} links, "
        f"{sync['prefixes']} prefixes =="
    )
    print(
        f"  cold sync: {sync['relayed_updates']} relayed updates in "
        f"{sync['sync_ms']:.2f} ms ({sync['updates_per_sec']:,.0f}/s); "
        f"compile_all {sync['compile_all_ms']:.2f} ms"
    )
    print(
        f"  sweep: {sweep['probes_per_exchange']} probes/exchange + "
        f"{sweep['traces']} e2e traces in {sweep['sweep_ms']:.2f} ms "
        f"(ok={sweep['ok']})"
    )
    print(
        f"  failover: {failover['failed_link']} down -> "
        f"{failover['withdrawn_routes']} withdrawn, re-converged in "
        f"{failover['reconverge_ms']:.2f} ms"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_federation.py",
        description="inter-IXP relay, sweep, and failover benchmark",
    )
    parser.add_argument(
        "--emit", metavar="PATH", help="write the result JSON"
    )
    options = parser.parse_args(argv)

    result = run_benchmark()
    print_result(result)
    if options.emit:
        with open(options.emit, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"result written to {options.emit}")
    return 0


# -- pytest-benchmark wrapper (make bench) ----------------------------------


def test_federation_sync_sweep_and_failover(benchmark):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    emit(lambda: print_result(result))
    assert result["sweep"]["ok"]
    assert result["sync"]["relayed_updates"] > 0
    assert result["failover"]["withdrawn_routes"] > 0


if __name__ == "__main__":
    sys.exit(main())
