"""Benchmark-suite conftest: reporting that survives pytest capture."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import _report


def pytest_configure(config):
    _report._set_capture_manager(config.pluginmanager.getplugin("capturemanager"))
