"""Resilience benchmark: fast-path recompilation under a flap storm.

Subjects a compiled synthetic exchange to a withdraw/re-announce storm
on a handful of victim prefixes and measures the recompilation load —
fast-path waves and time spent recompiling — with and without RFC 2439
flap damping in front of the incremental compiler.  Undamped, every
flap costs a recompilation; damped, each victim is suppressed after its
first cycle and the storm degenerates to bookkeeping.
"""

import time

from _report import emit

from repro.experiments.common import build_scenario, format_table
from repro.resilience import DampingConfig, LivenessConfig
from repro.sim.clock import Simulator

PARTICIPANTS = 50
PREFIXES = 200
VICTIMS = 6
CYCLES = 25

#: Liveness supervision present but inert (the storm is update-plane only).
_INERT_LIVENESS = LivenessConfig(hold_time=10.0**9, restart_time=10.0**9)


def _flap_targets(controller, count):
    """(peer, prefix, attributes) triples to withdraw and re-announce."""
    server = controller.route_server
    targets = []
    for prefix in sorted(server.all_prefixes(), key=str):
        ranked = server.ranked_routes(prefix)
        if not ranked:
            continue
        best = ranked[0]
        targets.append((best.learned_from, prefix, best.attributes))
        if len(targets) == count:
            break
    return targets


def _run_storm(damped):
    scenario = build_scenario(PARTICIPANTS, PREFIXES, seed=3)
    controller = scenario.controller()
    controller.compile()
    if damped:
        controller.enable_resilience(
            clock=Simulator(), damping=DampingConfig(), liveness=_INERT_LIVENESS
        )
    targets = _flap_targets(controller, VICTIMS)
    started = time.perf_counter()
    for _ in range(CYCLES):
        for peer, prefix, attributes in targets:
            controller.routing.withdraw(peer, prefix)
            controller.routing.announce(peer, prefix, attributes)
    storm_seconds = time.perf_counter() - started
    log = controller.ops.fast_path_log
    return {
        "waves": len(log),
        "recompile_seconds": sum(update.seconds for update in log),
        "storm_seconds": storm_seconds,
        "suppressed": (
            controller.resilience.suppressed_changes if controller.resilience else 0
        ),
    }


def _run():
    return {"undamped": _run_storm(False), "damped": _run_storm(True)}


def test_flap_storm_recompilation_with_and_without_damping(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    undamped, damped = result["undamped"], result["damped"]

    def _print():
        print(
            f"\n== Flap storm: {VICTIMS} victims x {CYCLES} cycles, "
            f"{PARTICIPANTS} participants =="
        )
        print(
            format_table(
                ["mode", "recompilation waves", "recompile s", "storm s", "suppressed"],
                [
                    (
                        mode,
                        stats["waves"],
                        f"{stats['recompile_seconds']:.3f}",
                        f"{stats['storm_seconds']:.3f}",
                        stats["suppressed"],
                    )
                    for mode, stats in (("undamped", undamped), ("damped", damped))
                ],
            )
        )

    emit(_print)
    # Undamped: every withdraw and every re-announce recompiles.
    assert undamped["waves"] == 2 * CYCLES * VICTIMS
    assert undamped["suppressed"] == 0
    # Damped: suppression engages after each victim's first full cycle.
    assert damped["waves"] < undamped["waves"] / 4
    assert damped["suppressed"] > 0
