"""Micro-benchmarks for the hot kernels under the macro experiments.

Not a paper artifact — these locate where compile time goes (classifier
composition, MDS, trie lookups, route-server updates) and guard against
performance regressions in the substrate.
"""

import random

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.bgp.route_server import RouteServer
from repro.core.fec import minimum_disjoint_subsets
from repro.netutils.ip import IPv4Address, IPv4Prefix, PrefixTrie
from repro.policy import Packet, fwd, match


def test_policy_compilation_speed(benchmark):
    policy = None
    for port in (80, 443, 8080, 1935, 8443):
        clause = match(dstport=port) >> fwd(f"P{port}")
        policy = clause if policy is None else policy + clause
    result = benchmark(policy.compile)
    assert len(result) == 5


def test_classifier_sequential_composition(benchmark):
    stage1 = None
    for port in range(20):
        clause = match(dstport=port) >> fwd(f"mid{port % 4}")
        stage1 = clause if stage1 is None else stage1 + clause
    stage2 = None
    for index in range(4):
        clause = match(port=f"mid{index}") >> fwd(f"out{index}")
        stage2 = clause if stage2 is None else stage2 + clause
    c1, c2 = stage1.compile(), stage2.compile()
    result = benchmark(lambda: c1 >> c2)
    assert len(result) >= 20


def test_prefix_trie_longest_match(benchmark):
    rng = random.Random(3)
    trie = PrefixTrie()
    for index in range(10_000):
        trie[IPv4Prefix((10 << 24) + index * 256, 24)] = index
    probes = [IPv4Address((10 << 24) + rng.randrange(10_000 * 256)) for _ in range(100)]

    def lookup_all():
        return [trie.longest_match(address) for address in probes]

    results = benchmark(lookup_all)
    assert all(result is not None for result in results)


def test_route_server_update_throughput(benchmark):
    server = RouteServer()
    for index in range(50):
        server.add_peer(f"AS{index}")
    updates = []
    rng = random.Random(5)
    for index in range(500):
        peer = f"AS{rng.randrange(50)}"
        prefix = IPv4Prefix((10 << 24) + index * 256, 24)
        updates.append(
            BGPUpdate(
                peer,
                announced=[
                    Announcement(
                        prefix,
                        RouteAttributes(as_path=[64512 + index % 100], next_hop="172.0.0.1"),
                    )
                ],
            )
        )

    def load():
        fresh = RouteServer()
        for index in range(50):
            fresh.add_peer(f"AS{index}")
        return fresh.load(updates)

    assert benchmark(load) == 500


def test_mds_signature_throughput(benchmark):
    rng = random.Random(7)
    universe = [IPv4Prefix((10 << 24) + i * 256, 24) for i in range(5000)]
    sets = [
        frozenset(rng.sample(universe, rng.randint(100, 1000))) for _ in range(40)
    ]
    groups = benchmark(lambda: minimum_disjoint_subsets(sets))
    assert groups


def test_flow_table_matching(benchmark):
    from repro.dataplane.flowtable import FlowRule, FlowTable
    from repro.policy.classifier import Action, HeaderMatch

    table = FlowTable()
    for index in range(500):
        table.install(
            FlowRule(index, HeaderMatch(dstport=index), (Action(port="out"),))
        )
    packet = Packet(dstport=250)
    rule = benchmark(lambda: table.lookup(packet))
    assert rule is not None


def test_fastpath_additional_rules_scan(benchmark):
    # Regression guard: additional_rules() must be one pass over the
    # table with a precomputed cookie set.  The old per-rule generator
    # rebuilt set(self._active.values()) for every table entry, turning
    # the scan quadratic once hundreds of prefixes were active.
    from types import SimpleNamespace

    from repro.core.incremental import FastPathEngine
    from repro.dataplane.flowtable import FlowRule, FlowTable
    from repro.policy.classifier import Action, HeaderMatch

    table = FlowTable()
    controller = SimpleNamespace(switch=SimpleNamespace(table=table))
    engine = FastPathEngine(controller)
    for index in range(400):
        prefix = IPv4Prefix((10 << 24) + index * 256, 24)
        cookie = ("fastpath", str(prefix), index)
        engine._active[prefix] = cookie
        for _ in range(3):
            table.install(
                FlowRule(index, HeaderMatch(dstport=index % 500), cookie=cookie)
            )
    for index in range(2000):  # base-table rules the scan must skip
        table.install(
            FlowRule(index, HeaderMatch(dstport=index % 500), cookie="base")
        )
    assert benchmark(engine.additional_rules) == 1200


def test_telemetry_overhead_under_five_percent():
    # The acceptance budget for the telemetry layer: instrumenting the
    # route server may not cost more than 5% on the update hot path.
    # Min-of-repeats on both sides squeezes out scheduler noise.
    import time

    from repro.telemetry import MetricsRegistry

    rng = random.Random(11)
    updates = []
    for index in range(600):
        peer = f"AS{rng.randrange(50)}"
        prefix = IPv4Prefix((10 << 24) + index * 256, 24)
        updates.append(
            BGPUpdate(
                peer,
                announced=[
                    Announcement(
                        prefix,
                        RouteAttributes(
                            as_path=[64512 + index % 100], next_hop="172.0.0.1"
                        ),
                    )
                ],
            )
        )

    def run_updates(registry):
        # process_update is the system's per-update hot path (decision
        # process + change notification), which is what the 5% budget
        # is defined against.
        server = RouteServer()
        for index in range(50):
            server.add_peer(f"AS{index}")
        if registry is not None:
            server.attach_telemetry(registry)
        for update in updates:
            server.process_update(update)

    def best_of(make_registry, repeats=7):
        times = []
        for _ in range(repeats):
            registry = make_registry()
            started = time.perf_counter()
            run_updates(registry)
            times.append(time.perf_counter() - started)
        return min(times)

    bare = best_of(lambda: None)
    instrumented = best_of(MetricsRegistry)
    bare = min(bare, best_of(lambda: None))  # interleave to dodge thermal drift
    assert instrumented <= bare * 1.05 + 5e-4, (
        f"telemetry overhead too high: {instrumented:.6f}s vs {bare:.6f}s bare"
    )


# -- compile-shard scaling (staged pipeline) ----------------------------------
#
# How per-participant shard compilation scales with exchange size, and
# whether the fork-pool backend actually buys anything.  Shard work is
# made heavy enough (dense destination-specific policies over many
# prefix groups) that it dominates the recompile; the pool comparison
# is asserted only on multicore hosts and reported everywhere.


def _sharded_controller(participants, backend):
    from repro.core.config import SDXConfig
    from repro.core.controller import SDXController
    from repro.experiments.common import build_scenario, scaling_policies

    scenario = build_scenario(
        participants=participants,
        prefixes=participants * 25,
        seed=participants,
        with_policies=False,
    )
    controller = SDXController(scenario.ixp.config, sdx=SDXConfig(backend=backend))
    controller.route_server.load(scenario.ixp.updates)
    policies = scaling_policies(
        scenario.ixp, participants * 12, chunk_size=2, senders=participants
    )
    with controller.deferred_recompilation():
        for name, policy_set in policies.items():
            controller.policy.set_policies(name, policy_set)
    return controller


def _recompile_all_shards(controller):
    controller.pipeline._shard_cache.clear()
    return controller.compile()


def _best_of(controller, rounds=3):
    import time

    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        _recompile_all_shards(controller)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


@pytest.mark.parametrize("participants", [2, 8, 32])
def test_compile_shard_scaling_serial(benchmark, participants):
    from repro.pipeline import SerialBackend

    controller = _sharded_controller(participants, SerialBackend())
    result = benchmark.pedantic(
        _recompile_all_shards, args=(controller,), rounds=3, warmup_rounds=1
    )
    assert result.segments


@pytest.mark.parametrize("participants", [8, 32])
def test_compile_shard_parallel_speedup(benchmark, participants):
    import os

    from _report import report

    from repro.pipeline import ParallelBackend, SerialBackend

    serial_best = _best_of(_sharded_controller(participants, SerialBackend()))
    parallel = _sharded_controller(participants, ParallelBackend(processes=2))
    benchmark.pedantic(_recompile_all_shards, args=(parallel,), rounds=3, warmup_rounds=1)
    parallel_best = _best_of(parallel)
    report(
        f"shard scaling: {participants} participants  "
        f"serial {serial_best * 1000:.0f} ms  "
        f"parallel(2) {parallel_best * 1000:.0f} ms  "
        f"speedup {serial_best / parallel_best:.2f}x"
    )
    if (os.cpu_count() or 1) >= 2:
        assert parallel_best < serial_best, (
            f"fork pool slower than serial at {participants} participants"
        )


# -- fabric reconciliation churn (delta committer) ------------------------------
#
# The payoff of rule-level delta reconciliation: editing one participant
# out of N recompiles in O(changed segment), not O(table).  The churn
# counters (controller.ops.churn()) make the claim measurable — the
# benchmark asserts the edit installed strictly fewer rules than the
# table holds and reports the retained fraction.


def test_fabric_reconciliation_churn(benchmark):
    from _report import report

    from repro.experiments.common import build_scenario
    from repro.workloads.policy_gen import generate_policies

    participants = 16
    scenario = build_scenario(
        participants=participants, prefixes=participants * 25, seed=3
    )
    controller = scenario.controller()
    table_total = len(controller.switch.table)
    alternate = generate_policies(scenario.ixp, seed=555)
    edited = next(
        name for name in alternate.policies if name in scenario.workload.policies
    )
    toggle = {"flip": False}

    def edit_one_participant():
        # Alternate between two policy sets so every round is a real edit.
        toggle["flip"] = not toggle["flip"]
        policy_set = (
            alternate.policies[edited]
            if toggle["flip"]
            else scenario.workload.policies[edited]
        )
        controller.policy.set_policies(edited, policy_set)
        return controller.ops.last_commit()

    last = benchmark.pedantic(edit_one_participant, rounds=5, warmup_rounds=1)
    stats = controller.ops.churn()
    per_commit_added = stats.added / max(1, stats.commits - 1)  # first build excluded
    report(
        f"reconciliation churn: edit 1/{participants} participants  "
        f"table {table_total} rules  "
        f"last commit added {last.added} removed {last.removed} "
        f"retained {last.retained} moved {last.reprioritized}  "
        f"commit {last.seconds * 1000:.1f} ms"
    )
    assert last.added < table_total, "single-participant edit rewrote the table"
    assert last.retained + last.reprioritized > 0
    assert per_commit_added < table_total
