"""Figure 6 benchmark: prefix groups vs prefixes with SDX policies.

Times the MDS sweep over the synthetic AMS-IX-like census and prints
the (prefixes, prefix groups) series for each participant count.  The
paper's qualitative claims — sub-linear growth, group counts far below
prefix counts, more groups with more participants — are asserted.
"""

from _report import emit

from repro.experiments import figure6

PARTICIPANTS = (100, 200, 300)
PREFIX_SWEEP = (1000, 2500, 5000, 10000, 15000)


def test_figure6_prefix_groups(benchmark):
    result = benchmark.pedantic(
        figure6.run,
        kwargs={
            "participants_sweep": PARTICIPANTS,
            "prefix_sweep": PREFIX_SWEEP,
            "total_prefixes": 20000,
        },
        rounds=1,
        iterations=1,
    )
    emit(result.print)
    for participants in PARTICIPANTS:
        points = result.series[participants]
        # groups stay far below the prefix count...
        for prefixes, groups in points:
            assert groups < prefixes / 2
        # ...and the groups-per-prefix ratio falls as prefixes grow.
        first_ratio = points[0][1] / points[0][0]
        last_ratio = points[-1][1] / points[-1][0]
        assert last_ratio < first_ratio
    # more participants -> at least as many groups
    assert result.groups_at(300, 15000) >= result.groups_at(100, 15000)
