"""Figure 7 benchmark: forwarding rules vs prefix groups.

Runs the full compilation sweep and prints (participants, prefix
groups, flow rules); asserts the paper's linear-growth shape and the
participant-count dependence of the slope.
"""

from _report import emit

from repro.experiments import figure7

PARTICIPANTS = (100, 200)
POLICY_PREFIXES = (200, 400, 800)


def test_figure7_flow_rules(benchmark):
    result = benchmark.pedantic(
        figure7.run,
        kwargs={
            "participants_sweep": PARTICIPANTS,
            "policy_prefix_sweep": POLICY_PREFIXES,
        },
        rounds=1,
        iterations=1,
    )
    emit(result.print_figure7)
    for participants in PARTICIPANTS:
        points = result.series(participants)
        rules = [p.flow_rules for p in points]
        groups = [p.prefix_groups for p in points]
        assert rules == sorted(rules)
        assert groups == sorted(groups)
        # linear shape: rules/group stays within a narrow band
        per_group = [r / max(g, 1) for r, g in zip(rules, groups)]
        assert max(per_group) < 3 * min(per_group)
    # more participants -> more rules at comparable group counts
    assert result.series(200)[-1].flow_rules > result.series(100)[-1].flow_rules
