"""Ablation benchmarks: what the Section 4.3.1 optimizations buy.

Compiles one workload under each optimization configuration and times
the signature MDS against the naive pairwise-refinement MDS.  All
configurations must produce the same rule table; only the cost may
differ.
"""

from _report import emit, report

from repro.experiments import ablation


def test_compiler_optimization_ablation(benchmark):
    result = benchmark.pedantic(
        ablation.run_compiler_ablation,
        kwargs={"participants": 80, "policy_prefixes": 400},
        rounds=1,
        iterations=1,
    )
    emit(lambda: result.print("Compiler optimization ablation (Section 4.3.1)"))
    rule_counts = {rules for _, _, rules in result.rows}
    assert len(rule_counts) == 1, "ablations must not change the emitted rules"
    timings = {name: seconds for name, seconds, _ in result.rows}
    report(
        f"  slowdowns vs all-optimizations: "
        + ", ".join(
            f"{name}={timings[name] / timings['all optimizations']:.2f}x"
            for name in timings
            if name != "all optimizations"
        )
    )


def test_mds_algorithm_ablation(benchmark):
    result = benchmark.pedantic(
        ablation.run_mds_ablation,
        kwargs={"set_counts": (5, 10, 15, 20), "universe": 400},
        rounds=1,
        iterations=1,
    )
    emit(result.print)
    for _, fast, slow, _ in result.rows[2:]:
        assert fast < slow, "the signature algorithm must beat naive refinement"
