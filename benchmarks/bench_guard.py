"""Robustness benchmark: guarded-commit overhead and admission throughput.

Two questions decide whether the guard can stay always-on:

1. **What does per-commit verification cost?**  A synthetic exchange is
   driven through an identical seeded churn workload (policy edits +
   route flaps, every one triggering a commit) twice — once unguarded,
   once with the default 8-probe guard — and the per-commit latency
   distributions are compared.  The figure of merit is the *ratio*
   (guarded / unguarded) at p50 and p99, which is machine-independent.
2. **How fast does the admission plane say no?**  A storming tenant is
   hammered against a closed token bucket; the figure of merit is
   rejections per second (the admission plane must be far cheaper than
   the work it refuses).

Run standalone to (re)generate the checked-in baseline::

    PYTHONPATH=src python benchmarks/bench_guard.py --emit benchmarks/BENCH_robustness.json

or as the CI regression gate, which fails when the measured guard
overhead ratio exceeds the baseline's by more than 10%::

    PYTHONPATH=src python benchmarks/bench_guard.py --check benchmarks/BENCH_robustness.json
"""

import argparse
import json
import statistics
import sys
import time

from _report import emit

from repro.core.config import SDXConfig
from repro.core.participant import SDXPolicySet
from repro.experiments.common import build_scenario
from repro.guard import AdmissionConfig, AdmissionError, GuardConfig, GuardReport
from repro.policy.language import fwd, match

PARTICIPANTS = 24
PREFIXES = 120
EDIT_CYCLES = 32
FLAP_CYCLES = 16
MEASURE_ROUNDS = 3  # alternated guarded/unguarded rounds (drift cancels)
PROBE_BUDGET = 8  # the GuardConfig default: what "always-on" costs
SEED = 3

#: CI gate: measured overhead may exceed the baseline ratio by 10%,
#: plus an absolute slack so timer noise cannot fail the gate
#: spuriously — small at the median, wider at the tail (p99 of a
#: ~50-commit run is its max sample, the noisiest statistic measured).
REGRESSION_HEADROOM = 1.10
REGRESSION_SLACK = {"overhead_p50": 0.05, "overhead_p99": 0.30}

ADMISSION_ATTEMPTS = 20_000


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _churn_controller(guarded):
    scenario = build_scenario(PARTICIPANTS, PREFIXES, seed=SEED, policy_seed=SEED + 1)
    guard = GuardConfig(probe_budget=PROBE_BUDGET, seed=SEED) if guarded else None
    controller = scenario.controller(sdx=SDXConfig(guard=guard))
    controller.compile()
    return controller


def _churn_workload(controller):
    """The seeded commit-heavy churn; returns per-commit latencies.

    Each cycle interleaves one route flap (background churn the fast
    path absorbs without a fabric commit) with one policy edit that
    forces a full compile + commit — the operation the guard actually
    intercepts.  Only the commits are timed.
    """
    names = [
        name
        for name in controller.config.participant_names()
        if controller.config.participant(name).ports
    ]
    server = controller.route_server
    flaps = []
    for prefix in sorted(server.all_prefixes(), key=str)[:FLAP_CYCLES]:
        ranked = server.ranked_routes(prefix)
        if ranked:
            flaps.append((ranked[0].learned_from, prefix, ranked[0].attributes))

    latencies = []
    for cycle in range(EDIT_CYCLES):
        if flaps:
            peer, prefix, attributes = flaps[cycle % len(flaps)]
            controller.routing.withdraw(peer, prefix)
            controller.routing.announce(peer, prefix, attributes)
        sender = names[cycle % len(names)]
        target = names[(cycle + 1) % len(names)]
        policy = SDXPolicySet(
            outbound=(match(dstport=8000 + cycle) >> fwd(target))
        )
        started = time.perf_counter()
        controller.policy.set_policies(sender, policy, recompile=True)
        latencies.append(time.perf_counter() - started)
    return latencies


def measure_guard_overhead():
    unguarded_controller = _churn_controller(guarded=False)
    guarded_controller = _churn_controller(guarded=True)
    guard = guarded_controller.guard
    # One discarded warm-up round per controller, then alternate measured
    # rounds so clock/cache drift hits both latency pools equally.
    _churn_workload(unguarded_controller)
    _churn_workload(guarded_controller)
    checks_before = guard._m_checks.value(outcome="ok")
    unguarded = []
    guarded = []
    for _ in range(MEASURE_ROUNDS):
        unguarded.extend(_churn_workload(unguarded_controller))
        guarded.extend(_churn_workload(guarded_controller))
    checks = guard._m_checks.value(outcome="ok") - checks_before
    return {
        "probe_budget": PROBE_BUDGET,
        "commits": len(guarded),
        "verified_commits": checks,
        "unguarded_p50_ms": _percentile(unguarded, 0.50) * 1e3,
        "unguarded_p99_ms": _percentile(unguarded, 0.99) * 1e3,
        "guarded_p50_ms": _percentile(guarded, 0.50) * 1e3,
        "guarded_p99_ms": _percentile(guarded, 0.99) * 1e3,
        "overhead_p50": _percentile(guarded, 0.50) / _percentile(unguarded, 0.50),
        "overhead_p99": _percentile(guarded, 0.99) / _percentile(unguarded, 0.99),
        "guard_check_p99_ms": guard.controller.telemetry.get(
            "sdx_guard_seconds"
        ).percentile(0.99)
        * 1e3,
    }


def measure_admission_throughput():
    scenario = build_scenario(8, 32, seed=SEED, policy_seed=SEED + 1)
    controller = scenario.controller(
        sdx=SDXConfig(
            admission=AdmissionConfig(policy_edits_per_sec=1.0, policy_edit_burst=1)
        )
    )
    name = next(iter(controller.config.participant_names()))
    policy = SDXPolicySet(outbound=(match(dstport=80) >> fwd(name)))
    admission = controller.admission
    rejections = 0
    started = time.perf_counter()
    for _ in range(ADMISSION_ATTEMPTS):
        try:
            admission.admit_policy_edit(name, policy)
        except AdmissionError:
            rejections += 1
    seconds = time.perf_counter() - started
    return {
        "attempts": ADMISSION_ATTEMPTS,
        "rejections": rejections,
        "seconds": seconds,
        "rejections_per_sec": rejections / seconds if seconds else None,
    }


def run_benchmark():
    return {
        "workload": {
            "participants": PARTICIPANTS,
            "prefixes": PREFIXES,
            "edit_cycles": EDIT_CYCLES,
            "flap_cycles": FLAP_CYCLES,
            "seed": SEED,
        },
        "guard": measure_guard_overhead(),
        "admission": measure_admission_throughput(),
    }


def print_result(result):
    guard = result["guard"]
    admission = result["admission"]
    print(
        f"\n== Guarded commits: {guard['commits']} churn commits, "
        f"budget {guard['probe_budget']} probes =="
    )
    print(
        f"  per-commit p50: {guard['unguarded_p50_ms']:.2f} ms unguarded -> "
        f"{guard['guarded_p50_ms']:.2f} ms guarded "
        f"({(guard['overhead_p50'] - 1) * 100:+.1f}%)"
    )
    print(
        f"  per-commit p99: {guard['unguarded_p99_ms']:.2f} ms unguarded -> "
        f"{guard['guarded_p99_ms']:.2f} ms guarded "
        f"({(guard['overhead_p99'] - 1) * 100:+.1f}%)"
    )
    print(
        f"== Admission plane: {admission['rejections']}/{admission['attempts']} "
        f"rejections at {admission['rejections_per_sec']:,.0f}/s =="
    )


def check_against_baseline(result, baseline):
    """CI gate: fail when guard overhead regressed >10% vs the baseline."""
    failures = []
    for metric in ("overhead_p50", "overhead_p99"):
        measured = result["guard"][metric]
        reference = baseline["guard"][metric]
        ceiling = reference * REGRESSION_HEADROOM + REGRESSION_SLACK[metric]
        status = "ok" if measured <= ceiling else "REGRESSED"
        print(
            f"  {metric}: measured {measured:.3f} vs baseline {reference:.3f} "
            f"(ceiling {ceiling:.3f}) {status}"
        )
        if measured > ceiling:
            failures.append(metric)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_guard.py",
        description="guarded-commit overhead + admission throughput benchmark",
    )
    parser.add_argument(
        "--emit", metavar="PATH", help="write the result JSON (the baseline file)"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on >10%% overhead regression",
    )
    options = parser.parse_args(argv)

    result = run_benchmark()
    print_result(result)
    if options.emit:
        with open(options.emit, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {options.emit}")
    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        print(f"\n== Regression gate vs {options.check} ==")
        failures = check_against_baseline(result, baseline)
        if failures:
            print(f"FAIL: guard overhead regressed: {', '.join(failures)}")
            return 1
        print("gate passed")
    return 0


# -- pytest-benchmark wrapper (make bench) ----------------------------------


def test_guard_overhead_and_admission_throughput(benchmark):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    emit(lambda: print_result(result))
    guard = result["guard"]
    # every churn commit was verified, at the default always-on budget
    assert guard["verified_commits"] == guard["commits"]
    # the admission plane rejects much faster than edits compile
    assert result["admission"]["rejections_per_sec"] > 10_000


if __name__ == "__main__":
    sys.exit(main())
