"""Figure 10 benchmark: CDF of per-update fast-path processing time.

Feeds best-path-changing updates into a compiled SDX and prints the
processing-time percentiles per participant count.  The paper reports
sub-100 ms for most updates at 300 participants on its testbed; the
comparison target here is the CDF's shape and the sub-second bound.
"""

from _report import emit

from repro.experiments import figure10

PARTICIPANTS = (50, 100, 200)


def test_figure10_update_processing_cdf(benchmark):
    result = benchmark.pedantic(
        figure10.run,
        kwargs={
            "participants_sweep": PARTICIPANTS,
            "updates_per_setting": 30,
            "prefixes_per_participant": 10,
        },
        rounds=1,
        iterations=1,
    )
    emit(result.print)
    for participants in PARTICIPANTS:
        samples = result.samples[participants]
        # the worst-case sampler is capped by the policy-affected prefix
        # pool, which can sit below the requested update count
        assert len(samples) >= 10
        # tight distribution with a modest tail, sub-second throughout
        assert result.percentile(participants, 99) < 1.0
        assert result.percentile(participants, 50) <= result.percentile(participants, 99)
    # processing cost grows with participant count
    assert result.percentile(200, 50) > result.percentile(50, 50)
