"""Figure 8 benchmark: initial compilation time vs prefix groups.

Runs the compilation sweep and prints (participants, prefix groups,
compile time, VNH time); asserts that compile time grows with the
group count — the paper's "roughly quadratic" trend reads as
super-linear growth at our scaled-down sizes.
"""

from _report import emit

from repro.experiments import figure8

PARTICIPANTS = (100, 200)
POLICY_PREFIXES = (200, 400, 800)


def test_figure8_compilation_time(benchmark):
    result = benchmark.pedantic(
        figure8.run,
        kwargs={
            "participants_sweep": PARTICIPANTS,
            "policy_prefix_sweep": POLICY_PREFIXES,
        },
        rounds=1,
        iterations=1,
    )
    emit(result.print_figure8)
    for participants in PARTICIPANTS:
        points = result.series(participants)
        times = [p.compile_seconds for p in points]
        groups = [p.prefix_groups for p in points]
        assert groups == sorted(groups)
        # compile time grows with groups (allowing small-timer noise at
        # the first point)
        assert times[-1] > times[0]
    # more participants -> slower at comparable group counts
    assert (
        result.series(200)[-1].compile_seconds
        > result.series(100)[0].compile_seconds
    )
