"""Update→install latency benchmark: inline calls vs the event-loop runtime.

The tentpole claim of the runtime PR is about *bursty* control-plane
traces: BGP update bursts (the workload generator reproduces the
measured burst-size/gap mixture) interleaved with policy edits that
force a guarded compile + commit.  What an operator feels is the time
from an event's **arrival** to its **installation** in the fabric, and
with the commit guard always on (its designed operating point) the two
runtimes shape that latency differently:

* **inline** serialises everything — an edit's install latency is
  compile + commit + the guard's probe pass, and every update queued
  behind it eats all three;
* the **event-loop runtime** commits first and *defers* the probe pass
  (verification of commit N overlaps the work after it), so install
  latency stops at the commit, and the ingress task coalesces each
  burst's fast-path work into one deduplicated pass.

Both modes run the identical seeded trace; per-event latency is
anchored at its burst's arrival instant, which makes the two pipelines
directly comparable.  The figure of merit is the machine-independent
*ratio* (eventloop / inline) at p50 and p99 — below 1.0 means the
runtime wins.  The p99 — the statistic the gate guards — is the tail
an edit-led burst pays.

Run standalone to (re)generate the checked-in baseline::

    PYTHONPATH=src python benchmarks/bench_latency.py --emit benchmarks/BENCH_latency.json

or as the CI regression gate, which fails when the event-loop runtime
stops beating inline at p99 or its ratio regresses >10% beyond the
baseline::

    PYTHONPATH=src python benchmarks/bench_latency.py --check benchmarks/BENCH_latency.json
"""

import argparse
import json
import sys
import time

from _report import emit

from repro.core.config import SDXConfig
from repro.core.participant import SDXPolicySet
from repro.experiments.common import build_scenario
from repro.guard import GuardConfig
from repro.policy.language import fwd, match
from repro.runtime import RuntimeConfig
from repro.workloads.update_gen import generate_update_trace

PARTICIPANTS = 12
PREFIXES = 60
BURSTS = 40
SEED = 7
MEASURE_ROUNDS = 5  # alternated inline/eventloop rounds (drift cancels)
PROBE_BUDGET = 16  # the chaos-suite budget: catches the seeded corruptions
EDIT_EVERY = 2  # every other burst is led by a recompiling policy edit
WITHDRAWAL_PROBABILITY = 0.5  # flap-heavy bursts: withdraw + re-announce pairs

#: a gap above this re-segments the trace into a new arrival burst
#: (generated inter-burst gaps are >= 2 s; intra-burst spacing < 0.7 s)
BURST_GAP_SECONDS = 1.0

#: CI gate: the eventloop/inline latency ratio may exceed the baseline
#: by 10%, plus an absolute slack so timer noise cannot fail the gate
#: spuriously — and must stay below 1.0 at p99 (the acceptance claim).
REGRESSION_HEADROOM = 1.10
REGRESSION_SLACK = {"ratio_p99": 0.10}


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _bursts(trace):
    """Re-segment the timestamped trace into its arrival bursts."""
    bursts = []
    current = []
    last = None
    for update in trace.updates:
        if current and last is not None and update.time - last > BURST_GAP_SECONDS:
            bursts.append(current)
            current = []
        current.append(update)
        last = update.time
    if current:
        bursts.append(current)
    return bursts


def _controller(scenario, mode):
    config = RuntimeConfig(coalesce=True) if mode == "eventloop" else None
    return scenario.controller(
        sdx=SDXConfig(
            runtime_mode=mode,
            runtime_config=config,
            guard=GuardConfig(probe_budget=PROBE_BUDGET, seed=SEED),
        )
    )


def _edit(cycle, names):
    sender = names[cycle % len(names)]
    target = names[(cycle + 1) % len(names)]
    return sender, SDXPolicySet(outbound=(match(dstport=8000 + cycle) >> fwd(target)))


def _replay(controller, bursts, names):
    """Replay the trace; per-event latency anchored at burst arrival.

    Event-loop latencies come from the submission handles — an event is
    *installed* when its commit lands, which for the eventloop is before
    the deferred probe pass runs (the verification still happens inside
    the same drain; it just no longer sits on the install path).
    """
    latencies = []
    runtime = controller.runtime
    started_total = time.perf_counter()
    for index, burst in enumerate(bursts):
        edit = _edit(index, names) if index % EDIT_EVERY == 0 else None
        if runtime is not None:
            arrival = controller.telemetry.now()  # perf_counter-based
            with runtime.pipelined():
                handles = []
                if edit is not None:
                    handles.append(
                        controller.policy.set_policies(*edit, recompile=True)
                    )
                handles.extend(
                    controller.routing.process_update(update) for update in burst
                )
            for handle in handles:
                if handle.error is not None:
                    raise handle.error
                latencies.append(handle.completed_at - arrival)
        else:
            arrival = time.perf_counter()
            if edit is not None:
                controller.policy.set_policies(*edit, recompile=True)
                latencies.append(time.perf_counter() - arrival)
            for update in burst:
                controller.routing.process_update(update)
                latencies.append(time.perf_counter() - arrival)
    return latencies, time.perf_counter() - started_total


def measure_latency():
    scenario = build_scenario(PARTICIPANTS, PREFIXES, seed=SEED, policy_seed=SEED + 1)
    trace = generate_update_trace(
        scenario.ixp,
        bursts=BURSTS,
        seed=SEED + 2,
        withdrawal_probability=WITHDRAWAL_PROBABILITY,
    )
    bursts = _bursts(trace)
    names = [
        name
        for name in scenario.ixp.config.participant_names()
        if scenario.ixp.config.participant(name).ports
    ]

    inline_controller = _controller(scenario, "inline")
    eventloop_controller = _controller(scenario, "eventloop")
    # one discarded warm-up round each, then alternate measured rounds
    _replay(inline_controller, bursts, names)
    _replay(eventloop_controller, bursts, names)
    inline, eventloop = [], []
    inline_seconds = eventloop_seconds = 0.0
    for _ in range(MEASURE_ROUNDS):
        samples, seconds = _replay(inline_controller, bursts, names)
        inline.extend(samples)
        inline_seconds += seconds
        samples, seconds = _replay(eventloop_controller, bursts, names)
        eventloop.extend(samples)
        eventloop_seconds += seconds

    runtime_info = eventloop_controller.runtime.health_info()
    inline_p50 = _percentile(inline, 0.50)
    inline_p99 = _percentile(inline, 0.99)
    eventloop_p50 = _percentile(eventloop, 0.50)
    eventloop_p99 = _percentile(eventloop, 0.99)
    return {
        "updates": len(trace.updates),
        "edits": len(bursts[:: EDIT_EVERY]),
        "bursts": len(bursts),
        "largest_burst": max(len(b) for b in bursts),
        "probe_budget": PROBE_BUDGET,
        "inline_p50_ms": inline_p50 * 1e3,
        "inline_p99_ms": inline_p99 * 1e3,
        "eventloop_p50_ms": eventloop_p50 * 1e3,
        "eventloop_p99_ms": eventloop_p99 * 1e3,
        "ratio_p50": eventloop_p50 / inline_p50,
        "ratio_p99": eventloop_p99 / inline_p99,
        "inline_rules_per_sec": len(inline) / inline_seconds,
        "eventloop_rules_per_sec": len(eventloop) / eventloop_seconds,
        "queue_depth_peak": runtime_info["ingress_peak"],
        "queue_rejected": runtime_info["ingress_rejected"],
    }


def run_benchmark():
    return {
        "workload": {
            "participants": PARTICIPANTS,
            "prefixes": PREFIXES,
            "bursts": BURSTS,
            "seed": SEED,
            "measure_rounds": MEASURE_ROUNDS,
        },
        "latency": measure_latency(),
    }


def print_result(result):
    latency = result["latency"]
    print(
        f"\n== Update→install latency: {latency['updates']} updates + "
        f"{latency['edits']} guarded edits in {latency['bursts']} bursts "
        f"(largest {latency['largest_burst']}, probe budget "
        f"{latency['probe_budget']}) =="
    )
    print(
        f"  p50: {latency['inline_p50_ms']:.3f} ms inline -> "
        f"{latency['eventloop_p50_ms']:.3f} ms eventloop "
        f"(ratio {latency['ratio_p50']:.2f})"
    )
    print(
        f"  p99: {latency['inline_p99_ms']:.3f} ms inline -> "
        f"{latency['eventloop_p99_ms']:.3f} ms eventloop "
        f"(ratio {latency['ratio_p99']:.2f})"
    )
    print(
        f"  throughput: {latency['inline_rules_per_sec']:,.0f}/s inline, "
        f"{latency['eventloop_rules_per_sec']:,.0f}/s eventloop; "
        f"peak ingress depth {latency['queue_depth_peak']}"
    )


def check_against_baseline(result, baseline):
    """CI gate: eventloop must beat inline at p99 and not regress >10%."""
    failures = []
    measured_p99 = result["latency"]["ratio_p99"]
    if measured_p99 >= 1.0:
        print(f"  ratio_p99: measured {measured_p99:.3f} >= 1.0 NOT WINNING")
        failures.append("ratio_p99 >= 1.0")
    for metric in ("ratio_p99",):
        measured = result["latency"][metric]
        reference = baseline["latency"][metric]
        ceiling = reference * REGRESSION_HEADROOM + REGRESSION_SLACK[metric]
        status = "ok" if measured <= ceiling else "REGRESSED"
        print(
            f"  {metric}: measured {measured:.3f} vs baseline {reference:.3f} "
            f"(ceiling {ceiling:.3f}) {status}"
        )
        if measured > ceiling:
            failures.append(metric)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_latency.py",
        description="update→install latency: inline vs event-loop runtime",
    )
    parser.add_argument(
        "--emit", metavar="PATH", help="write the result JSON (the baseline file)"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 when the eventloop "
        "stops winning at p99 or regresses >10%%",
    )
    options = parser.parse_args(argv)

    result = run_benchmark()
    print_result(result)
    if options.emit:
        with open(options.emit, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {options.emit}")
    if options.check:
        with open(options.check) as handle:
            baseline = json.load(handle)
        print(f"\n== Regression gate vs {options.check} ==")
        failures = check_against_baseline(result, baseline)
        if failures:
            print(f"FAIL: latency gate: {', '.join(failures)}")
            return 1
        print("gate passed")
    return 0


# -- pytest-benchmark wrapper (make bench) ----------------------------------


def test_update_install_latency(benchmark):
    result = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    emit(lambda: print_result(result))
    latency = result["latency"]
    # the acceptance claim: the runtime wins the bursty-trace tail
    assert latency["ratio_p99"] < 1.0
    assert latency["queue_rejected"] == 0  # capacity absorbed every burst


if __name__ == "__main__":
    sys.exit(main())
