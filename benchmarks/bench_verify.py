"""Benchmarks for the verification oracle.

Not a paper artifact — these size the cost of running ``ops.verify()``
as a post-commit gate (the fuzz harness runs it after *every* commit)
and guard the reference interpreter and invariant sweep against
accidental quadratic blowups as the exchange grows.
"""

from repro.experiments.common import build_scenario
from repro.verify.checker import DifferentialChecker
from repro.verify.invariants import check_all_invariants


def _controller(participants=24, prefixes=192, seed=4):
    scenario = build_scenario(
        participants=participants, prefixes=prefixes, seed=seed, policy_seed=seed + 1
    )
    return scenario.controller()


def test_differential_pass(benchmark):
    """One full check pass (64 probes + invariants) on a mid-size IXP."""
    controller = _controller()
    checker = DifferentialChecker(controller)
    report = benchmark(lambda: checker.check(probes=64, seed=9))
    assert report.ok, report.summary()


def test_reference_interpreter_only(benchmark):
    """Probe evaluation without the invariant sweep (the per-packet cost)."""
    controller = _controller()
    checker = DifferentialChecker(controller)
    report = benchmark(
        lambda: checker.check(probes=64, seed=9, invariants=False)
    )
    assert report.ok, report.summary()


def test_invariant_sweep_only(benchmark):
    """The whole-table structural sweep on its own."""
    controller = _controller()
    violations = benchmark(lambda: check_all_invariants(controller))
    assert violations == []
