"""Figure 5 benchmarks: the two deployment timelines, emulated.

Times a full (scaled) timeline replay — controller compilation, BGP
events, per-second UDP traffic, fast-path reactions — and prints the
traffic-rate checkpoints corresponding to the paper's Figure 5a/5b
series, asserting the paper's qualitative shape.
"""

import pytest
from _report import emit

from repro.experiments import figure5


def test_figure5a_application_specific_peering(benchmark):
    result = benchmark.pedantic(
        figure5.run_5a,
        kwargs={"duration": 600.0, "policy_time": 200.0, "withdrawal_time": 400.0},
        rounds=1,
        iterations=1,
    )
    emit(result.print)
    before = result.rates_at(150.0)
    during = result.rates_at(350.0)
    after = result.rates_at(550.0)
    # paper shape: all 3 Mbps via A, then 1 Mbps (port 80) moves to B,
    # then the withdrawal pulls everything back to A.
    assert before["via-A"] == pytest.approx(3.0, abs=0.3) and before["via-B"] == 0.0
    assert during["via-A"] == pytest.approx(2.0, abs=0.3)
    assert during["via-B"] == pytest.approx(1.0, abs=0.3)
    assert after["via-A"] == pytest.approx(3.0, abs=0.3) and after["via-B"] == 0.0


def test_figure5b_wide_area_load_balancer(benchmark):
    result = benchmark.pedantic(
        figure5.run_5b,
        kwargs={"duration": 400.0, "policy_time": 200.0},
        rounds=1,
        iterations=1,
    )
    emit(result.print)
    before = result.rates_at(150.0)
    after = result.rates_at(350.0)
    assert before["instance-1"] == pytest.approx(2.0, abs=0.3)
    assert before["instance-2"] == 0.0
    assert after["instance-1"] == pytest.approx(1.0, abs=0.3)
    assert after["instance-2"] == pytest.approx(1.0, abs=0.3)
