"""Reporting helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it runs the experiment through pytest-benchmark (timing the interesting
kernel once — these are macro-benchmarks, not microseconds) and prints
the same rows/series the paper reports.  pytest captures stdout at the
file-descriptor level, so :func:`emit` suspends the capture manager for
the duration of the print — the tables land on the real stdout (and in
``bench_output.txt`` when the run is tee'd).
"""

from __future__ import annotations

import sys

#: Set by ``conftest.pytest_configure``; None outside a pytest run.
_capture_manager = None


def _set_capture_manager(manager) -> None:
    global _capture_manager
    _capture_manager = manager


def report(text: str = "") -> None:
    """Print one line to the real stdout, bypassing pytest capture."""
    emit(lambda: print(text))


def emit(printer) -> None:
    """Run a result object's ``print()`` against the real stdout."""
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            printer()
            print(flush=True)
    else:
        printer()
        print(flush=True)
