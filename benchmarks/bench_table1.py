"""Table 1 benchmark: generate + analyze the three IXP update traces.

Times the trace generation and burst analysis, then prints the Table 1
rows (peers / prefixes / updates / % prefixes updated) next to the
paper's published percentages.
"""

from _report import emit

from repro.experiments import table1


def test_table1(benchmark):
    result = benchmark.pedantic(table1.run, kwargs={"scale": 0.5}, rounds=1, iterations=1)
    emit(result.print)
    measured = {row[0]: row[4] for row in result.rows}
    paper = {name: values[3] for name, values in table1.PAPER_ROWS.items()}
    for name, percent in measured.items():
        assert abs(percent - paper[name]) < 3.0, (
            f"{name}: measured {percent:.2f}% vs paper {paper[name]:.2f}%"
        )
