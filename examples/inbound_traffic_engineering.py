#!/usr/bin/env python3
"""Inbound traffic engineering with direct control (Section 2, app #2).

An eyeball network (AS B) with two ports at the exchange wants to
balance the traffic it *receives* — something BGP can only influence
through AS-path prepending and communities, neither of which the
senders are obliged to honour.  At an SDX, B simply installs an inbound
policy and the fabric enforces it, whatever the senders do.

The example also shows live policy updates: B first splits by source
prefix, then re-balances by application port, and the deployed data
plane follows each change.

Run with::

    python examples/inbound_traffic_engineering.py
"""

from collections import Counter

from repro import IXPConfig, RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.policy import fwd, match


def build_deployment() -> EmulatedIXP:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [("B1", "172.0.0.11", "08:00:27:00:00:11"), ("B2", "172.0.0.12", "08:00:27:00:00:12")],
    )
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    ixp = EmulatedIXP(config)
    # B announces its eyeball prefix via B1 (so default traffic targets B1).
    ixp.controller.routing.announce(
        "B", "100.64.0.0/16", RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
    )
    ixp.add_host("cdn-a", "A", "50.0.0.1")
    ixp.add_host("cdn-c", "C", "200.0.0.1")
    return ixp


def measure(ixp: EmulatedIXP, label: str) -> None:
    """Send a probe mix from both senders and report B's ingress split."""
    ixp.reset_traffic_counters()
    ingress = Counter()
    for sender, srcport in (("cdn-a", 40000), ("cdn-c", 41000)):
        for dstport in (80, 443, 8080, 9999):
            before = {
                port: ixp.fabric.traffic_on(("sdx-fabric", port), (f"router-B", port))
                for port in ("B1", "B2")
            }
            ixp.send(sender, dstip="100.64.1.1", dstport=dstport, srcport=srcport)
            for port in ("B1", "B2"):
                after = ixp.fabric.traffic_on(("sdx-fabric", port), (f"router-B", port))
                ingress[port] += after - before[port]
    print(f"{label:40s} B1={ingress['B1']}  B2={ingress['B2']}")


def main() -> None:
    ixp = build_deployment()
    controller = ixp.controller
    b = controller.register_participant("B")

    controller.compile()
    measure(ixp, "no policy (all via announcing port B1):")

    # Phase 1: split inbound traffic by source address.
    b.set_policies(
        inbound=(match(srcip="0.0.0.0/1") >> fwd("B1"))
        + (match(srcip="128.0.0.0/1") >> fwd("B2"))
    )
    measure(ixp, "split by source /1:")

    # Phase 2: re-balance by application instead.
    b.set_policies(
        inbound=(match(dstport=80) >> fwd("B2")) + (~match(dstport=80) >> fwd("B1"))
    )
    measure(ixp, "web traffic isolated on B2:")

    print(
        "\nNo prepending, no communities, no cooperation from the senders —\n"
        "the receiving network chose its own ingress ports directly."
    )


if __name__ == "__main__":
    main()
