#!/usr/bin/env python3
"""Targeted middlebox redirection (Section 2, app #4).

An ISP wants all traffic *from* YouTube's servers to pass through a
video transcoder hosted at a dedicated SDX port — without BGP-hijacking
everything else, the way today's scrubbing detours do.  The policy
selects the traffic with an AS-path query against the live RIB
(Section 3.2's ``RIB.filter('as_path', '.*43515$')``) and forwards the
matching flow space straight to the middlebox port.

Run with::

    python examples/middlebox_redirection.py
"""

from repro import IXPConfig, RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.policy import fwd, match

YOUTUBE_AS = 43515


def build_deployment() -> EmulatedIXP:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("ISP", 65001, [("ISP1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("T", 65002, [("T1", "172.0.0.11", "08:00:27:00:00:11")])
    # Port E1 hosts the transcoder appliance itself.
    config.add_participant("E", 65005, [("E1", "172.0.0.51", "08:00:27:00:00:51")])
    ixp = EmulatedIXP(config, appliance_ports=["E1"])

    # Transit AS T announces a YouTube-originated prefix and a normal one.
    ixp.controller.routing.announce(
        "T",
        "203.0.0.0/16",
        RouteAttributes(as_path=[65002, YOUTUBE_AS], next_hop="172.0.0.11"),
    )
    ixp.controller.routing.announce(
        "T",
        "198.18.0.0/16",
        RouteAttributes(as_path=[65002, 64999], next_hop="172.0.0.11"),
    )
    ixp.add_host("subscriber", "ISP", "100.64.0.50")
    ixp.add_middlebox("transcoder", "E1")
    return ixp


def main() -> None:
    ixp = build_deployment()
    isp = ixp.controller.register_participant("ISP")

    # 1. Ask the RIB which prefixes YouTube originates, *right now*.
    youtube_prefixes = isp.rib().filter("as_path", rf".*{YOUTUBE_AS}$")
    print("prefixes originated by AS", YOUTUBE_AS, "->", [str(p) for p in youtube_prefixes])

    # 2. Steer traffic toward those prefixes through the transcoder.
    isp.set_policies(outbound=match(dstip=set(youtube_prefixes)) >> fwd("E1"))

    # 3. Probe: one video flow, one ordinary flow.
    ixp.send("subscriber", dstip="203.0.113.9", dstport=443, srcport=5)
    ixp.send("subscriber", dstip="198.18.5.5", dstport=443, srcport=5)

    print("transcoder captured :", len(ixp.hosts["transcoder"].received), "packet(s)")
    print("carried upstream by T:", ixp.carried_upstream_by("T"), "packet(s)")
    (captured,) = ixp.hosts["transcoder"].received
    print("captured flow dstip  :", captured["dstip"])
    print(
        "\nOnly the YouTube-originated flow space detoured through the\n"
        "middlebox; everything else followed its BGP route untouched."
    )


if __name__ == "__main__":
    main()
