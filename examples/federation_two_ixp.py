#!/usr/bin/env python3
"""Two-IXP federation drill: relays, a policy ping-pong, and a failover.

Builds a federation of two exchanges — "west" (an origin AS plus two
transit ASes) and "east" (an eyeball AS plus the same transits) — and
walks three scenarios:

1. **Relay + coherence** — both transits relay the origin's prefix
   west→east; the federation sweep (inter-IXP loop freedom,
   cross-exchange BGP consistency, end-to-end probe traces) passes.
2. **Policy ping-pong** — three innocuous-looking policies steer port-80
   traffic eyeball→transit-U at east, U→T at west, and T→U at east.
   Each exchange is locally BGP-consistent, but together they orbit the
   packet between the fabrics; the federation verifier reports the loop
   as a minimized counterexample naming both exchanges.
3. **Failover** — the eyeball's best transit loses its inter-IXP
   backhaul; the relay withdraws, east re-converges onto the surviving
   transit, and the sweep is clean again.

Run with::

    python examples/federation_two_ixp.py
"""

from repro import IXPConfig, RouteAttributes
from repro.federation import FederatedExchange
from repro.policy import fwd, match
from repro.verify import FederationChecker, check_federation

PREFIX = "10.9.0.0/16"


def build_federation() -> FederatedExchange:
    west = IXPConfig(vnh_pool="172.16.0.0/16")
    west.add_participant("O", 65001, [("O1", "172.0.1.1", "08:00:27:01:00:01")])
    west.add_participant("T", 65100, [("TW1", "172.0.1.11", "08:00:27:01:00:11")])
    west.add_participant("U", 65200, [("UW1", "172.0.1.21", "08:00:27:01:00:21")])
    east = IXPConfig(vnh_pool="172.17.0.0/16")
    east.add_participant("E", 65002, [("E1", "172.0.2.1", "08:00:27:02:00:01")])
    east.add_participant("T", 65100, [("TE1", "172.0.2.11", "08:00:27:02:00:11")])
    east.add_participant("U", 65200, [("UE1", "172.0.2.21", "08:00:27:02:00:21")])
    federation = FederatedExchange()
    federation.add_exchange("west", west)
    federation.add_exchange("east", east)
    federation.exchange("west").routing.announce(
        "O", PREFIX, RouteAttributes(as_path=[65001], next_hop="172.0.1.1")
    )
    return federation


def drill_relays() -> None:
    print("== Drill 1: transit relays and a clean federation sweep ==")
    federation = build_federation()
    link_u = federation.link(65200, "west", "east")
    link_t = federation.link(65100, "west", "east")
    updates = federation.sync()
    federation.compile_all()
    print(f"sync applied {updates} relayed updates over "
          f"{[link.name for link in federation.links()]}")
    east = federation.exchange("east")
    best = east.route_server.best_route("E", PREFIX)
    print(f"east eyeball's best: via {best.learned_from} "
          f"(as_path [{best.attributes.as_path}])")
    report = FederationChecker(federation).sweep(probes=24)
    print(f"federation sweep ok: {report.ok} "
          f"({len(report.traces)} end-to-end traces)")
    print()


def drill_ping_pong() -> None:
    print("== Drill 2: an inter-IXP policy ping-pong ==")
    federation = build_federation()
    federation.link(65200, "west", "east")  # U relays the origin's route east
    federation.link(65100, "east", "west")  # T relays its east routes west
    federation.sync()
    west, east = federation.exchange("west"), federation.exchange("east")
    east.register_participant("E").set_policies(
        outbound=match(dstport=80) >> fwd("U"), recompile=False
    )
    west.register_participant("U").set_policies(
        outbound=match(dstport=80) >> fwd("T"), recompile=False
    )
    east.register_participant("T").set_policies(
        outbound=match(dstport=80) >> fwd("U"), recompile=False
    )
    federation.compile_all()
    print("each exchange alone is consistent:",
          all(ctl.ops.verify(probes=24).ok for _, ctl in federation.controllers()))
    violations = check_federation(federation)
    for violation in violations:
        print(f"caught: {violation}")
    assert violations, "the ping-pong must be detected"
    print()


def drill_failover() -> None:
    print("== Drill 3: inter-IXP backhaul failure and re-convergence ==")
    federation = build_federation()
    link_u = federation.link(65200, "west", "east")
    link_t = federation.link(65100, "west", "east")
    federation.sync()
    federation.compile_all()
    east = federation.exchange("east")
    before = east.route_server.best_route("E", PREFIX)
    primary = link_u if before.learned_from == "U" else link_t
    print(f"east converged via {before.learned_from}; failing {primary.name}")
    withdrawn = primary.fail()
    federation.sync()
    federation.compile_all()
    after = east.route_server.best_route("E", PREFIX)
    print(f"withdrew {withdrawn} relayed route(s); east re-converged via "
          f"{after.learned_from}")
    report = FederationChecker(federation).sweep(probes=24)
    print(f"post-failover sweep ok: {report.ok}")
    links_up = federation.telemetry.gauge("sdx_federation_links_up").value()
    print(f"telemetry: sdx_federation_links_up={links_up:.0f}")


def main() -> None:
    drill_relays()
    drill_ping_pong()
    drill_failover()


if __name__ == "__main__":
    main()
