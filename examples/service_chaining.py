#!/usr/bin/env python3
"""Service chaining through middleboxes (the paper's Section 8 vision).

An ISP routes suspicious traffic through a firewall *and then* a DPI
appliance before it continues to its destination — a sequence BGP
hijack tricks cannot express, and that the SDX compiles into plain flow
rules: the frames keep their forwarding tag across every middlebox hop,
so after the last hop they resume their normal BGP path automatically.

Run with::

    python examples/service_chaining.py
"""

from repro import IXPConfig, RouteAttributes
from repro.core.chaining import ServiceChain
from repro.ixp.deployment import EmulatedIXP
from repro.policy import fwd, match


def build_deployment() -> EmulatedIXP:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("ISP", 65001, [("ISP1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("T", 65002, [("T1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant(
        "SEC",
        65005,
        [
            ("FW1", "172.0.0.51", "08:00:27:00:00:51"),
            ("DPI1", "172.0.0.52", "08:00:27:00:00:52"),
        ],
    )
    ixp = EmulatedIXP(config, appliance_ports=["FW1", "DPI1"])
    ixp.controller.routing.announce(
        "T", "198.51.0.0/16", RouteAttributes(as_path=[65002, 64999], next_hop="172.0.0.11")
    )
    ixp.add_host("subscriber", "ISP", "100.64.0.50")
    ixp.add_chain_middlebox("firewall", "FW1")
    ixp.add_chain_middlebox("dpi", "DPI1")
    return ixp


def main() -> None:
    ixp = build_deployment()
    controller = ixp.controller

    chain = ServiceChain("scrub", hops=["FW1", "DPI1"])
    controller.policy.define_chain(chain)
    isp = controller.register_participant("ISP")
    isp.set_policies(outbound=match(dstport=80) >> fwd(chain))

    # Make the firewall drop one specific source port, pass the rest.
    ixp.middleboxes["firewall"].transform = (
        lambda packet: None if packet.get("srcport") == 6667 else packet
    )

    print("sending three flows from the subscriber:\n")
    for label, dstport, srcport in (
        ("web flow        (chained)", 80, 40001),
        ("blocked web flow (chained, firewalled)", 80, 6667),
        ("dns flow        (not chained)", 53, 40002),
    ):
        ixp.send("subscriber", dstip="198.51.7.7", dstport=dstport, srcport=srcport)
        print(f"  sent {label}")

    print("\nobservations:")
    print(f"  firewall saw : {len(ixp.middleboxes['firewall'].seen)} packet(s)")
    print(f"  firewall drop: {ixp.middleboxes['firewall'].dropped} packet(s)")
    print(f"  dpi saw      : {len(ixp.middleboxes['dpi'].seen)} packet(s)")
    print(f"  delivered via T upstream: {ixp.carried_upstream_by('T')} packet(s)")
    print(
        "\nOnly web traffic took the firewall->dpi detour; the blocked flow\n"
        "died at the firewall; everything that survived resumed its normal\n"
        "BGP path without any policy saying so explicitly — the preserved\n"
        "MAC tag carries the routing decision through the chain."
    )


if __name__ == "__main__":
    main()
