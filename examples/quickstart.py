#!/usr/bin/env python3
"""Quickstart: application-specific peering at an SDX in ~60 lines.

Recreates the paper's Figure 1 scenario: AS A sends its HTTP traffic
via AS B and its HTTPS traffic via AS C while everything else follows
the BGP best route, and AS B splits its inbound traffic across two
ports by source address.

Run with::

    python examples/quickstart.py
"""

from repro import IXPConfig, RouteAttributes, SDXController
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet, fwd, match


def build_exchange() -> SDXController:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [("B1", "172.0.0.11", "08:00:27:00:00:11"), ("B2", "172.0.0.12", "08:00:27:00:00:12")],
    )
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    return SDXController(config)


def announce_routes(controller: SDXController) -> None:
    """B and C both announce 10.1.0.0/16; C's path is shorter (BGP best)."""

    def attrs(asns, next_hop):
        return RouteAttributes(as_path=asns, next_hop=next_hop)

    controller.routing.announce("B", "10.1.0.0/16", attrs([65002, 65100], "172.0.0.11"))
    controller.routing.announce("C", "10.1.0.0/16", attrs([65100], "172.0.0.21"))


def install_policies(controller: SDXController) -> None:
    a = controller.register_participant("A")
    b = controller.register_participant("B")
    # outbound: deflect by application (Section 3.1's first example)
    a.set_policies(
        outbound=(match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")),
        recompile=False,
    )
    # inbound: traffic engineering across B's two ports
    b.set_policies(
        inbound=(match(srcip="0.0.0.0/1") >> fwd("B1"))
        + (match(srcip="128.0.0.0/1") >> fwd("B2")),
        recompile=False,
    )
    controller.compile()


def send_as_router_would(controller: SDXController, dstport: int, srcip: str):
    """Tag a packet the way A's unmodified border router would: look up the
    advertised route, ARP the next hop, stamp the resolved MAC."""
    (announcement,) = [
        ann
        for ann in controller.advertisements("A")
        if ann.prefix == IPv4Prefix("10.1.0.0/16")
    ]
    vmac = controller.arp.resolve(announcement.attributes.next_hop)
    packet = Packet(
        dstip="10.1.2.3", dstport=dstport, srcip=srcip, srcport=4321, dstmac=vmac, port="A1"
    )
    return controller.switch.receive(packet, "A1")


def main() -> None:
    controller = build_exchange()
    announce_routes(controller)
    install_policies(controller)

    stats = controller.last_compilation.stats
    print(f"compiled {stats.rules} flow rules, {stats.fec_groups} prefix group(s)\n")

    for label, dstport, srcip in (
        ("HTTP  from 50.0.0.1 ", 80, "50.0.0.1"),
        ("HTTP  from 200.0.0.1", 80, "200.0.0.1"),
        ("HTTPS from 50.0.0.1 ", 443, "50.0.0.1"),
        ("SSH   from 50.0.0.1 ", 22, "50.0.0.1"),
    ):
        outputs = send_as_router_would(controller, dstport, srcip)
        ports = ", ".join(port for port, _ in outputs) or "dropped"
        print(f"{label} -> egress {ports}")

    print(
        "\nHTTP rides B (inbound TE picks B1/B2 by source), HTTPS rides C,\n"
        "and everything else follows the BGP best route (C)."
    )


if __name__ == "__main__":
    main()
