#!/usr/bin/env python3
"""A full synthetic exchange under churn: the whole system in one script.

Generates an AMS-IX-flavoured exchange (skewed prefix census, the §6.1
policy mix), compiles it, then replays a burst-structured BGP update
trace through the two-stage incremental pipeline, periodically running
the background re-optimization — printing the controller's vital signs
along the way.

Run with::

    python examples/full_ixp_simulation.py [participants] [prefixes]
"""

import sys

from repro.bgp.updates import trace_stats
from repro.workloads import (
    generate_ixp,
    generate_policies,
    generate_update_trace,
    skew_summary,
)
from repro.core.controller import SDXController


def main() -> None:
    participants = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    prefixes = int(sys.argv[2]) if len(sys.argv) > 2 else 1200

    print(f"generating a synthetic IXP: {participants} participants, {prefixes} prefixes")
    ixp = generate_ixp(participants=participants, total_prefixes=prefixes, seed=1)
    skew = skew_summary([len(p) for p in ixp.announced.values()])
    print(
        f"  announcement skew: top 1% of ASes hold {skew['top_1pct_share']:.0%} "
        f"of prefixes, bottom 90% hold {skew['bottom_90pct_share']:.0%}"
    )

    controller = SDXController(ixp.config)
    controller.route_server.load(ixp.updates)

    workload = generate_policies(ixp, seed=2)
    print(f"  policy mix (§6.1): {workload.policy_count} policies across "
          f"{len(workload.policies)} participants")
    with controller.deferred_recompilation():
        for name, policy_set in workload.policies.items():
            controller.policy.set_policies(name, policy_set)

    result = controller.last_compilation
    stats = result.stats
    print(
        f"\ninitial compilation: {stats.rules} rules, "
        f"{stats.fec_groups} prefix groups, {stats.total_seconds:.2f}s "
        f"(VNH {stats.vnh_compute_seconds:.2f}s, compose {stats.compose_seconds:.2f}s)"
    )

    trace = generate_update_trace(ixp, bursts=40, seed=3)
    report = trace_stats(trace.updates, ixp.all_prefixes())
    print(
        f"\nreplaying update trace: {report.updates} updates in {report.bursts} bursts "
        f"({report.fraction_prefixes_updated:.1%} of prefixes touched)"
    )

    for index, update in enumerate(trace.updates):
        controller.routing.process_update(update)
        if (index + 1) % 25 == 0:
            extra = controller.fast_path.additional_rules()
            print(
                f"  after {index + 1:4d} updates: table={controller.table_size():5d} rules "
                f"(+{extra} fast-path)"
            )
            # the background optimizer runs between bursts (Section 4.3.2)
            controller.run_background_recompilation()
            print(
                f"    background recompilation -> table={controller.table_size():5d} rules"
            )

    times = sorted(entry.seconds for entry in controller.ops.fast_path_log)
    if times:
        p50 = times[len(times) // 2]
        p99 = times[min(len(times) - 1, int(len(times) * 0.99))]
        print(
            f"\nfast-path processing over the final burst window: "
            f"p50={1000 * p50:.1f}ms  p99={1000 * p99:.1f}ms"
        )
    print("done.")


if __name__ == "__main__":
    main()
