#!/usr/bin/env python3
"""Wide-area server load balancing from a *remote* SDX participant.

Reproduces the paper's Figure 4b/5b deployment: an AWS tenant with no
physical port at the exchange announces an anycast service prefix from
the SDX, then redirects client requests to different backend instances
by rewriting the destination address in the middle of the network — no
DNS tricks, no TTL games.

Run with::

    python examples/wide_area_load_balancer.py
"""

from repro import IXPConfig, RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.ixp.traffic import RateMeter, UDPFlow
from repro.policy import fwd, if_, match, modify
from repro.sim.clock import Simulator

ANYCAST = "74.125.1.0/24"
INSTANCE_1 = "54.198.0.10"
INSTANCE_2 = "54.198.128.20"


def build_deployment() -> EmulatedIXP:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant("AWS", 64496, [])  # remote: virtual switch only
    ixp = EmulatedIXP(config)

    # AS B provides transit toward the real instance addresses.
    ixp.controller.routing.announce(
        "B", "54.198.0.0/16", RouteAttributes(as_path=[65002, 14618], next_hop="172.0.0.11")
    )
    ixp.add_host("client-east", "A", "204.57.0.67")
    ixp.add_host("client-west", "A", "198.51.100.9")
    ixp.add_host("instance-1", "B", INSTANCE_1, originate="54.198.0.0/17")
    ixp.add_host("instance-2", "B", INSTANCE_2, originate="54.198.128.0/17")
    return ixp


def main() -> None:
    ixp = build_deployment()
    tenant = ixp.controller.register_participant("AWS")

    # 1. Originate the anycast prefix from the SDX (Section 3.2).
    tenant.announce(ANYCAST)
    # 2. Initially send everything to instance #1.
    tenant.set_policies(
        inbound=match(dstip=ANYCAST) >> modify(dstip=INSTANCE_1) >> fwd("B1"),
    )

    simulator = Simulator()
    meter = RateMeter(simulator)
    meter.watch_host("instance-1", ixp, "instance-1")
    meter.watch_host("instance-2", ixp, "instance-2")
    for host in ("client-east", "client-west"):
        UDPFlow(ixp, host, 1.0, dstip="74.125.1.1", dstport=80, srcport=53000, proto=17).start(
            simulator, until=120.0
        )
    meter.start(until=120.0)

    # 3. At t=60 s, shift the eastern clients to instance #2.
    def install_lb() -> None:
        tenant.set_policies(
            inbound=match(dstip=ANYCAST)
            >> if_(
                match(srcip="204.57.0.0/16"),
                modify(dstip=INSTANCE_2) >> fwd("B1"),
                modify(dstip=INSTANCE_1) >> fwd("B1"),
            )
        )

    simulator.schedule(60.0, install_lb)
    simulator.run_until(120.0)

    print("wide-area load balancing timeline (Mbps per instance):")
    for at, label in ((50.0, "before policy"), (110.0, "after policy")):
        rates = meter.rates_at(at)
        print(
            f"  t={at:5.0f}s  instance-1={rates['instance-1']:.1f}  "
            f"instance-2={rates['instance-2']:.1f}   ({label})"
        )
    print(
        "\nThe tenant never owned a port at the exchange: the anycast prefix\n"
        "was originated by the SDX and the rewrite happened in the fabric."
    )


if __name__ == "__main__":
    main()
