#!/usr/bin/env python3
"""Resilience drill: the SDX degrading sanely under injected faults.

Walks the Figure 1 exchange through four failure drills using the
seeded fault-injection harness (`repro.resilience.faults`):

1. a participant ships a policy that explodes at compile time — the
   controller quarantines exactly that participant;
2. a route flaps — RFC 2439 damping suppresses the recompilation storm
   and schedules one catch-up;
3. a peer falls silent — the hold timer fails the session, graceful
   restart (RFC 4724) retains its routes, backoff reconnection brings
   it back without a single flow-table write;
4. a fabric commit is sabotaged mid-transaction — the two-phase commit
   rolls the flow table back bit-identically.

Run with::

    python examples/resilience_drill.py
"""

from repro import IXPConfig, RouteAttributes, SDXController
from repro.resilience import CommitSabotage, FaultInjector, LivenessConfig
from repro.sim.clock import Simulator
from repro.policy import fwd, match

PREFIX = "10.1.0.0/16"


def build_exchange() -> SDXController:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    controller = SDXController(config)
    controller.routing.announce(
        "B", PREFIX, RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
    )
    controller.routing.announce(
        "C", PREFIX, RouteAttributes(as_path=[65100], next_hop="172.0.0.21")
    )
    controller.register_participant("A").set_policies(
        outbound=(match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")),
        recompile=False,
    )
    controller.compile()
    return controller


def drill_poisoned_policy(controller: SDXController, injector: FaultInjector) -> None:
    print("== Drill 1: poisoned participant policy ==")
    injector.poison_policy(controller, "A")
    controller.compile()  # does not raise: the culprit is quarantined
    record = controller.ops.quarantined()["A"]
    print(f"quarantined: {record.participant} ({record.error_type}: {record.error})")
    print(f"health: {controller.ops.health().summary()}")
    # The operator ships a fixed policy; quarantine lifts automatically.
    controller.register_participant("A").set_policies(
        outbound=(match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")),
        recompile=True,
    )
    print(f"after fix: degraded={controller.ops.health().degraded}\n")


def drill_flap_damping(controller: SDXController, sim: Simulator) -> None:
    print("== Drill 2: route-flap damping ==")
    waves_before = len(controller.ops.fast_path_log)
    attributes = RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
    for _ in range(6):
        controller.routing.withdraw("B", PREFIX)
        controller.routing.announce("B", PREFIX, attributes)
    waves = len(controller.ops.fast_path_log) - waves_before
    print(f"12 flap events -> {waves} recompilation wave(s)")
    print(f"damped routes: {controller.resilience.damped_routes()}")
    sim.run_until(sim.now + 6 * 3600)  # penalties decay; one catch-up runs
    catch_up = len(controller.ops.fast_path_log) - waves_before - waves
    print(f"after decay: {catch_up} catch-up recompilation, "
          f"damped={controller.ops.health().damped}\n")


def drill_graceful_restart(controller, sim: Simulator, reachable: dict) -> None:
    print("== Drill 3: session failure with graceful restart ==")
    resilience = controller.resilience
    server = controller.route_server
    sim.run_until(sim.now + 2)  # settle any in-flight reconnections
    resilience.liveness.heard_from("B")  # B's last word: hold expires in 90s
    table_hash = controller.switch.table.content_hash()
    # B's router becomes unreachable: probes fail until the link heals.
    reachable["B"] = False
    # A and C stay chatty; B falls silent and its hold timer expires.
    horizon = sim.now + 120
    for peer in ("A", "C"):
        sim.schedule_every(
            10, lambda p=peer: resilience.liveness.heard_from(p), until=horizon
        )
    sim.run_until(sim.now + 95)
    print(f"B session: {server.session('B').state.value}, "
          f"stale routes retained: {len(server.stale_prefixes('B'))}")
    reachable["B"] = True
    sim.run_until(sim.now + 15)  # backoff reconnection brings B back
    print(f"B session after reconnect: {server.session('B').state.value}")
    controller.routing.announce(  # B refreshes its table; End-of-RIB sweeps nothing
        "B", PREFIX, RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
    )
    resilience.end_of_rib("B")
    unchanged = controller.switch.table.content_hash() == table_hash
    print(f"flow table untouched across failure + restart: {unchanged}\n")


def drill_commit_sabotage(controller: SDXController, injector: FaultInjector) -> None:
    print("== Drill 4: transactional fabric commit ==")
    before = controller.switch.table.content_hash()
    injector.sabotage_commit(controller)
    try:
        controller.run_background_recompilation()
    except CommitSabotage as exc:
        print(f"commit aborted: {exc}")
    print(f"rolled back bit-identically: "
          f"{controller.switch.table.content_hash() == before}")
    controller.run_background_recompilation()  # recovery commit is clean
    print(f"health: {controller.ops.health().summary()}")


def main() -> None:
    controller = build_exchange()
    sim = Simulator()
    reachable: dict = {}  # peer -> probe verdict (absent = reachable)
    controller.enable_resilience(
        clock=sim,
        liveness=LivenessConfig(hold_time=90),
        reconnect_probe=lambda peer: reachable.get(peer, True),
    )
    injector = FaultInjector(seed=42)

    drill_poisoned_policy(controller, injector)
    drill_flap_damping(controller, sim)
    drill_graceful_restart(controller, sim, reachable)
    drill_commit_sabotage(controller, injector)

    print(f"\nfault log (seed {injector.seed}): {injector.log}")


if __name__ == "__main__":
    main()
