#!/usr/bin/env python3
"""Operator tooling: tracing forwarding decisions and accounting traffic.

Running an exchange means answering two questions all day: *why did
this packet go there?* and *whose policy is carrying how much traffic?*
This example drives both tools the controller exposes:

* ``trace_packet`` — the `ovs-appctl ofproto/trace` of the SDX:
  explains which rule matched, from whose policy, at what priority;
* ``policy_traffic`` / ``default_traffic`` — per-policy byte/packet
  accounting from the provenance-segmented flow table.

Run with::

    python examples/operator_console.py
"""

from repro import IXPConfig, RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet, fwd, match


def build() -> EmulatedIXP:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    ixp = EmulatedIXP(config)
    controller = ixp.controller
    controller.routing.announce(
        "B", "10.1.0.0/16", RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
    )
    controller.routing.announce(
        "C", "10.1.0.0/16", RouteAttributes(as_path=[65100], next_hop="172.0.0.21")
    )
    ixp.add_host("client", "A", "50.0.0.1")
    controller.register_participant("A").set_policies(
        outbound=match(dstport=80) >> fwd("B")
    )
    return ixp


def tagged_probe(controller, dstport: int) -> Packet:
    (announcement,) = [
        a
        for a in controller.advertisements("A")
        if a.prefix == IPv4Prefix("10.1.0.0/16")
    ]
    vmac = controller.arp.resolve(announcement.attributes.next_hop)
    return Packet(dstip="10.1.2.3", dstport=dstport, srcip="50.0.0.1", srcport=7, dstmac=vmac)


def main() -> None:
    ixp = build()
    controller = ixp.controller

    print("== why did this packet go there? ==")
    for dstport in (80, 22):
        trace = controller.trace_packet(tagged_probe(controller, dstport), "A1")
        print(f"  dstport={dstport:3d}: {trace!r}")

    print("\n== who is carrying how much? ==")
    for _ in range(5):
        ixp.send("client", dstip="10.1.2.3", dstport=80, srcport=7)
    for _ in range(2):
        ixp.send("client", dstip="10.1.2.3", dstport=22, srcport=7)
    packets, _ = controller.policy_traffic("A")
    default_packets, _ = controller.default_traffic()
    print(f"  A's policy steered : {packets} packet(s)")
    print(f"  default BGP carried: {default_packets} packet(s)")

    print("\n== and after a route change? ==")
    controller.routing.withdraw("B", "10.1.0.0/16")
    trace = controller.trace_packet(tagged_probe(controller, 80), "A1")
    print(f"  dstport= 80: {trace!r}   (fast-path override, B withdrew)")


if __name__ == "__main__":
    main()
