#!/usr/bin/env python3
"""Guarded commits drill: always-on verification with auto-rollback.

Walks a small exchange through the two production defenses of
`repro.guard`:

1. **Admission plane** — tenant C storms the policy API; the
   per-participant token bucket rejects the excess with a typed error
   carrying `retry_after`, escalates the backoff penalty while the
   storm persists, and leaves the other tenants' control-plane access
   untouched.
2. **Guarded commit** — a fault injector corrupts A's next commit
   *silently* (rules keep their cookies, matches, and priorities but
   lose their actions, so only behavioural verification can tell).
   The guard's sampled differential check catches it inside the open
   transaction, rolls the flow table back byte-identically, quarantines
   the offender, and records a replayable counterexample incident.
3. **Release** — the operator lifts the quarantine; the next commit is
   verified clean by the same guard.

Run with::

    python examples/guarded_commits.py
"""

from repro import IXPConfig, RouteAttributes, SDXConfig, SDXController, SDXPolicySet
from repro.guard import AdmissionConfig, GuardConfig, PolicyEditRateExceeded
from repro.policy import fwd, match
from repro.resilience import FaultInjector

PREFIX = "10.1.0.0/16"

#: Part of the drill's test vector: detection is *sampled*, and this
#: base seed deterministically draws a probe that traverses the
#: corrupted rule at the 8-probe default budget.
GUARD_SEED = 1


def build_exchange() -> SDXController:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    controller = SDXController(
        config,
        sdx=SDXConfig(
            guard=GuardConfig(probe_budget=8, seed=GUARD_SEED),
            admission=AdmissionConfig(
                policy_edits_per_sec=1.0,
                policy_edit_burst=4,
                backoff_initial=0.5,
                backoff_factor=2.0,
            ),
        ),
    )
    controller.routing.announce(
        "B", PREFIX, RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
    )
    controller.routing.announce(
        "C", PREFIX, RouteAttributes(as_path=[65100], next_hop="172.0.0.21")
    )
    controller.policy.set_policies(
        "A",
        SDXPolicySet(
            outbound=(match(dstport=80) >> fwd("B"))
            + (match(dstport=443) >> fwd("C"))
        ),
        recompile=False,
    )
    controller.compile()
    return controller


def drill_policy_storm(controller: SDXController) -> None:
    print("== Drill 1: one tenant storms the policy API ==")
    rejections = 0
    last = None
    for attempt in range(8):
        policy = SDXPolicySet(outbound=(match(dstport=8000 + attempt) >> fwd("B")))
        try:
            controller.policy.set_policies("C", policy, recompile=True)
        except PolicyEditRateExceeded as rejected:
            rejections += 1
            last = rejected
    print(f"admitted {8 - rejections}/8 edits from C, rejected {rejections}")
    print(f"last rejection: {last.participant} must retry in {last.retry_after:.1f}s")
    state = controller.admission.snapshot()["C"]
    print(f"C's escalated backoff penalty: {state['penalty']:.1f}s")
    # The neighbours never notice: A's edits are admitted immediately.
    controller.policy.set_policies(
        "A",
        SDXPolicySet(
            outbound=(match(dstport=80) >> fwd("B"))
            + (match(dstport=443) >> fwd("C"))
        ),
        recompile=True,
    )
    print(f"health: {controller.ops.health().summary()}")
    print()


def drill_guarded_commit(controller: SDXController) -> None:
    print("== Drill 2: a silently corrupted commit ==")
    FaultInjector(seed=42).corrupt_commit(controller, participant="A")
    pre_digest = controller.switch.table.content_hash()
    bad_edit = SDXPolicySet(outbound=(match(dstport=22) >> fwd("C")))
    try:
        controller.policy.set_policies("A", bad_edit, recompile=True)
    except Exception as error:
        print(f"commit refused: {type(error).__name__}")
    restored = controller.switch.table.content_hash() == pre_digest
    print(f"flow table rolled back byte-identically: {restored}")
    record = controller.ops.health().quarantined["A"]
    print(f"quarantined: A (state={record.state}, offenses={record.offenses})")
    incident = controller.ops.health().incidents[-1]
    print(f"incident: {incident!r}")
    print(f"replay: controller.ops.verify(budget=8, seed={incident.seed})")
    print()


def drill_release(controller: SDXController) -> None:
    print("== Drill 3: operator releases the quarantine ==")
    controller.ops.release_quarantine("A")
    report = controller.compile()
    print(f"post-release commit verified clean: {report.verified.ok}")
    print(f"full differential pass: {controller.ops.verify(probes=64, seed=9).ok}")
    print(f"health: {controller.ops.health().summary()}")


def main() -> None:
    controller = build_exchange()
    drill_policy_storm(controller)
    drill_guarded_commit(controller)
    drill_release(controller)


if __name__ == "__main__":
    main()
