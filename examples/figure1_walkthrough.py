#!/usr/bin/env python3
"""The paper's Figure 1, with every compilation artifact made visible.

Companion to ``docs/internals.md``: builds the three-participant
exchange, installs the worked-example policies, and prints what each
pipeline stage actually produced — prefix groups, VNH/VMAC assignments,
re-advertisements, the per-provenance rule segments, and finally a set
of traced forwarding decisions.

Run with::

    python examples/figure1_walkthrough.py
"""

from repro import IXPConfig, RouteAttributes, SDXController
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet, fwd, match

PREFIXES = {f"p{i}": f"10.{i}.0.0/16" for i in range(1, 6)}


def build() -> SDXController:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [("B1", "172.0.0.11", "08:00:27:00:00:11"), ("B2", "172.0.0.12", "08:00:27:00:00:12")],
    )
    config.add_participant(
        "C",
        65003,
        [("C1", "172.0.0.21", "08:00:27:00:00:21"), ("C2", "172.0.0.22", "08:00:27:00:00:22")],
    )
    controller = SDXController(config)

    def attrs(asns, next_hop):
        return RouteAttributes(as_path=asns, next_hop=next_hop)

    controller.routing.announce("B", PREFIXES["p1"], attrs([65002, 65100], "172.0.0.11"))
    controller.routing.announce("B", PREFIXES["p2"], attrs([65002, 65101], "172.0.0.11"))
    controller.routing.announce("B", PREFIXES["p3"], attrs([65002, 65102], "172.0.0.11"))
    controller.routing.announce(
        "B", PREFIXES["p4"], attrs([65002, 65103], "172.0.0.12"), export_to=["C"]
    )
    controller.routing.announce("C", PREFIXES["p1"], attrs([65100], "172.0.0.21"))
    controller.routing.announce("C", PREFIXES["p2"], attrs([65101], "172.0.0.21"))
    controller.routing.announce("C", PREFIXES["p3"], attrs([65003, 65110, 65102], "172.0.0.21"))
    controller.routing.announce("C", PREFIXES["p4"], attrs([65003, 65103], "172.0.0.22"))
    controller.routing.announce("A", PREFIXES["p5"], attrs([65001, 65120], "172.0.0.1"))
    return controller


def label_of(prefix_text: str) -> str:
    for label, text in PREFIXES.items():
        if text == prefix_text:
            return label
    return prefix_text


def main() -> None:
    controller = build()
    a = controller.register_participant("A")
    b = controller.register_participant("B")
    a.set_policies(
        outbound=(match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")),
        recompile=False,
    )
    b.set_policies(
        inbound=(match(srcip="0.0.0.0/1") >> fwd("B1"))
        + (match(srcip="128.0.0.0/1") >> fwd("B2")),
        recompile=False,
    )
    result = controller.compile()

    print("== forwarding equivalence classes (Section 4.2) ==")
    for group in result.fec_table.affected_groups:
        names = sorted(label_of(str(p)) for p in group.prefixes)
        print(f"  {{{', '.join(names)}}}  VNH={group.vnh.address}  VMAC={group.vnh.hardware}")
    print("  p5 has no FEC: nothing overrides its default (announced by A itself)")

    print("\n== what the route server tells A (VNH-rewritten) ==")
    for announcement in controller.advertisements("A"):
        print(
            f"  {label_of(str(announcement.prefix))} via next-hop "
            f"{announcement.attributes.next_hop}"
        )

    print("\n== the compiled table, by provenance segment ==")
    for label, block in result.segments:
        print(f"  {':'.join(map(str, label)):12s} {len(block):3d} rule(s)")
    print(f"  total: {result.stats.rules} rules "
          f"(compiled in {result.stats.total_seconds * 1000:.0f} ms)")

    print("\n== traced forwarding decisions from A1 ==")
    advertised = {
        str(ann.prefix): ann.attributes.next_hop
        for ann in controller.advertisements("A")
    }
    for label, dstport, srcip in (
        ("HTTP  to p1", 80, "50.0.0.1"),
        ("HTTP  to p1 (high src)", 80, "200.0.0.1"),
        ("HTTPS to p1", 443, "50.0.0.1"),
        ("SSH   to p1", 22, "50.0.0.1"),
        ("HTTP  to p4", 80, "50.0.0.1"),
    ):
        prefix = PREFIXES["p4"] if "p4" in label else PREFIXES["p1"]
        next_hop = advertised[prefix]
        vmac = controller.arp.resolve(next_hop)
        if vmac is None:
            owner = controller.config.owner_of_address(next_hop)
            vmac = owner.port_for_address(next_hop).hardware
        packet = Packet(
            dstip=IPv4Prefix(prefix).host(9),
            dstmac=vmac,
            dstport=dstport,
            srcip=srcip,
            srcport=7,
        )
        trace = controller.trace_packet(packet, "A1")
        print(f"  {label:24s} -> {trace!r}")

    print(
        "\np4's HTTP never reaches B (export scope), B's inbound TE picked the\n"
        "port by source address, and everything unclaimed followed BGP."
    )


if __name__ == "__main__":
    main()
