"""Shared fixtures: the paper's Figure 1 exchange, ready to compile."""

from __future__ import annotations

import pytest

from repro import IXPConfig, RouteAttributes, SDXController
from repro.policy import fwd, match


P1, P2, P3, P4, P5 = (
    "10.1.0.0/16",
    "10.2.0.0/16",
    "10.3.0.0/16",
    "10.4.0.0/16",
    "10.5.0.0/16",
)


def make_figure1_config() -> IXPConfig:
    """Three participants: A (1 port), B (2 ports), C (2 ports)."""
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [
            ("B1", "172.0.0.11", "08:00:27:00:00:11"),
            ("B2", "172.0.0.12", "08:00:27:00:00:12"),
        ],
    )
    config.add_participant(
        "C",
        65003,
        [
            ("C1", "172.0.0.21", "08:00:27:00:00:21"),
            ("C2", "172.0.0.22", "08:00:27:00:00:22"),
        ],
    )
    return config


def load_figure1_routes(controller: SDXController) -> None:
    """The Figure 1b routing table.

    B announces p1-p4 (p4 only exported to C); C announces p1-p4;
    A announces p5 (which therefore keeps pure-BGP default behaviour —
    no policy of A can apply to a prefix A itself originates, matching
    the paper's "p5 retains its default behavior").
    C has the shorter path for p1, p2; B wins p3.
    """

    def attrs(asns, next_hop):
        return RouteAttributes(as_path=asns, next_hop=next_hop)

    controller.routing.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
    controller.routing.announce("B", P2, attrs([65002, 65101], "172.0.0.11"))
    controller.routing.announce("B", P3, attrs([65002, 65102], "172.0.0.11"))
    controller.routing.announce("B", P4, attrs([65002, 65103], "172.0.0.12"), export_to=["C"])
    controller.routing.announce("C", P1, attrs([65100], "172.0.0.21"))
    controller.routing.announce("C", P2, attrs([65101], "172.0.0.21"))
    controller.routing.announce("C", P3, attrs([65003, 65110, 65102], "172.0.0.21"))
    controller.routing.announce("C", P4, attrs([65003, 65103], "172.0.0.22"))
    controller.routing.announce("A", P5, attrs([65001, 65120], "172.0.0.1"))


def install_figure1_policies(controller: SDXController, recompile: bool = True) -> None:
    """A's application-specific peering + B's inbound traffic engineering."""
    a = controller.register_participant("A")
    b = controller.register_participant("B")
    a.set_policies(
        outbound=(match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")),
        recompile=False,
    )
    b.set_policies(
        inbound=(match(srcip="0.0.0.0/1") >> fwd("B1"))
        + (match(srcip="128.0.0.0/1") >> fwd("B2")),
        recompile=False,
    )
    if recompile:
        controller.compile()


@pytest.fixture
def figure1_config() -> IXPConfig:
    return make_figure1_config()


@pytest.fixture
def figure1_controller(figure1_config) -> SDXController:
    """Controller with Figure 1 routes loaded (no policies yet)."""
    controller = SDXController(figure1_config)
    load_figure1_routes(controller)
    return controller


@pytest.fixture
def figure1_compiled(figure1_controller) -> SDXController:
    """Controller with Figure 1 routes + policies, compiled."""
    install_figure1_policies(figure1_controller)
    return figure1_controller
