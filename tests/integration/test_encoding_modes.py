"""The VMAC encoding and dataplane layout knobs, end to end.

Four controller configurations span the matrix: per-FEC x superset
encodings against single-table x multi-table layouts.  Whatever the
configuration, the compiled fabric must verify differentially clean and
pass every structural invariant; the superset encoding must never need
*more* fabric rules than per-FEC, and the multi-table layout must
forward byte-for-byte like the composed single table.
"""

import os

import pytest

from repro.core.controller import SDXController
from repro.core.supersets import SupersetEncoder
from repro.experiments.common import build_scenario
from repro.verify.invariants import check_all_invariants


def scenario():
    return build_scenario(participants=10, prefixes=64, seed=7, policy_seed=8)


MODES = [
    ("fec", "single"),
    ("superset", "single"),
    ("fec", "multitable"),
    ("superset", "multitable"),
]


class TestModeMatrix:
    @pytest.mark.parametrize("vmac_mode,dataplane_mode", MODES)
    def test_compiles_and_verifies_clean(self, vmac_mode, dataplane_mode):
        controller = scenario().controller(
            vmac_mode=vmac_mode, dataplane_mode=dataplane_mode
        )
        report = controller.ops.verify(probes=96, seed=11)
        assert report.ok, report.summary()
        assert not check_all_invariants(controller)

    @pytest.mark.parametrize("vmac_mode,dataplane_mode", MODES)
    def test_survives_policy_edit_and_reverify(self, vmac_mode, dataplane_mode):
        from repro.policy.language import fwd, match

        controller = scenario().controller(
            vmac_mode=vmac_mode, dataplane_mode=dataplane_mode
        )
        names = sorted(controller.config.participant_names())
        editor, target = names[0], names[-1]
        from repro.core.participant import SDXPolicySet

        controller.policy.set_policies(
            editor,
            SDXPolicySet(outbound=match(dstport=4321) >> fwd(target)),
            recompile=True,
        )
        report = controller.ops.verify(probes=96, seed=13)
        assert report.ok, report.summary()
        assert not check_all_invariants(controller)


class TestSupersetEncoding:
    def test_installs_no_more_rules_than_fec(self):
        fec = scenario().controller(vmac_mode="fec")
        superset = scenario().controller(vmac_mode="superset")
        assert len(superset.switch.table) <= len(fec.switch.table)

    def test_group_vmacs_decode_under_the_controller_encoder(self):
        controller = scenario().controller(vmac_mode="superset")
        encoder = controller.superset_encoder
        assert isinstance(encoder, SupersetEncoder)
        last = controller.last_compilation
        for group in last.fec_table.affected_groups:
            decoded = encoder.decode(group.vnh.hardware)
            assert decoded is not None, group.vnh.hardware
            assert decoded.nexthop_id > 0

    def test_fec_mode_has_no_encoder(self):
        controller = scenario().controller(vmac_mode="fec")
        assert controller.superset_encoder is None


class TestMultiTableLayout:
    def test_rules_span_two_tables(self):
        controller = scenario().controller(dataplane_mode="multitable")
        assert controller.switch.table.table_ids() == (0, 1)
        stage1 = controller.switch.table.rules_in(0)
        assert any(rule.goto == 1 for rule in stage1)
        assert all(rule.goto is None for rule in controller.switch.table.rules_in(1))

    def test_single_table_stays_flat(self):
        controller = scenario().controller(dataplane_mode="single")
        assert controller.switch.table.table_ids() == (0,)

    def test_forwards_identically_to_the_composed_layout(self):
        """Same scenario, both layouts: every probe resolves identically.

        Both controllers run per-FEC encoding over the same scenario, so
        their VNH/VMAC assignment is deterministic and identical — a
        router-faithful probe built from one is valid against the other.
        """
        import random

        from repro.verify.checker import DifferentialChecker
        from repro.verify.interpreter import ReferenceInterpreter

        single = scenario().controller(dataplane_mode="single")
        multi = scenario().controller(dataplane_mode="multitable")
        checker = DifferentialChecker(single)
        interpreter = ReferenceInterpreter(single)
        rng = random.Random(17)
        ports = [port.port_id for port in single.config.physical_ports()]
        prefixes = list(single.route_server.sorted_prefixes())
        compared = 0
        for _ in range(96):
            probe = checker._generate_probe(rng, ports, prefixes, interpreter)
            if probe is None:
                continue
            located = probe.packet.modify(port=probe.in_port)
            one = single.switch.table.resolve(located)
            two = multi.switch.table.resolve(located)
            lhs = frozenset() if one is None else one[1]
            rhs = frozenset() if two is None else two[1]
            assert lhs == rhs, located
            compared += 1
        assert compared > 0


class TestModeKnobs:
    def test_env_knobs_select_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMAC", "superset")
        monkeypatch.setenv("REPRO_DATAPLANE", "multitable")
        controller = scenario().controller()
        assert controller.vmac_mode == "superset"
        assert controller.dataplane_mode == "multitable"

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMAC", "superset")
        controller = scenario().controller(vmac_mode="fec")
        assert controller.vmac_mode == "fec"

    def test_invalid_modes_are_rejected(self):
        config = scenario().ixp.config
        with pytest.raises(ValueError):
            SDXController(config, vmac_mode="bitmap")
        with pytest.raises(ValueError):
            SDXController(config, dataplane_mode="pipeline")

    def test_default_is_fec_single(self, monkeypatch):
        monkeypatch.delenv("REPRO_VMAC", raising=False)
        monkeypatch.delenv("REPRO_DATAPLANE", raising=False)
        controller = scenario().controller()
        assert controller.vmac_mode == "fec"
        assert controller.dataplane_mode == "single"
        assert os.environ.get("REPRO_VMAC") is None
