"""Failure-injection tests: the SDX under faults.

The paper's correctness story ("the data plane stays in sync with BGP")
is only meaningful if the system degrades sanely when things break.
These tests inject session failures, withdrawal storms, resource
exhaustion, and stale-state races, asserting the invariants hold:
no traffic to withdrawn destinations, no leaks across participants,
graceful errors rather than corrupted tables.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.vmac import VirtualNextHopAllocator
from repro.ixp.deployment import EmulatedIXP
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet

from tests.conftest import (
    P1,
    P2,
    P3,
    P4,
    P5,
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)


def tag_for(controller, sender, dst_prefix):
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    next_hop = advertised.get(IPv4Prefix(dst_prefix))
    if next_hop is None:
        return None
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    return vmac


class TestSessionFailures:
    def test_session_crash_withdraws_all_routes(self, figure1_compiled):
        controller = figure1_compiled
        controller.route_server.session("B").fail()
        for prefix in (P1, P2, P3):
            best = controller.route_server.best_route("A", prefix)
            assert best is None or best.learned_from != "B"
        # p4 was only announced by B and C; C remains
        assert controller.route_server.best_route("C", P4) is None

    def test_traffic_reroutes_after_session_crash(self, figure1_compiled):
        controller = figure1_compiled
        controller.route_server.session("B").fail()
        vmac = tag_for(controller, "A", P1)
        packet = Packet(
            dstip="10.1.2.3", dstmac=vmac, port="A1", dstport=80, srcip="50.0.0.1", srcport=7
        )
        out = controller.switch.receive(packet, "A1")
        # HTTP can no longer divert via B: only C remains
        assert [port for port, _ in out] == ["C1"]

    def test_session_reestablishment_restores_service(self, figure1_compiled):
        controller = figure1_compiled
        controller.route_server.session("B").fail()
        controller.route_server.session("B").establish()
        controller.routing.announce(
            "B", P1, RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
        )
        vmac = tag_for(controller, "A", P1)
        packet = Packet(
            dstip="10.1.2.3", dstmac=vmac, port="A1", dstport=80, srcip="50.0.0.1", srcport=7
        )
        out = controller.switch.receive(packet, "A1")
        assert [port for port, _ in out] == ["B1"]


class TestWithdrawalStorm:
    def test_total_withdrawal_leaves_clean_state(self, figure1_compiled):
        controller = figure1_compiled
        for peer, prefixes in (("B", (P1, P2, P3, P4)), ("C", (P1, P2, P3, P4)), ("A", (P5,))):
            for prefix in prefixes:
                controller.routing.withdraw(peer, prefix)
        assert controller.route_server.all_prefixes() == frozenset()
        controller.run_background_recompilation()
        assert controller.last_compilation.stats.fec_groups == 0
        # nothing forwards: any tagged probe is dropped
        packet = Packet(
            dstip="10.1.2.3",
            dstmac="08:00:27:00:00:11",
            port="A1",
            dstport=80,
            srcip="50.0.0.1",
        )
        out = controller.switch.receive(packet, "A1")
        # physical-MAC default rules are static, but B's router would
        # itself drop the unrouted traffic; the fabric at most hands it
        # to B (never to an unrelated participant).
        assert all(port in ("B1", "B2") for port, _ in out)

    def test_flap_storm_converges(self, figure1_compiled):
        controller = figure1_compiled
        for _ in range(10):
            controller.routing.withdraw("B", P1)
            controller.routing.announce(
                "B", P1, RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
            )
        assert len(controller.fast_path.active_prefixes) == 1  # one block, replaced in place
        vmac = tag_for(controller, "A", P1)
        packet = Packet(
            dstip="10.1.2.3", dstmac=vmac, port="A1", dstport=80, srcip="50.0.0.1", srcport=7
        )
        out = controller.switch.receive(packet, "A1")
        assert [port for port, _ in out] == ["B1"]
        controller.run_background_recompilation()
        out = controller.switch.receive(
            Packet(
                dstip="10.1.2.3",
                dstmac=tag_for(controller, "A", P1),
                port="A1",
                dstport=80,
                srcip="50.0.0.1",
                srcport=7,
            ),
            "A1",
        )
        assert [port for port, _ in out] == ["B1"]


class TestResourceExhaustion:
    def test_vnh_pool_exhaustion_raises_cleanly(self, figure1_config):
        from repro.core.controller import SDXController

        config = make_figure1_config()
        tiny = SDXController(config)
        tiny.allocator = VirtualNextHopAllocator("172.16.0.0/30")  # 2 usable
        tiny.arp.register(tiny.allocator.resolve)
        load_figure1_routes(tiny)
        install_figure1_policies(tiny, recompile=False)
        with pytest.raises(RuntimeError):
            tiny.compile()  # the base FEC groups alone overflow 2 addresses

    def test_flap_storm_does_not_exhaust_pool(self, figure1_config):
        # Regression: each fast-path pass used to allocate a fresh VNH
        # without releasing the superseded one, so a sustained flap on a
        # single prefix drained the pool between background recompiles.
        from repro.core.controller import SDXController

        config = make_figure1_config()
        tiny = SDXController(config)
        tiny.allocator = VirtualNextHopAllocator("172.16.0.0/28")  # 14 usable
        tiny.arp.register(tiny.allocator.resolve)
        load_figure1_routes(tiny)
        install_figure1_policies(tiny, recompile=False)
        tiny.compile()
        base_allocated = tiny.allocator.allocated
        pool_size = 14
        for _ in range(3 * pool_size):  # far more flaps than addresses
            tiny.routing.withdraw("C", P1)
            tiny.routing.announce(
                "C", P1, RouteAttributes(as_path=[65100], next_hop="172.0.0.21")
            )
        # One extra address may be live for the prefix's current VNH,
        # but churn must not grow the footprint beyond that.
        assert tiny.allocator.allocated <= base_allocated + 1
        assert tiny.allocator.released_total >= 3 * pool_size

    def test_mac_allocator_capacity_respected(self):
        from repro.netutils.mac import MACAllocator

        allocator = MACAllocator(capacity=3)
        for _ in range(3):
            allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()


class TestStaleState:
    def test_stale_vmac_traffic_follows_old_path_not_a_wrong_one(self, figure1_compiled):
        """Eventual consistency: a router that has not re-tagged yet uses
        the previous VMAC; the old rules must still forward it along the
        previously valid path (or drop), never somewhere new."""
        controller = figure1_compiled
        old_vmac = tag_for(controller, "A", P1)
        controller.routing.withdraw("C", P1)  # best flips to B, new VMAC issued
        packet = Packet(
            dstip="10.1.2.3", dstmac=old_vmac, port="A1", dstport=22, srcip="50.0.0.1", srcport=7
        )
        out = controller.switch.receive(packet, "A1")
        assert all(port in ("C1", "C2") for port, _ in out) or out == []

    def test_unknown_vmac_dropped_after_recompile(self, figure1_compiled):
        controller = figure1_compiled
        old_vmac = tag_for(controller, "A", P1)
        controller.routing.withdraw("C", P1)
        controller.run_background_recompilation()
        # The old base table is gone; stale tags from before the flap
        # must not match anything (the VNH pool never reuses addresses).
        packet = Packet(
            dstip="10.1.2.3", dstmac=old_vmac, port="A1", dstport=22, srcip="50.0.0.1", srcport=7
        )
        assert controller.switch.receive(packet, "A1") == []


class TestDataPlaneFaults:
    def test_arp_failure_drops_at_source(self):
        ixp = EmulatedIXP(make_figure1_config())
        controller = ixp.controller
        load_figure1_routes(controller)
        ixp.add_host("client", "A", "50.0.0.1")
        controller.compile()
        router = ixp.routers["A"]
        # sabotage: point a route at an unresolvable next hop
        router.install_route(P1, "172.0.0.250")
        before = router.arp_unresolved
        ixp.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        assert router.arp_unresolved == before + 1
        assert ixp.carried_upstream_by("B") == 0
        assert ixp.carried_upstream_by("C") == 0

    def test_unlinked_port_traffic_counted_not_crashing(self, figure1_compiled):
        controller = figure1_compiled
        # receive on a port id the switch owns but inject garbage location
        packet = Packet(dstip="10.1.2.3", dstmac="02:aa:bb:cc:dd:ee", port="A1")
        assert controller.switch.receive(packet, "A1") == []
