"""Integration tests: the SDX policy distributed over two physical switches.

Participant A connects to switch ``sw1``; B and C connect to ``sw2``.
The single-switch compilation result is split with
:func:`repro.core.multiswitch.distribute` and installed into two
emulated switches joined by one link; the Figure 1 behaviours must be
indistinguishable from the single-switch deployment.
"""

import pytest

from repro.core.multiswitch import SwitchTopology, distribute
from repro.dataplane.fabric import Fabric
from repro.dataplane.switch import SDNSwitch
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet

from tests.conftest import (
    P1,
    P3,
    P4,
    install_figure1_policies,
)

TOPOLOGY = SwitchTopology(
    switches={"sw1": ["A1"], "sw2": ["B1", "B2", "C1", "C2"]},
    links=[(("sw1", "up-2"), ("sw2", "up-1"))],
)


@pytest.fixture
def multiswitch(figure1_controller):
    controller = figure1_controller
    install_figure1_policies(controller)
    per_switch = distribute(
        controller.last_compilation.classifier, TOPOLOGY, controller.config
    )

    fabric = Fabric()
    switches = {}
    for name, ports in TOPOLOGY.switches.items():
        node = SDNSwitch(name, ports=list(ports) + sorted(TOPOLOGY.uplink_ports(name)))
        node.table.install_classifier(per_switch[name])
        switches[name] = fabric.add_node(node)
    fabric.link(("sw1", "up-2"), ("sw2", "up-1"))

    # Sinks: record what egresses each participant-facing port.
    from repro.dataplane.switch import Node

    class Sink(Node):
        def __init__(self, name):
            super().__init__(name)
            self.frames = []

        def ports(self):
            return frozenset({"wire"})

        def receive(self, packet, in_port):
            self.frames.append(packet)
            return []

    sinks = {}
    for port, switch in (("B1", "sw2"), ("B2", "sw2"), ("C1", "sw2"), ("C2", "sw2"), ("A1", "sw1")):
        sink = fabric.add_node(Sink(f"sink-{port}"))
        fabric.link((sink.name, "wire"), (switch, port))
        sinks[port] = sink
    return controller, fabric, sinks


def send(controller, fabric, dst_prefix, dstip, **headers):
    """Inject at A1 on sw1, tagged per A's advertised routes."""
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements("A")
    }
    next_hop = advertised[IPv4Prefix(dst_prefix)]
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    packet = Packet(dstip=dstip, dstmac=vmac, **headers)
    fabric.inject("sw1", "A1", packet)


class TestDistribution:
    def test_every_switch_gets_a_classifier(self, figure1_controller):
        install_figure1_policies(figure1_controller)
        per_switch = distribute(
            figure1_controller.last_compilation.classifier,
            TOPOLOGY,
            figure1_controller.config,
        )
        assert set(per_switch) == {"sw1", "sw2"}
        assert len(per_switch["sw1"]) > 0 and len(per_switch["sw2"]) > 0

    def test_validation_rejects_missing_ports(self, figure1_controller):
        install_figure1_policies(figure1_controller)
        bad = SwitchTopology(switches={"sw1": ["A1"]})
        with pytest.raises(ValueError):
            distribute(
                figure1_controller.last_compilation.classifier,
                bad,
                figure1_controller.config,
            )

    def test_validation_rejects_partitioned_topology(self, figure1_controller):
        install_figure1_policies(figure1_controller)
        disconnected = SwitchTopology(
            switches={"sw1": ["A1"], "sw2": ["B1", "B2", "C1", "C2"]}, links=[]
        )
        with pytest.raises(ValueError):
            distribute(
                figure1_controller.last_compilation.classifier,
                disconnected,
                figure1_controller.config,
            )

    def test_validation_rejects_chains(self, figure1_controller):
        install_figure1_policies(figure1_controller)
        with pytest.raises(ValueError):
            distribute(
                figure1_controller.last_compilation.classifier,
                TOPOLOGY,
                figure1_controller.config,
                chain_hop_ports=frozenset({"C1"}),
            )


class TestCrossSwitchForwarding:
    def test_http_diverts_via_b_across_the_link(self, multiswitch):
        controller, fabric, sinks = multiswitch
        send(controller, fabric, P1, "10.1.2.3", dstport=80, srcip="50.0.0.1", srcport=7)
        assert len(sinks["B1"].frames) == 1
        (frame,) = sinks["B1"].frames
        b1 = controller.config.participant("B").port("B1")
        assert frame["dstmac"] == b1.hardware  # delivered final
        assert fabric.traffic_on(("sw1", "up-2"), ("sw2", "up-1")) == 1

    def test_inbound_te_still_selects_by_source(self, multiswitch):
        controller, fabric, sinks = multiswitch
        send(controller, fabric, P3, "10.3.1.1", dstport=80, srcip="200.0.0.1", srcport=7)
        assert len(sinks["B2"].frames) == 1 and sinks["B1"].frames == []

    def test_default_traffic_reaches_best_route(self, multiswitch):
        controller, fabric, sinks = multiswitch
        send(controller, fabric, P1, "10.1.9.9", dstport=22, srcip="50.0.0.1", srcport=7)
        assert len(sinks["C1"].frames) == 1

    def test_export_scoped_prefix_still_respected(self, multiswitch):
        controller, fabric, sinks = multiswitch
        send(controller, fabric, P4, "10.4.1.1", dstport=80, srcip="50.0.0.1", srcport=7)
        assert len(sinks["C2"].frames) == 1
        assert sinks["B1"].frames == [] and sinks["B2"].frames == []

    def test_same_switch_traffic_stays_local(self, multiswitch):
        controller, fabric, sinks = multiswitch
        # C has no policy; C1 -> p3 default is via B (both on sw2).
        packet = Packet(
            dstip="10.3.1.1",
            dstport=9999,
            srcip="99.0.0.1",
            srcport=7,
            dstmac=_tag_for(controller, "C", P3),
        )
        fabric.inject("sw2", "C1", packet)
        assert len(sinks["B1"].frames) == 1
        assert fabric.traffic_on(("sw2", "up-1"), ("sw1", "up-2")) == 0


class TestThreeSwitchLine:
    """A on sw1, B on sw2, C on sw3, wired in a line: frames to C must
    transit sw2 using the in-port-scoped MAC rules."""

    TOPOLOGY = SwitchTopology(
        switches={"sw1": ["A1"], "sw2": ["B1", "B2"], "sw3": ["C1", "C2"]},
        links=[
            (("sw1", "u12"), ("sw2", "u21")),
            (("sw2", "u23"), ("sw3", "u32")),
        ],
    )

    def test_two_hop_transit(self, figure1_controller):
        controller = figure1_controller
        install_figure1_policies(controller)
        per_switch = distribute(
            controller.last_compilation.classifier, self.TOPOLOGY, controller.config
        )
        fabric = Fabric()
        for name, ports in self.TOPOLOGY.switches.items():
            node = SDNSwitch(
                name, ports=list(ports) + sorted(self.TOPOLOGY.uplink_ports(name))
            )
            node.table.install_classifier(per_switch[name])
            fabric.add_node(node)
        fabric.link(("sw1", "u12"), ("sw2", "u21"))
        fabric.link(("sw2", "u23"), ("sw3", "u32"))

        from repro.dataplane.switch import Node

        class Sink(Node):
            def __init__(self, name):
                super().__init__(name)
                self.frames = []

            def ports(self):
                return frozenset({"wire"})

            def receive(self, packet, in_port):
                self.frames.append(packet)
                return []

        sink = fabric.add_node(Sink("sink-C1"))
        fabric.link(("sink-C1", "wire"), ("sw3", "C1"))

        # HTTPS to p1 diverts via C (A's policy); C1 sits two hops away.
        send(figure1_controller, fabric, P1, "10.1.2.3", dstport=443,
             srcip="50.0.0.1", srcport=7)
        assert len(sink.frames) == 1
        assert fabric.traffic_on(("sw1", "u12"), ("sw2", "u21")) == 1
        assert fabric.traffic_on(("sw2", "u23"), ("sw3", "u32")) == 1


def _tag_for(controller, sender, dst_prefix):
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    next_hop = advertised[IPv4Prefix(dst_prefix)]
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    return vmac
