"""Seeded chaos: deferred guard verification on the event-loop runtime.

The event-loop runtime moves the guard's probe pass *after*
``transaction.commit()`` (so verification of commit N overlaps
compilation of N+1).  These tests inject the same silent corruption as
``test_guard_chaos`` and assert the deferred machinery holds the same
line: the violation is detected by the verify task, the fabric is
rolled back byte-exactly from the pending snapshot, the culprit is
quarantined, the error surfaces from the drain — and the one thing
only the pipelined path can get wrong: a compilation in flight on top
of the rolled-back world is aborted, never installed.

Seeds follow the same contract as ``test_guard_chaos``: each base seed
was chosen so the budgeted probe pass deterministically draws a probe
that traverses the corrupted rule.
"""

import pytest

from repro.core.controller import SDXController
from repro.core.participant import SDXPolicySet
from repro.guard import GuardConfig
from repro.guard.commits import GuardedCommitError
from repro.policy.language import fwd, match
from repro.resilience import FaultInjector
from repro.runtime import RuntimeConfig

from tests.conftest import (
    P1,
    P3,
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)
from tests.integration.test_chaos import egress
from tests.integration.test_guard_chaos import BAD_EDIT

pytestmark = pytest.mark.chaos


def guarded_eventloop(base_seed: int, runtime_config=None) -> SDXController:
    controller = SDXController(
        make_figure1_config(),
        guard=GuardConfig(probe_budget=16, seed=base_seed),
        runtime_mode="eventloop",
        runtime_config=runtime_config,
    )
    load_figure1_routes(controller)
    install_figure1_policies(controller)
    return controller


class TestDeferredViolation:
    def test_autodrain_violation_rolls_back_and_surfaces(self):
        controller = guarded_eventloop(base_seed=3)
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        pre_digest = controller.switch.table.content_hash()

        with pytest.raises(GuardedCommitError) as excinfo:
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)

        # rolled back byte-exactly from the deferred snapshot
        assert controller.switch.table.content_hash() == pre_digest
        record = controller.ops.health().quarantined["A"]
        assert record.state == "guard" and record.error_type == "GuardViolation"
        incident = excinfo.value.incident
        assert incident.participant == "A"
        # forwarding still follows the last-known-good policies
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["B1"]
        assert egress(controller, "A", P3, dstport=80, srcip="192.0.0.1") == ["B2"]
        # the loop is quiescent and the next compile verifies clean
        assert controller.runtime.health_info()["inflight"] == 0
        report = controller.compile()
        assert report is not None

    def test_pipelined_violation_aborts_the_overlapping_follow_up(self):
        """In a pipelined burst the follow-up edit's compilation starts
        while commit N's deferred check is still pending (that overlap
        is the pipeline's whole point).  When the check fails, the
        follow-up compiled against a world that was rolled back under
        it — the runtime must abort it, never install it."""
        controller = guarded_eventloop(base_seed=3)
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        pre_digest = controller.switch.table.content_hash()
        good_edit = SDXPolicySet(outbound=(match(dstport=8080) >> fwd("C")))

        with pytest.raises(GuardedCommitError):
            with controller.runtime.pipelined():
                bad = controller.policy.set_policies("A", BAD_EDIT, recompile=True)
                follow = controller.policy.set_policies(
                    "B", good_edit, recompile=True
                )

        assert isinstance(bad.error, GuardedCommitError)
        assert isinstance(follow.error, RuntimeError)
        assert "compilation aborted" in str(follow.error)
        # neither commit survives: the fabric is the pre-burst state
        assert controller.switch.table.content_hash() == pre_digest
        assert "A" in controller.ops.health().quarantined
        # the runtime recovered: retrying B's edit lands it cleanly
        controller.policy.set_policies("B", good_edit, recompile=True)
        assert egress(controller, "B", P1, dstport=8080, srcip="60.0.0.1") == ["C1"]
        assert controller.runtime.health_info()["inflight"] == 0

    def test_violation_aborts_a_compile_already_in_flight(self):
        """The overlap the pipeline permits: compilation N+1 is mid-
        flight when commit N's deferred check fails.  N+1's inputs are
        fiction (they assume the rolled-back commit), so the runtime
        must abort it rather than install it."""
        controller = guarded_eventloop(base_seed=3)
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        pre_digest = controller.switch.table.content_hash()
        runtime = controller.runtime
        # Stage the bad policy without compiling, then queue two jobs
        # back to back: job1 commits the corruption, and job2 is mid-
        # compile in the same rotation job1's deferred check fails in.
        controller.policy.set_policies("A", BAD_EDIT, recompile=False)
        job1 = runtime.request_compile()
        job2 = runtime.request_compile()
        with pytest.raises(GuardedCommitError):
            runtime.drain()

        assert isinstance(job1.error, GuardedCommitError) or job1.report is not None
        assert isinstance(job2.error, RuntimeError)
        assert "compilation aborted" in str(job2.error)
        # neither commit survives: job1 rolled back, job2 never landed
        assert controller.switch.table.content_hash() == pre_digest
        assert "A" in controller.ops.health().quarantined
        # the runtime recovered: the next compile verifies clean
        assert controller.compile() is not None

    def test_defer_guard_off_checks_inside_the_commit(self):
        """``RuntimeConfig(defer_guard=False)`` keeps the inline probe
        pass: the violation aborts the transaction itself, and the
        verify queue never sees a pending snapshot."""
        controller = guarded_eventloop(
            base_seed=3, runtime_config=RuntimeConfig(defer_guard=False)
        )
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        pre_digest = controller.switch.table.content_hash()

        with pytest.raises(GuardedCommitError):
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)

        assert controller.switch.table.content_hash() == pre_digest
        assert controller.runtime.health_info()["queues"]["verify"] == 0
        assert "A" in controller.ops.health().quarantined
