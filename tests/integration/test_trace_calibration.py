"""Statistical calibration of the synthetic update traces (Table 1 / §4.3.2).

The incremental-compilation design rests on three measured properties
of real IXP update streams; the generator must land all three within
sampling tolerance, or every downstream experiment inherits the error.
"""

import numpy

from repro.bgp.updates import trace_stats
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace


def build_trace(seed=21, bursts=600):
    ixp = generate_ixp(participants=40, total_prefixes=4000, seed=seed)
    trace = generate_update_trace(ixp, bursts=bursts, seed=seed + 1)
    return ixp, trace


class TestBurstCalibration:
    def test_inter_burst_gap_quantiles(self):
        """Paper: gaps >= 10 s in 75% of cases; >= 60 s half the time."""
        ixp, trace = build_trace()
        stats = trace_stats(trace.updates, ixp.all_prefixes())
        gaps = numpy.array(stats.inter_burst_gaps)
        assert gaps.size > 100
        p25 = numpy.percentile(gaps, 25)
        p50 = numpy.percentile(gaps, 50)
        assert 5.0 <= p25 <= 25.0, f"p25 gap {p25:.1f}s (paper: ~10s)"
        assert 40.0 <= p50 <= 120.0, f"p50 gap {p50:.1f}s (paper: >=60s)"

    def test_burst_size_distribution(self):
        """Paper: 75% of bursts affect no more than three prefixes."""
        ixp, trace = build_trace()
        stats = trace_stats(trace.updates, ixp.all_prefixes())
        sizes = numpy.array(stats.burst_sizes)
        small_fraction = float(numpy.mean(sizes <= 3))
        assert 0.6 <= small_fraction <= 0.9, small_fraction

    def test_heavy_tail_exists(self):
        """The paper observed rare large bursts; the generator keeps a tail."""
        ixp, trace = build_trace(bursts=1000)
        stats = trace_stats(trace.updates, ixp.all_prefixes())
        assert max(stats.burst_sizes) > 10

    def test_active_prefix_fraction(self):
        """Paper: only 10-14% of prefixes see any update over the window."""
        ixp, trace = build_trace(bursts=1500)
        stats = trace_stats(trace.updates, ixp.all_prefixes())
        assert 0.08 <= stats.fraction_prefixes_updated <= 0.14

    def test_calibration_stable_across_seeds(self):
        fractions = []
        for seed in (31, 41, 51):
            ixp, trace = build_trace(seed=seed, bursts=800)
            stats = trace_stats(trace.updates, ixp.all_prefixes())
            fractions.append(stats.fraction_prefixes_updated)
        spread = max(fractions) - min(fractions)
        assert spread < 0.05, fractions
