"""Seeded chaos tests: guarded commits under injected silent corruption.

``FaultInjector.sabotage_commit`` (PR 4) throws *loudly* mid-commit;
the guard exists for the scarier failure: a commit that *succeeds* but
installs wrong forwarding state.  ``corrupt_commit`` injects exactly
that — a commit hook strips the actions off one participant's policy
rules, so the patched table silently drops what it should forward.

These tests assert the full guarded-commit state machine end to end
(commit → sample → rollback → quarantine → release), the two injected
guard fault points (rollback failure fails closed, a quarantine-release
race is survived and recorded), offense escalation across a release,
and the ISSUE's acceptance drill: a policy-storming tenant plus a
fault-injected bad commit, with every other tenant unaffected.

Detection is *sampled*, so every base seed below is part of the test
vector: it was chosen so the budgeted probe pass deterministically
draws a probe that traverses the corrupted rule.  A different seed may
legitimately miss — that is the probabilistic contract the benchmark's
overhead budget pays for.
"""

import pytest

from repro.core.controller import SDXController
from repro.core.participant import SDXPolicySet
from repro.guard import AdmissionConfig, GuardConfig, PolicyEditRateExceeded
from repro.guard.commits import GuardedCommitError, RollbackFailure
from repro.policy.language import fwd, match, parallel
from repro.resilience import FaultInjector

from tests.conftest import (
    P1,
    P3,
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)
from tests.integration.test_chaos import egress

pytestmark = pytest.mark.chaos


def guarded_figure1(
    base_seed: int, budget: int = 16, admission: AdmissionConfig = None
) -> SDXController:
    controller = SDXController(
        make_figure1_config(),
        guard=GuardConfig(probe_budget=budget, seed=base_seed),
        admission=admission,
    )
    load_figure1_routes(controller)
    install_figure1_policies(controller)
    return controller


BAD_EDIT = SDXPolicySet(outbound=(match(dstport=22) >> fwd("C")))


class TestGuardedRollback:
    """Commit → sample → rollback: the fabric ends byte-identical."""

    def test_bad_commit_is_detected_rolled_back_and_quarantined(self):
        controller = guarded_figure1(base_seed=3)
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        pre_digest = controller.switch.table.content_hash()

        with pytest.raises(GuardedCommitError) as excinfo:
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)

        # the fabric is byte-identical to the pre-commit state
        assert controller.switch.table.content_hash() == pre_digest
        # the culprit is quarantined through the guard, not the compiler
        record = controller.ops.health().quarantined["A"]
        assert record.state == "guard" and record.offenses == 1
        assert record.error_type == "GuardViolation"
        # the incident carries a replayable counterexample
        incident = excinfo.value.incident
        assert incident.action == "rolled-back"
        assert incident.participant == "A"
        assert "counterexample" in incident.counterexample
        assert incident is controller.ops.health().incidents[-1]
        assert controller.guard.offenses("A") == 1
        # forwarding still follows the last-known-good policies
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["B1"]
        assert egress(controller, "A", P3, dstport=80, srcip="192.0.0.1") == ["B2"]
        # The next compile actualizes the quarantine (A degrades to BGP
        # default, like a compile-time quarantine would) and the fabric
        # then verifies clean against the reference model.
        report = controller.compile()
        assert report.verified is not None and report.verified.ok
        assert controller.ops.verify(probes=128, seed=99).ok
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["C1"]

    def test_guard_metrics_count_the_intervention(self):
        controller = guarded_figure1(base_seed=3)
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        with pytest.raises(GuardedCommitError):
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)
        registry = controller.telemetry
        assert registry.get("sdx_guard_mismatches_total").total() >= 1
        assert registry.get("sdx_guard_rollbacks_total").total() == 1
        assert registry.get("sdx_guard_quarantines_total").total() == 1
        assert registry.get("sdx_guard_checks_total").value(outcome="mismatch") == 1
        health = controller.ops.health()
        assert health.events["guard_rollbacks"] == 1
        assert "1 guard incident" in health.summary()

    def test_rollback_fault_point_fails_closed(self):
        controller = guarded_figure1(base_seed=3)
        injector = FaultInjector(seed=1)
        injector.corrupt_commit(controller, participant="A")
        injector.fail_rollback(controller)
        with pytest.raises(RollbackFailure):
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)
        incident = controller.ops.health().incidents[-1]
        assert incident.action == "rollback-failure"
        # fail closed means no quarantine claim either way
        assert "A" not in controller.ops.health().quarantined


class TestQuarantineLifecycle:
    """Quarantine → release: operators recover, re-offenders escalate."""

    def test_release_then_reoffend_escalates_offense_count(self):
        controller = guarded_figure1(base_seed=3, budget=32)
        injector = FaultInjector(seed=1)
        injector.corrupt_commit(controller, participant="A")
        with pytest.raises(GuardedCommitError):
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)

        # operator releases; the (spent) fault is gone, so the commit is
        # clean and guard-verified
        assert controller.ops.release_quarantine("A", recompile=True)
        assert not controller.ops.health().quarantined
        assert controller.guard.last_report.ok

        injector.corrupt_commit(controller, participant="A")
        second = SDXPolicySet(
            outbound=parallel(
                match(dstport=80) >> fwd("B"), match(dstport=443) >> fwd("C")
            )
        )
        with pytest.raises(GuardedCommitError):
            controller.policy.set_policies("A", second, recompile=True)
        record = controller.ops.health().quarantined["A"]
        assert record.state == "guard" and record.offenses == 2
        assert controller.guard.offenses("A") == 2

    def test_release_race_is_survived_and_recorded(self):
        controller = guarded_figure1(base_seed=3)
        injector = FaultInjector(seed=1)
        injector.corrupt_commit(controller, participant="A")
        injector.race_quarantine_release(controller)
        with pytest.raises(GuardedCommitError) as excinfo:
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)
        # the race lifted the quarantine mid-recovery; the guard recorded
        # it rather than crashing or leaving the fabric dirty
        assert excinfo.value.incident.released_by_race
        assert "A" not in controller.ops.health().quarantined
        # with the (spent) fault gone, the released policy recompiles
        # cleanly and the fabric re-converges with intent
        report = controller.compile()
        assert report.verified is not None and report.verified.ok
        assert controller.ops.verify(probes=128, seed=99).ok


class TestAcceptanceDrill:
    """The ISSUE's end-to-end drill: storm + bad commit, neighbours fine."""

    def test_storm_plus_bad_commit_drill(self):
        clock = [0.0]
        controller = SDXController(
            make_figure1_config(),
            guard=GuardConfig(probe_budget=16, seed=7),
            admission=AdmissionConfig(
                policy_edits_per_sec=1.0, policy_edit_burst=2
            ),
        )
        controller.telemetry.set_time_source(lambda: clock[0])
        load_figure1_routes(controller)
        clock[0] += 10.0
        install_figure1_policies(controller)

        baseline = {
            (P1, 80): egress(controller, "A", P1, dstport=80, srcip="50.0.0.1"),
            (P1, 443): egress(controller, "A", P1, dstport=443, srcip="50.0.0.1"),
            (P3, 80): egress(controller, "A", P3, dstport=80, srcip="192.0.0.1"),
        }
        assert baseline[(P1, 80)] == ["B1"]

        # C storms policy edits: the burst is admitted (and each admitted
        # commit is guard-verified), the rest are rate-limited.
        rejections = 0
        for attempt in range(10):
            try:
                controller.policy.set_policies(
                    "C",
                    SDXPolicySet(outbound=(match(dstport=8000 + attempt) >> fwd("B"))),
                    recompile=True,
                )
                assert controller.guard.last_report.ok
            except PolicyEditRateExceeded:
                rejections += 1
        assert rejections == 8
        assert controller.admission.snapshot()["C"]["in_backoff"]

        # While the storm is being throttled, a fault-injected bad commit
        # from A lands — and the sampled probes catch it.
        clock[0] += 100.0
        FaultInjector(seed=1).corrupt_commit(controller, participant="A")
        pre_digest = controller.switch.table.content_hash()
        with pytest.raises(GuardedCommitError):
            controller.policy.set_policies("A", BAD_EDIT, recompile=True)

        # rolled back byte-identically, culprit quarantined
        assert controller.switch.table.content_hash() == pre_digest
        assert controller.ops.health().quarantined["A"].state == "guard"

        # every other tenant's forwarding is exactly what it was
        for (prefix, port), expected in baseline.items():
            srcip = "192.0.0.1" if prefix == P3 else "50.0.0.1"
            assert egress(controller, "A", prefix, dstport=port, srcip=srcip) == expected

        # the operator releases the quarantine; the fabric verifies clean
        assert controller.ops.release_quarantine("A", recompile=True)
        assert not controller.ops.health().quarantined
        assert controller.ops.verify(probes=128, seed=99).ok

        # and the incident log tells the whole story
        incidents = controller.ops.health().incidents
        assert [i.action for i in incidents] == ["rolled-back"]
        assert incidents[0].participant == "A"
