"""Smoke tests: every experiment runner executes at toy scale and its
result objects expose the paper-comparable shapes."""

import pytest

from repro.experiments import (
    ablation,
    figure6,
    figure7,
    figure9,
    figure10,
    table1,
)
from repro.experiments.common import build_scenario, format_table, scaling_policies


class TestTable1:
    def test_rows_cover_the_three_ixps(self):
        result = table1.run(scale=0.05)
        names = [row[0] for row in result.rows]
        assert names == ["AMS-IX", "DE-CIX", "LINX"]
        for row in result.rows:
            assert row[3] > 0  # updates happened
            assert 0 < row[4] < 100  # percent updated in range


class TestFigure6:
    def test_group_growth_is_sublinear(self):
        result = figure6.run(
            participants_sweep=(40, 80),
            prefix_sweep=(400, 800, 1600),
            total_prefixes=2500,
        )
        for participants in (40, 80):
            points = result.series[participants]
            assert len(points) == 3
            # groups grow, but slower than prefixes
            ratios = [groups / prefixes for prefixes, groups in points]
            assert ratios[0] > ratios[-1]
        # more participants -> more groups at the same prefix count
        assert result.groups_at(80, 1600) >= result.groups_at(40, 1600)


class TestFigure7And8:
    def test_rules_scale_linearly_and_time_grows(self):
        result = figure7.run(
            participants_sweep=(30, 60),
            policy_prefix_sweep=(60, 120, 240),
        )
        for participants in (30, 60):
            points = result.series(participants)
            groups = [p.prefix_groups for p in points]
            rules = [p.flow_rules for p in points]
            assert groups == sorted(groups)
            assert rules == sorted(rules)
            # roughly linear: rules per group stays within a 3x band
            per_group = [r / max(g, 1) for r, g in zip(rules, groups)]
            assert max(per_group) < 3 * min(per_group)
        small = result.series(30)[-1]
        large = result.series(60)[-1]
        assert large.flow_rules > small.flow_rules


class TestFigure9:
    def test_additional_rules_linear_in_burst(self):
        result = figure9.run(
            participants_sweep=(40,),
            burst_sizes=(4, 8, 16),
            prefixes_per_participant=8,
        )
        points = result.series[40]
        extras = [extra for _, extra in points]
        assert extras == sorted(extras)
        per_update = [extra / burst for burst, extra in points]
        assert max(per_update) < 3 * min(per_update)


class TestFigure10:
    def test_cdf_percentiles_monotone(self):
        result = figure10.run(
            participants_sweep=(30,),
            updates_per_setting=10,
            prefixes_per_participant=8,
        )
        samples = result.samples[30]
        assert len(samples) == 10
        assert samples == sorted(samples)
        assert result.percentile(30, 50) <= result.percentile(30, 90)
        # sub-second at toy scale, as the paper claims at full scale
        assert result.percentile(30, 99) < 1.0


class TestAblation:
    def test_configurations_produce_same_rule_count(self):
        result = ablation.run_compiler_ablation(participants=20, policy_prefixes=60)
        rule_counts = {rules for _, _, rules in result.rows}
        assert len(rule_counts) == 1

    def test_mds_ablation_agrees(self):
        result = ablation.run_mds_ablation(set_counts=(5, 8), universe=200)
        for _, fast, slow, groups in result.rows:
            assert groups > 0
            assert fast >= 0 and slow >= 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(line.rstrip()) for line in lines[:2]}) >= 1

    def test_scaling_policies_compile(self):
        scenario = build_scenario(participants=20, prefixes=300, with_policies=False)
        policies = scaling_policies(scenario.ixp, policy_prefixes=50)
        assert policies
        result = scenario.compiler().compile(policies)
        assert result.stats.fec_groups > 0
