"""Integration test: the paper's Figure 1 worked example, end to end.

AS A peers application-specifically (HTTP via B, HTTPS via C), AS B
does inbound traffic engineering across its two ports, the route
server's export scoping hides p4 from A, and p5 keeps pure-BGP default
behaviour.  Every claim the paper makes about this example is asserted
against the real compiled data plane.
"""

import pytest

from repro.netutils.ip import IPv4Prefix
from repro.netutils.mac import MACAddress
from repro.policy import Packet

from tests.conftest import P1, P2, P3, P4, P5


@pytest.fixture
def sdx(figure1_compiled):
    return figure1_compiled


def send_from(sdx, sender_port, dst_prefix, dstip, **headers):
    """Send one packet through the SDX switch, tagged the way the
    sender's border router would tag it (best-route next-hop -> ARP)."""
    sender = sdx.config.owner_of_port(sender_port).name
    advertised = {
        a.prefix: a.attributes.next_hop for a in sdx.advertisements(sender)
    }
    next_hop = advertised[IPv4Prefix(dst_prefix)]
    vmac = sdx.arp.resolve(next_hop)
    if vmac is None:
        owner = sdx.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    packet = Packet(dstip=dstip, dstmac=vmac, port=sender_port, **headers)
    return sdx.switch.receive(packet, sender_port)


class TestPrefixGroups:
    def test_p1_p2_share_a_group(self, sdx):
        table = sdx.last_compilation.fec_table
        assert table.group_for(P1) is table.group_for(P2)

    def test_p3_separate_group(self, sdx):
        table = sdx.last_compilation.fec_table
        assert table.group_for(P3) is not table.group_for(P1)

    def test_affected_groups_have_vnh_and_vmac(self, sdx):
        for group in sdx.last_compilation.fec_table.affected_groups:
            assert group.vnh is not None
            assert group.vnh.hardware.is_locally_administered
            assert sdx.arp.resolve(group.vnh.address) == group.vnh.hardware


class TestApplicationSpecificPeering:
    def test_http_to_p1_diverts_via_b(self, sdx):
        out = send_from(sdx, "A1", P1, "10.1.2.3", dstport=80, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B1"]

    def test_https_to_p1_diverts_via_c(self, sdx):
        out = send_from(sdx, "A1", P1, "10.1.2.3", dstport=443, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["C1"]

    def test_http_to_p3_stays_on_b_its_default(self, sdx):
        out = send_from(sdx, "A1", P3, "10.3.1.1", dstport=80, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B1"]

    def test_other_traffic_follows_bgp_best(self, sdx):
        out = send_from(sdx, "A1", P1, "10.1.9.9", dstport=9999, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["C1"]


class TestBGPConsistency:
    def test_p4_not_exported_to_a_cannot_divert_via_b(self, sdx):
        """The SDX must not send A's p4 traffic to B: B hid p4 from A."""
        out = send_from(sdx, "A1", P4, "10.4.1.1", dstport=80, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["C2"]  # C's announcing port for p4

    def test_c_can_reach_p4_via_b(self, sdx):
        """C received B's p4 route, so C may deflect p4 traffic to B.

        B's own inbound traffic engineering then picks the delivery
        port: sources under 128.0.0.0/1 land on B1, the rest on B2 —
        regardless of which interface announced the prefix.
        """
        c = sdx.register_participant("C")
        from repro.policy import fwd, match

        c.set_policies(outbound=match(dstport=80) >> fwd("B"))
        out = send_from(sdx, "C1", P4, "10.4.1.1", dstport=80, srcip="99.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B1"]
        out = send_from(sdx, "C1", P4, "10.4.1.1", dstport=80, srcip="200.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B2"]

    def test_p5_keeps_original_next_hop_in_advertisements(self, sdx):
        """p5 (announced by A, untouched by any policy) stays pure BGP."""
        group = sdx.last_compilation.fec_table.group_for(P5)
        assert group is None  # no FEC, no VNH spent on it
        advertised = {
            a.prefix: a.attributes.next_hop for a in sdx.advertisements("C")
        }
        assert advertised[IPv4Prefix(P5)] not in sdx.config.vnh_pool

    def test_p5_default_traffic_delivered_to_announcer(self, sdx):
        """C's traffic to p5 rides physical-MAC default forwarding to A."""
        out = send_from(sdx, "C1", P5, "10.5.1.1", dstport=80, srcip="99.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["A1"]


class TestInboundTrafficEngineering:
    def test_low_sources_to_b1(self, sdx):
        out = send_from(sdx, "A1", P3, "10.3.1.1", dstport=80, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B1"]

    def test_high_sources_to_b2(self, sdx):
        out = send_from(sdx, "A1", P3, "10.3.1.1", dstport=80, srcip="200.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B2"]

    def test_delivered_frames_carry_interface_mac(self, sdx):
        ((port, packet),) = send_from(
            sdx, "A1", P3, "10.3.1.1", dstport=80, srcip="200.0.0.1", srcport=7
        )
        assert port == "B2"
        assert packet["dstmac"] == MACAddress("08:00:27:00:00:12")


class TestIsolation:
    def test_a_policy_does_not_apply_to_c_traffic(self, sdx):
        """C has no outbound policy: its HTTP traffic follows BGP."""
        out = send_from(sdx, "C1", P3, "10.3.1.1", dstport=80, srcip="99.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["B1"]  # default: B announced p3 via B1

    def test_unknown_tag_is_dropped(self, sdx):
        packet = Packet(
            dstip="10.1.2.3",
            dstmac="02:aa:aa:aa:aa:aa",
            port="A1",
            dstport=80,
            srcip="50.0.0.1",
        )
        assert sdx.switch.receive(packet, "A1") == []


class TestPolicyChangeConvergence:
    def test_removing_policy_restores_defaults(self, sdx):
        a = sdx.register_participant("A")
        a.clear_policies()
        out = send_from(sdx, "A1", P1, "10.1.2.3", dstport=80, srcip="50.0.0.1", srcport=7)
        assert [port for port, _ in out] == ["C1"]
