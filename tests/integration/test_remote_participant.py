"""Integration tests: remote participants and SDX route origination.

A remote participant (the wide-area load balancer of Section 3.1) has
a virtual switch but no physical port.  It originates an anycast prefix
from the SDX and steers matching traffic with inbound policies that
rewrite the destination and hand the packets to a transit participant's
physical port.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.policy import Packet, fwd, match, modify

ANYCAST = "74.125.1.0/24"
INSTANCE_1 = "54.198.0.10"
INSTANCE_2 = "54.198.128.20"


@pytest.fixture
def deployment():
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant("AWS", 64496, [])
    ixp = EmulatedIXP(config)
    controller = ixp.controller
    controller.routing.announce(
        "B", "54.198.0.0/16", RouteAttributes(as_path=[65002, 14618], next_hop="172.0.0.11")
    )
    ixp.add_host("client", "A", "204.57.0.67")
    ixp.add_host("instance-1", "B", INSTANCE_1, originate="54.198.0.0/17")
    ixp.add_host("instance-2", "B", INSTANCE_2, originate="54.198.128.0/17")
    tenant = controller.register_participant("AWS")
    tenant.announce(ANYCAST)
    tenant.set_policies(
        inbound=match(dstip=ANYCAST) >> modify(dstip=INSTANCE_1) >> fwd("B1"),
        recompile=False,
    )
    controller.compile()
    return ixp


class TestRemoteParticipant:
    def test_no_router_is_built_for_remote(self, deployment):
        assert "AWS" not in deployment.routers

    def test_anycast_advertised_with_vnh(self, deployment):
        advertised = {
            a.prefix: a.attributes.next_hop
            for a in deployment.controller.advertisements("A")
        }
        assert advertised[IPv4Prefix(ANYCAST)] in deployment.controller.config.vnh_pool

    def test_anycast_route_visible_to_physical_participants(self, deployment):
        best = deployment.controller.route_server.best_route("A", ANYCAST)
        assert best is not None and best.learned_from == "AWS"

    def test_requests_rewritten_and_delivered(self, deployment):
        hops = deployment.send("client", dstip="74.125.1.1", dstport=80, srcport=5, proto=17)
        assert hops > 0
        assert deployment.delivered_to("instance-1") == 1
        (received,) = deployment.hosts["instance-1"].received
        assert received["dstip"] == IPv4Address(INSTANCE_1)

    def test_policy_update_redirects_by_source(self, deployment):
        tenant = deployment.controller.register_participant("AWS")
        from repro.policy import if_

        # Note: parallel composition of *overlapping* clauses would
        # multicast (Pyretic semantics); source-based selection needs
        # if_/else or disjoint matches.
        tenant.set_policies(
            inbound=match(dstip=ANYCAST)
            >> if_(
                match(srcip="204.57.0.0/16"),
                modify(dstip=INSTANCE_2) >> fwd("B1"),
                modify(dstip=INSTANCE_1) >> fwd("B1"),
            )
        )
        deployment.send("client", dstip="74.125.1.1", dstport=80, srcport=5, proto=17)
        assert deployment.delivered_to("instance-2") == 1
        assert deployment.delivered_to("instance-1") == 0

    def test_unclaimed_anycast_traffic_dropped(self, deployment):
        """The remote participant's policy claims only dstip=ANYCAST; other
        traffic the VMAC tag routes to AWS has nowhere to go."""
        tenant = deployment.controller.register_participant("AWS")
        tenant.set_policies(
            inbound=match(dstip=ANYCAST, dstport=80)
            >> modify(dstip=INSTANCE_1)
            >> fwd("B1")
        )
        before = deployment.controller.switch.dropped
        deployment.send("client", dstip="74.125.1.1", dstport=443, srcport=5, proto=17)
        assert deployment.controller.switch.dropped == before + 1

    def test_withdrawing_origination_removes_route(self, deployment):
        tenant = deployment.controller.register_participant("AWS")
        tenant.withdraw(ANYCAST)
        assert deployment.controller.route_server.best_route("A", ANYCAST) is None
