"""Acceptance sweep: the differential oracle across seeded fuzz scenarios.

The issue's acceptance bar: zero mismatches and zero invariant
violations across 25+ seeded scenarios covering policy edits, BGP
update bursts, withdrawals, fast-path flushes, and delta-reconciled
commits.  Every scenario checks after the initial compile and after
each commit, so one passing seed is typically 5-9 full differential
passes.
"""

import pytest

from repro.verify.fuzz import run_scenario

SEEDS = list(range(25))


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_scenario_verifies_clean(seed):
    result = run_scenario(seed, participants=12, prefixes=96, steps=8, probes=48)
    assert result.ok, result.summary()
    # Each scenario must actually exercise the checker, not vacuously pass.
    assert result.checks >= 1
    assert result.probes_checked > 0


def test_scenarios_cover_every_event_kind():
    """Across the sweep, all five control-plane event kinds must occur."""
    seen = set()
    for seed in SEEDS[:12]:
        seen.update(run_scenario(seed, steps=8, probes=8).steps)
        if len(seen) == 5:
            break
    assert seen == {"edit", "burst", "withdraw", "flush", "reconcile"}


def test_cli_reports_clean_sweep(capsys):
    from repro.verify.fuzz import main

    code = main(["--seeds", "2", "--steps", "4", "--probes", "16"])
    captured = capsys.readouterr()
    assert code == 0
    assert "2/2 scenarios clean" in captured.out
