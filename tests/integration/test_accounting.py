"""Integration tests: per-policy traffic accounting.

The provenance-segmented base table lets the exchange answer the
operational questions real IXPs bill and debug by: how much traffic did
participant X's policy actually steer, and how much followed plain BGP?
"""

import pytest

from repro.ixp.deployment import EmulatedIXP

from tests.conftest import (
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)


@pytest.fixture
def deployment():
    ixp = EmulatedIXP(make_figure1_config())
    load_figure1_routes(ixp.controller)
    ixp.add_host("client", "A", "50.0.0.1")
    install_figure1_policies(ixp.controller)
    return ixp


class TestAccounting:
    def test_policy_traffic_counted_per_participant(self, deployment):
        controller = deployment.controller
        # two HTTP packets divert via A's policy; one SSH packet defaults
        deployment.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        deployment.send("client", dstip="10.1.2.4", dstport=80, srcport=6)
        deployment.send("client", dstip="10.1.2.5", dstport=22, srcport=7)
        policy_packets, _ = controller.policy_traffic("A")
        default_packets, _ = controller.default_traffic()
        assert policy_packets == 2
        assert default_packets == 1

    def test_participants_without_policies_report_zero(self, deployment):
        controller = deployment.controller
        deployment.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        assert controller.policy_traffic("C") == (0, 0)

    def test_segments_cover_all_base_traffic(self, deployment):
        controller = deployment.controller
        for dstport in (80, 443, 22, 9999):
            deployment.send("client", dstip="10.1.2.3", dstport=dstport, srcport=5)
        total = sum(
            packets for packets, _ in controller.traffic_by_segment().values()
        )
        assert total == 4

    def test_counters_survive_noop_recompilation(self, deployment):
        """Delta reconciliation retains unchanged rules, so a clean
        background pass no longer zeroes the accounting totals."""
        controller = deployment.controller
        deployment.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        before = controller.policy_traffic("A")
        assert before[0] == 1
        report = controller.run_background_recompilation()
        assert report.churn == 0
        assert controller.policy_traffic("A") == before
        # ...and the counters keep accumulating on the same rules.
        deployment.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        assert controller.policy_traffic("A")[0] == 2

    def test_counters_survive_unrelated_policy_edit(self, deployment):
        """Editing one participant's policy must not reset another's
        accounting: C gaining an SSH policy leaves A's segment rules
        identity-equal, so the reconciler retains or reprioritizes them
        in place and A's totals survive the full recompilation."""
        from repro.core.participant import SDXPolicySet
        from repro.policy import fwd, match

        controller = deployment.controller
        deployment.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        before = controller.policy_traffic("A")
        assert before[0] == 1
        controller.policy.set_policies(
            "C", SDXPolicySet(outbound=match(dstport=22) >> fwd("A"))
        )
        assert controller.policy_traffic("A") == before

    def test_segment_order_preserves_forwarding(self, deployment):
        """Segmented installation must behave exactly like the monolithic
        classifier: policies above chains above defaults."""
        controller = deployment.controller
        deployment.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        assert deployment.carried_upstream_by("B") == 1  # policy won, not default
