"""Churn soak: a synthetic exchange under a realistic update trace.

Replays a burst-structured BGP trace through the two-stage pipeline
with periodic background re-optimizations, checking at every checkpoint
that (a) the data plane still agrees with the independent reference
model, and (b) fast-path rule inflation stays bounded and is fully
reclaimed by re-optimization.
"""

import random

import pytest

from repro.experiments.common import build_scenario
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet
from repro.workloads.update_gen import generate_update_trace

from tests.integration.test_reference_model import _expected_outputs, _tag


def probe_agreement(controller, rng, probes=15):
    """Compare ``probes`` random forwarding decisions with the oracle."""
    config = controller.config
    server = controller.route_server
    ports = [port.port_id for port in config.physical_ports()]
    prefixes = sorted(server.all_prefixes())
    checked = 0
    attempts = 0
    while checked < probes and attempts < probes * 6:
        attempts += 1
        in_port = rng.choice(ports)
        sender = config.owner_of_port(in_port).name
        prefix = rng.choice(prefixes)
        if server.route_from(sender, prefix) is not None:
            continue
        vmac = _tag(controller, sender, prefix)
        if vmac is None:
            continue
        packet = Packet(
            dstip=prefix.host(rng.randrange(1, 255)),
            dstmac=vmac,
            dstport=rng.choice((80, 443, 22)),
            srcport=7,
            srcip=rng.choice(("50.0.0.1", "200.1.1.1")),
        )
        expected = _expected_outputs(controller, packet, sender, prefix)
        actual = {
            (port, out.get("dstip"))
            for port, out in controller.switch.receive(
                packet.modify(port=in_port), in_port
            )
        }
        assert actual == expected, (sender, prefix, packet)
        checked += 1
    return checked


@pytest.mark.parametrize("seed", [71, 72])
def test_churn_soak(seed):
    scenario = build_scenario(participants=20, prefixes=300, seed=seed)
    controller = scenario.controller()
    controller.compile()
    base_size = controller.table_size()

    trace = generate_update_trace(scenario.ixp, bursts=40, seed=seed + 1)
    rng = random.Random(seed + 2)
    applied = 0
    for update in trace.updates:
        controller.routing.process_update(update)
        applied += 1
        if applied % 20 == 0:
            # mid-churn: fast-path rules present but data plane correct
            assert probe_agreement(controller, rng) >= 8
            inflated = controller.table_size()
            controller.run_background_recompilation()
            optimized = controller.table_size()
            assert optimized <= inflated
            assert controller.fast_path.additional_rules() == 0
            assert probe_agreement(controller, rng) >= 8
    # final state sane: table within 2x of the initial optimal size
    controller.run_background_recompilation()
    assert controller.table_size() < 2 * base_size + 200
