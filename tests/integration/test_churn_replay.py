"""End-to-end churn replay: fixture topology × encoding modes × runtime.

The acceptance loop for the scenario suite: the checked-in GML fixture
builds an exchange, §6.1 policies load, and every churn scenario
(failover storm, stuck-route leak, correlated withdrawals) replays
through the controller under the event-loop runtime with the verify
oracle sampling along the way — across all four vmac × dataplane
configurations.  Zero probe mismatches and zero invariant violations,
every time.
"""

import pytest

from repro.core.config import SDXConfig
from repro.core.controller import SDXController
from repro.guard import GuardConfig
from repro.runtime import RuntimeConfig
from repro.workloads.policy_gen import generate_policies
from repro.workloads.providers import load_fixture
from repro.workloads.scenarios import (
    SCENARIO_KINDS,
    ScenarioSpec,
    build_scenario_trace,
    replay,
)

MODES = [
    ("fec", "single"),
    ("superset", "single"),
    ("fec", "multitable"),
    ("superset", "multitable"),
]

#: Small scenario parameters keep the full 4-mode × 3-kind matrix fast.
_PARAMS = {
    "failover-storm": {"waves": 1, "burst_size": 30, "churn_per_burst": 2},
    "stuck-routes": {"leak_count": 20, "burst_size": 10, "victim_flaps": 4},
    "correlated-withdrawal": {"members": 4, "waves": 1, "slice_size": 10},
}


@pytest.fixture(scope="module")
def ixp():
    return load_fixture("ixp_small").build()


@pytest.fixture(scope="module")
def workload(ixp):
    return generate_policies(ixp, seed=21)


def _controller(ixp, workload, vmac_mode, dataplane_mode):
    controller = SDXController(
        ixp.config,
        sdx=SDXConfig(
            vmac_mode=vmac_mode,
            dataplane_mode=dataplane_mode,
            runtime_mode="eventloop",
            runtime_config=RuntimeConfig(coalesce=True),
            guard=GuardConfig(probe_budget=12, seed=3),
        ),
    )
    controller.route_server.load(ixp.updates)
    with controller.deferred_recompilation():
        for name, policy_set in workload.policies.items():
            controller.policy.set_policies(name, policy_set)
    return controller


class TestChurnReplayMatrix:
    @pytest.mark.parametrize("vmac_mode,dataplane_mode", MODES)
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_scenario_replays_clean(self, ixp, workload, kind, vmac_mode, dataplane_mode):
        controller = _controller(ixp, workload, vmac_mode, dataplane_mode)
        spec = ScenarioSpec(
            name=f"{kind}/{vmac_mode}/{dataplane_mode}",
            kind=kind,
            seed=17,
            params=_PARAMS[kind],
        )
        trace = build_scenario_trace(ixp, spec)
        report = replay(
            controller,
            trace.updates,
            scenario=spec.name,
            verify_every=3,
            probes=24,
            seed=5,
            recompile_every=4,
        )
        assert report.ok, report.summary()
        assert report.events == len(trace.updates)
        assert report.verify_passes >= 1
        assert report.probes_checked > 0


class TestReplayUnderChurnKeepsInvariants:
    def test_mid_replay_verification_catches_nothing(self, ixp, workload):
        """Dense sampling (every burst) through the heaviest scenario."""
        controller = _controller(ixp, workload, "fec", "single")
        spec = ScenarioSpec(
            name="dense", kind="failover-storm", seed=29, params=_PARAMS["failover-storm"]
        )
        trace = build_scenario_trace(ixp, spec)
        report = replay(
            controller,
            trace.updates,
            scenario="dense",
            verify_every=1,
            probes=16,
            recompile_every=2,
        )
        assert report.ok, report.summary()
        assert report.verify_passes == report.bursts + 1
        assert report.commits > 0
