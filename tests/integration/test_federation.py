"""Two-IXP federation scenarios: sweep, ping-pong detection, failover."""

from __future__ import annotations

import pytest

from repro import IXPConfig, RouteAttributes
from repro.federation import FederatedExchange
from repro.policy import fwd, match
from repro.verify import (
    FederationChecker,
    check_cross_exchange_consistency,
    check_federation,
)
from repro.workloads import generate_federation

PREFIX = "10.9.0.0/16"


def build_federation() -> FederatedExchange:
    """West: origin O + transits T, U; east: eyeball E + the same transits."""
    west = IXPConfig(vnh_pool="172.16.0.0/16")
    west.add_participant("O", 65001, [("O1", "172.0.1.1", "08:00:27:01:00:01")])
    west.add_participant("T", 65100, [("TW1", "172.0.1.11", "08:00:27:01:00:11")])
    west.add_participant("U", 65200, [("UW1", "172.0.1.21", "08:00:27:01:00:21")])
    east = IXPConfig(vnh_pool="172.17.0.0/16")
    east.add_participant("E", 65002, [("E1", "172.0.2.1", "08:00:27:02:00:01")])
    east.add_participant("T", 65100, [("TE1", "172.0.2.11", "08:00:27:02:00:11")])
    east.add_participant("U", 65200, [("UE1", "172.0.2.21", "08:00:27:02:00:21")])
    federation = FederatedExchange()
    federation.add_exchange("west", west)
    federation.add_exchange("east", east)
    federation.exchange("west").routing.announce(
        "O", PREFIX, RouteAttributes(as_path=[65001], next_hop="172.0.1.1")
    )
    return federation


class TestTwoIXPTransit:
    def test_sweep_passes_on_the_relay_scenario(self):
        federation = build_federation()
        federation.link(65200, "west", "east")
        federation.link(65100, "west", "east")
        updates = federation.sync()
        assert updates == 2  # both transits relay the origin's prefix
        federation.compile_all()
        report = FederationChecker(federation).sweep(probes=24)
        assert report.ok, report.summary()
        assert not report.violations
        assert report.traces, "end-to-end traces must have run"
        assert all(trace.ok for trace in report.traces)
        assert {name for name, _ in report.per_exchange} == {"west", "east"}
        assert all(r.ok for _, r in report.per_exchange)

    def test_export_policy_scopes_the_relay(self):
        federation = build_federation()
        federation.link(65200, "west", "east", export_to=("E",))
        federation.sync()
        east = federation.exchange("east").route_server
        assert east.best_route("E", PREFIX) is not None
        # The relay's export scope keeps the other transit from learning
        # the route at east.
        assert east.best_route("T", PREFIX) is None

    def test_verify_telemetry_counts_runs(self):
        federation = build_federation()
        federation.link(65200, "west", "east")
        federation.sync()
        federation.compile_all()
        checker = FederationChecker(federation)
        assert checker.sweep(probes=16).ok
        runs = federation.telemetry.get("sdx_federation_verify_runs_total")
        assert runs.value(outcome="ok") == 1


class TestPolicyPingPong:
    """The acceptance scenario: locally-sound policies, global loop."""

    @staticmethod
    def inject_ping_pong(federation: FederatedExchange) -> None:
        federation.link(65200, "west", "east")  # U relays the origin's route east
        federation.link(65100, "east", "west")  # T relays its east routes west
        federation.sync()
        west, east = federation.exchange("west"), federation.exchange("east")
        east.register_participant("E").set_policies(
            outbound=match(dstport=80) >> fwd("U"), recompile=False
        )
        west.register_participant("U").set_policies(
            outbound=match(dstport=80) >> fwd("T"), recompile=False
        )
        east.register_participant("T").set_policies(
            outbound=match(dstport=80) >> fwd("U"), recompile=False
        )
        federation.compile_all()

    def test_each_exchange_is_locally_sound(self):
        federation = build_federation()
        self.inject_ping_pong(federation)
        for _, controller in federation.controllers():
            assert controller.ops.verify(probes=24).ok

    def test_loop_detected_naming_both_exchanges(self):
        federation = build_federation()
        self.inject_ping_pong(federation)
        violations = check_federation(federation)
        loops = [v for v in violations if v.invariant == "inter-ixp-loop"]
        assert loops, "the ping-pong must be detected"
        (violation,) = loops  # minimized: one counterexample per prefix
        assert "west" in violation.detail and "east" in violation.detail
        assert PREFIX in violation.detail
        # The orbit is spelled out as (exchange, sender) states.
        assert "west:U" in violation.subject and "east:T" in violation.subject

    def test_counterexample_is_minimized_to_the_guilty_flow(self):
        federation = build_federation()
        self.inject_ping_pong(federation)
        (violation,) = [
            v
            for v in check_federation(federation)
            if v.invariant == "inter-ixp-loop"
        ]
        # Only dstport=80 orbits; the minimal flow in the report is that
        # port, not the bare (portless) packet.
        assert "dstport=80" in violation.detail

    def test_sweep_reports_the_loop(self):
        federation = build_federation()
        self.inject_ping_pong(federation)
        report = FederationChecker(federation).sweep(probes=16)
        assert not report.ok
        assert any(v.invariant == "inter-ixp-loop" for v in report.violations)
        assert "federation violations" in report.summary()


class TestFailover:
    def test_backhaul_failure_reconverges_and_stays_clean(self):
        federation = build_federation()
        link_u = federation.link(65200, "west", "east")
        link_t = federation.link(65100, "west", "east")
        federation.sync()
        federation.compile_all()
        east = federation.exchange("east")
        before = east.route_server.best_route("E", PREFIX)
        primary = link_u if before.learned_from == "U" else link_t
        survivor = "T" if primary is link_u else "U"
        assert primary.fail() == 1
        federation.sync()
        federation.compile_all()
        after = east.route_server.best_route("E", PREFIX)
        assert after is not None
        assert after.learned_from == survivor
        report = FederationChecker(federation).sweep(probes=24)
        assert report.ok, report.summary()
        assert federation.telemetry.gauge("sdx_federation_links_up").value() == 1

    def test_stale_relay_flagged_until_resynced(self):
        federation = build_federation()
        federation.link(65200, "west", "east")
        federation.sync()
        federation.compile_all()
        # The origin re-announces with different attributes; until the
        # next sync the relayed route mirrors a route that no longer
        # exists at the source.
        federation.exchange("west").routing.announce(
            "O",
            PREFIX,
            RouteAttributes(as_path=[65001, 64999], next_hop="172.0.1.1"),
        )
        stale = check_cross_exchange_consistency(federation)
        assert any(v.invariant == "cross-exchange-bgp" for v in stale)
        federation.sync()
        federation.compile_all()
        assert check_cross_exchange_consistency(federation) == []


class TestGeneratedFederations:
    @pytest.mark.parametrize("exchanges", [2, 3])
    def test_generated_federation_sweeps_clean(self, exchanges):
        synthetic = generate_federation(
            exchanges=exchanges,
            participants_per_exchange=3,
            transits=2,
            prefixes_per_participant=1,
            seed=11,
        )
        federation = synthetic.federation
        assert len(federation.links()) == 2 * exchanges * (exchanges - 1)
        report = FederationChecker(federation).sweep(probes=16, traces_per_link=2)
        assert report.ok, report.summary()
        # Every exchange learned every prefix (local or relayed).
        for _, controller in federation.controllers():
            assert (
                controller.route_server.all_prefixes() >= set(synthetic.prefixes)
            )
