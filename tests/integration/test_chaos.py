"""Seeded chaos tests: the full resilience stack under injected faults.

Every test drives a compiled Figure 1 exchange through the
:class:`~repro.resilience.FaultInjector` and asserts the acceptance
invariants of the resilience layer end-to-end:

* a poisoned participant policy degrades exactly that participant to
  BGP-default forwarding while everyone else keeps compiled policies;
* a session flap under damping triggers at most one recompilation wave,
  and graceful restart brings routes back without a table rewrite;
* an injected mid-commit failure leaves the fabric bit-identical to the
  pre-commit state (flow-table hash comparison).

All randomness flows from explicit seeds, so a failing run replays
exactly.  Selected by the ``chaos`` marker (``make chaos``).
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.bgp.session import SessionState
from repro.bgp.wire import encode_update
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet
from repro.resilience import (
    CommitSabotage,
    DampingConfig,
    FaultInjector,
    LivenessConfig,
)
from repro.sim.clock import Simulator

from tests.conftest import P1, P2, P3, P4

pytestmark = pytest.mark.chaos

#: B's Figure 1b routes, for graceful-restart re-announcement.
B_ROUTES = (
    (P1, [65002, 65100], "172.0.0.11", None),
    (P2, [65002, 65101], "172.0.0.11", None),
    (P3, [65002, 65102], "172.0.0.11", None),
    (P4, [65002, 65103], "172.0.0.12", ["C"]),
)

#: A huge hold/restart time: liveness supervision present but inert,
#: for tests that advance the clock far while exercising other layers.
INERT_LIVENESS = LivenessConfig(hold_time=10.0**9, restart_time=10.0**9)


def egress(controller, sender, dst_prefix, **headers):
    """Ports a tagged probe from ``sender`` exits on, per the fabric."""
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    next_hop = advertised.get(IPv4Prefix(dst_prefix))
    if next_hop is None:
        return None
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    in_port = headers.pop("port", f"{sender}1")
    dstip = str(IPv4Prefix(dst_prefix).network + 1)
    packet = Packet(dstip=dstip, dstmac=vmac, port=in_port, **headers)
    return sorted(port for port, _ in controller.switch.receive(packet, in_port))


class TestPoisonIsolation:
    """Acceptance (a): quarantine degrades exactly one participant."""

    def test_poison_degrades_only_the_poisoned_participant(self, figure1_compiled):
        controller = figure1_compiled
        injector = FaultInjector(seed=11)
        # Baseline: A's outbound policy diverts HTTP to B even though C
        # has the better BGP path for p1.
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["B1"]

        injector.poison_policy(controller, "A")
        controller.compile()

        assert set(controller.ops.quarantined()) == {"A"}
        diagnosis = controller.ops.quarantined()["A"]
        assert diagnosis.error_type == "PolicyPoisonError"
        # A now follows plain BGP: best path for p1 is via C.
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["C1"]
        # B's inbound traffic engineering still applies to everyone:
        # p3 (best via B) splits on source halves.
        assert egress(controller, "A", P3, dstport=80, srcip="50.0.0.1") == ["B1"]
        assert egress(controller, "A", P3, dstport=80, srcip="192.0.0.1") == ["B2"]

    def test_operator_recovers_by_replacing_the_policy(self, figure1_compiled):
        from repro.core.participant import SDXPolicySet
        from repro.policy import fwd, match

        controller = figure1_compiled
        FaultInjector(seed=11).poison_policy(controller, "A")
        controller.compile()
        controller.policy.set_policies(
            "A",
            SDXPolicySet(
                outbound=(match(dstport=80) >> fwd("B"))
                + (match(dstport=443) >> fwd("C"))
            ),
            recompile=True,
        )
        assert not controller.ops.quarantined()
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["B1"]
        assert not controller.ops.health().degraded


class TestFlapDampingWaves:
    """Acceptance (b), first half: damping bounds recompilation."""

    def test_flap_storm_triggers_at_most_one_wave_once_suppressed(
        self, figure1_compiled
    ):
        controller = figure1_compiled
        sim = Simulator()
        resilience = controller.enable_resilience(
            clock=sim, damping=DampingConfig(), liveness=INERT_LIVENESS
        )
        battrs = RouteAttributes(as_path=[65002, 65102], next_hop="172.0.0.11")
        baseline = len(controller.ops.fast_path_log)

        for _ in range(8):  # p3's best path flaps B -> C -> B each cycle
            controller.routing.withdraw("B", P3)
            controller.routing.announce("B", P3, battrs)

        waves = len(controller.ops.fast_path_log) - baseline
        # Suppression engages after the first full cycle: two waves from
        # that cycle, nothing from the remaining seven.
        assert waves <= 2
        assert resilience.suppressed_changes > 0
        assert controller.ops.health().damped
        # The damper gates only the *data plane*; the RIB stayed exact.
        best = controller.route_server.best_route("A", P3)
        assert best is not None and best.learned_from == "B"

        # Penalty decays; exactly one catch-up recompilation restores
        # data-plane sync, after which nothing is damped.
        before_catchup = len(controller.ops.fast_path_log)
        sim.run_until(6 * 3600.0)
        assert len(controller.ops.fast_path_log) == before_catchup + 1
        assert not controller.ops.health().damped
        # End-to-end: A's policy still diverts HTTP for p3 to B.
        assert egress(controller, "A", P3, dstport=80, srcip="50.0.0.1") == ["B1"]

    def test_without_damping_every_flap_recompiles(self, figure1_compiled):
        controller = figure1_compiled  # no resilience layer attached
        battrs = RouteAttributes(as_path=[65002, 65102], next_hop="172.0.0.11")
        baseline = len(controller.ops.fast_path_log)
        for _ in range(8):
            controller.routing.withdraw("B", P3)
            controller.routing.announce("B", P3, battrs)
        assert len(controller.ops.fast_path_log) - baseline == 16


class TestGracefulRestart:
    """Acceptance (b), second half: restart without a table rewrite."""

    def test_failed_peer_returns_without_touching_the_fabric(
        self, figure1_compiled
    ):
        controller = figure1_compiled
        sim = Simulator()
        reachable = {"up": True}
        resilience = controller.enable_resilience(
            clock=sim,
            liveness=LivenessConfig(hold_time=30.0, restart_time=600.0),
            reconnect_probe=lambda peer: reachable["up"],
        )
        # A and C stay chatty; B falls silent.
        for peer in ("A", "C"):
            sim.schedule_every(10.0, lambda p=peer: resilience.liveness.heard_from(p))
        reachable["up"] = False

        table_hash = controller.switch.table.content_hash()
        fast_path_waves = len(controller.ops.fast_path_log)

        sim.run_until(31.0)  # B's hold timer expires at t=30
        server = controller.route_server
        assert server.session("B").state is SessionState.FAILED
        assert server.session("A").is_established
        assert server.session("C").is_established
        # Graceful restart: routes retained as stale, zero dataplane churn.
        assert server.stale_prefixes("B") == {
            IPv4Prefix(p) for p, _, _, _ in B_ROUTES
        }
        assert controller.switch.table.content_hash() == table_hash
        assert len(controller.ops.fast_path_log) == fast_path_waves
        assert controller.ops.health().stale_routes == {"B": len(B_ROUTES)}

        # The peer becomes reachable; backoff reconnection restores it.
        reachable["up"] = True
        sim.run_until(60.0)
        assert server.session("B").is_established
        assert resilience.liveness.peer_state("B").reconnect_attempts >= 2

        # B re-announces the identical table; End-of-RIB sweeps nothing.
        for prefix, as_path, next_hop, export_to in B_ROUTES:
            controller.routing.announce(
                "B",
                prefix,
                RouteAttributes(as_path=as_path, next_hop=next_hop),
                export_to=export_to,
            )
        resilience.end_of_rib("B")
        assert server.stale_prefixes("B") == frozenset()
        # The whole failure-and-return cycle: not one flow-table write.
        assert controller.switch.table.content_hash() == table_hash
        assert len(controller.ops.fast_path_log) == fast_path_waves
        assert not controller.ops.health().degraded

    def test_peer_that_never_returns_is_swept_once(self, figure1_compiled):
        controller = figure1_compiled
        sim = Simulator()
        resilience = controller.enable_resilience(
            clock=sim,
            liveness=LivenessConfig(hold_time=30.0, restart_time=120.0),
            reconnect_probe=lambda peer: False,
        )
        for peer in ("A", "C"):
            sim.schedule_every(10.0, lambda p=peer: resilience.liveness.heard_from(p))
        waves_before = len(controller.ops.fast_path_log)
        sim.run_until(200.0)  # hold expiry at 30, restart sweep at 150
        server = controller.route_server
        assert server.session("B").state is SessionState.FAILED
        assert server.stale_prefixes("B") == frozenset()
        for prefix, _, _, _ in B_ROUTES:
            assert server.route_from("B", IPv4Prefix(prefix)) is None
        # The sweep recompiled each affected prefix exactly once (every
        # one of B's routes was someone's best path — C imported p1/p2
        # from B even though its own routes win elsewhere).
        touched = {u.prefix for u in controller.ops.fast_path_log[waves_before:]}
        assert touched == {IPv4Prefix(p) for p, _, _, _ in B_ROUTES}
        assert len(controller.ops.fast_path_log) - waves_before == len(B_ROUTES)


class TestTransactionalCommit:
    """Acceptance (c): an aborted commit leaves the fabric untouched."""

    def test_mid_commit_failure_is_bit_identical_rollback(self, figure1_compiled):
        controller = figure1_compiled
        injector = FaultInjector(seed=13)
        before_hash = controller.switch.table.content_hash()
        before_paths = {
            prefix: egress(controller, "A", prefix, dstport=80, srcip="50.0.0.1")
            for prefix in (P1, P2, P3)
        }

        injector.sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.run_background_recompilation()

        assert controller.switch.table.content_hash() == before_hash
        after_paths = {
            prefix: egress(controller, "A", prefix, dstport=80, srcip="50.0.0.1")
            for prefix in (P1, P2, P3)
        }
        assert after_paths == before_paths

        # The sabotage hook expires after one commit: recovery is clean.
        controller.run_background_recompilation()
        assert egress(controller, "A", P1, dstport=80, srcip="50.0.0.1") == ["B1"]

    def test_mid_patch_failure_rolls_back_delta_exactly(self, figure1_compiled):
        """A sabotaged *delta* commit — one with genuine adds, removes,
        and reprioritized moves half-applied when the hook raises — must
        restore membership, order, and priorities bit-identically."""
        from repro.core.participant import SDXPolicySet
        from repro.policy import fwd, match

        controller = figure1_compiled
        injector = FaultInjector(seed=17)
        before_hash = controller.switch.table.content_hash()

        # Dirty one participant so the aborted commit carries a real
        # patch (C's new policy adds a segment and shifts the tiling of
        # every segment below it — adds + moves in one transaction).
        controller.policy.set_policies(
            "C",
            SDXPolicySet(outbound=match(dstport=22) >> fwd("A")),
            recompile=False,
        )
        injector.sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.run_background_recompilation()
        assert controller.switch.table.content_hash() == before_hash

        # The dirty state survived the abort; the recovery pass applies
        # the same delta cleanly and lands on a different table.
        report = controller.run_background_recompilation()
        assert report.added > 0
        assert report.retained + report.reprioritized > 0
        assert controller.switch.table.content_hash() != before_hash


class TestSeededSoak:
    """A bounded storm of mixed faults; the exchange must stay coherent."""

    def _corrupt_wire(self, controller, resilience, injector):
        cattrs = RouteAttributes(as_path=[65101], next_hop="172.0.0.21")
        (data,) = encode_update(
            BGPUpdate("C", announced=[Announcement(P2, cattrs)])
        )
        if injector.rng.random() < 0.5:
            resilience.process_wire("C", injector.corrupt_attributes(data))
        else:
            resilience.process_wire("C", injector.corrupt_marker(data))

    def test_soak_with_seeded_fault_mix(self, figure1_compiled):
        controller = figure1_compiled
        sim = Simulator()
        resilience = controller.enable_resilience(
            clock=sim, liveness=INERT_LIVENESS
        )
        injector = FaultInjector(seed=1234)
        battrs = RouteAttributes(as_path=[65002, 65102], next_hop="172.0.0.11")

        for _ in range(40):
            action = injector.rng.choice(["flap", "corrupt", "crash", "report"])
            if action == "flap":
                controller.routing.withdraw("B", P3)
                controller.routing.announce("B", P3, battrs)
            elif action == "corrupt":
                self._corrupt_wire(controller, resilience, injector)
            elif action == "crash":
                peer = injector.crash_session(controller.route_server)
                controller.route_server.session(peer).establish()
            else:
                # health() must stay consistent mid-storm, whatever broke
                report = controller.ops.health()
                assert report.flow_rules == len(controller.switch.table)

        # Every fault is on the injector's replayable record.
        assert injector.log
        # Recovery: sweep stale state, restore B's table, recompile.
        for peer in sorted(controller.route_server.peers()):
            session = controller.route_server.session(peer)
            if not session.is_established:
                session.establish()
            controller.route_server.sweep_stale(peer)
        for prefix, as_path, next_hop, export_to in B_ROUTES:
            controller.routing.announce(
                "B",
                prefix,
                RouteAttributes(as_path=as_path, next_hop=next_hop),
                export_to=export_to,
            )
        controller.run_background_recompilation()
        report = controller.ops.health()
        assert all(state == "established" for state in report.sessions.values())
        assert not report.quarantined
        assert report.flow_rules > 0
        # The data plane answers coherently after the storm.
        assert egress(controller, "A", P3, dstport=80, srcip="50.0.0.1") == ["B1"]

    def test_same_seed_injects_the_same_faults(self):
        from tests.conftest import (
            install_figure1_policies,
            load_figure1_routes,
            make_figure1_config,
        )
        from repro.core.controller import SDXController

        logs = []
        for _ in range(2):
            controller = SDXController(make_figure1_config())
            load_figure1_routes(controller)
            install_figure1_policies(controller)
            injector = FaultInjector(seed=99)
            for _ in range(6):
                peer = injector.crash_session(controller.route_server)
                controller.route_server.session(peer).establish()
            logs.append(list(injector.log))
        assert logs[0] == logs[1]
