"""Integration tests for the Figure 5 deployment timelines (scaled down)."""

import pytest

from repro.experiments.figure5 import run_5a, run_5b


@pytest.fixture(scope="module")
def fig5a():
    return run_5a(duration=240.0, policy_time=80.0, withdrawal_time=160.0)


@pytest.fixture(scope="module")
def fig5b():
    return run_5b(duration=160.0, policy_time=80.0)


class TestApplicationSpecificPeeringTimeline:
    def test_before_policy_all_traffic_via_a(self, fig5a):
        rates = fig5a.rates_at(60.0)
        assert rates["via-A"] == pytest.approx(3.0, abs=0.3)
        assert rates["via-B"] == 0.0

    def test_policy_moves_port80_flow_to_b(self, fig5a):
        rates = fig5a.rates_at(140.0)
        assert rates["via-A"] == pytest.approx(2.0, abs=0.3)
        assert rates["via-B"] == pytest.approx(1.0, abs=0.3)

    def test_withdrawal_restores_path_via_a(self, fig5a):
        """Figure 5a's headline: the data plane stays in sync with BGP."""
        rates = fig5a.rates_at(230.0)
        assert rates["via-A"] == pytest.approx(3.0, abs=0.3)
        assert rates["via-B"] == 0.0

    def test_no_traffic_lost_in_steady_state(self, fig5a):
        for at in (60.0, 140.0, 230.0):
            rates = fig5a.rates_at(at)
            assert rates["via-A"] + rates["via-B"] == pytest.approx(3.0, abs=0.5)


class TestWideAreaLoadBalancerTimeline:
    def test_before_policy_all_requests_hit_instance_1(self, fig5b):
        rates = fig5b.rates_at(60.0)
        assert rates["instance-1"] == pytest.approx(2.0, abs=0.3)
        assert rates["instance-2"] == 0.0

    def test_policy_splits_clients_between_instances(self, fig5b):
        rates = fig5b.rates_at(140.0)
        assert rates["instance-1"] == pytest.approx(1.0, abs=0.3)
        assert rates["instance-2"] == pytest.approx(1.0, abs=0.3)

    def test_total_request_rate_preserved(self, fig5b):
        for at in (60.0, 140.0):
            rates = fig5b.rates_at(at)
            total = rates["instance-1"] + rates["instance-2"]
            assert total == pytest.approx(2.0, abs=0.4)
