"""Integration tests: service chaining through middleboxes (Section 8).

A participant steers selected traffic through an ordered sequence of
middleboxes; the frames keep their VMAC tag across every hop, so after
the last middlebox the traffic resumes its normal BGP path (or an
explicit exit target) — the extension the paper sketches as future
work, built on the same compilation machinery.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.chaining import ServiceChain, validate_chains
from repro.ixp.deployment import EmulatedIXP
from repro.ixp.topology import IXPConfig
from repro.policy import fwd, match


@pytest.fixture
def deployment():
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("ISP", 65001, [("ISP1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("T", 65002, [("T1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant(
        "MB",
        65005,
        [
            ("FW1", "172.0.0.51", "08:00:27:00:00:51"),
            ("DPI1", "172.0.0.52", "08:00:27:00:00:52"),
        ],
    )
    ixp = EmulatedIXP(config, appliance_ports=["FW1", "DPI1"])
    ixp.controller.routing.announce(
        "T", "198.51.0.0/16", RouteAttributes(as_path=[65002, 64999], next_hop="172.0.0.11")
    )
    ixp.add_host("subscriber", "ISP", "100.64.0.50")
    ixp.add_chain_middlebox("firewall", "FW1")
    ixp.add_chain_middlebox("dpi", "DPI1")
    return ixp


def install_chain(ixp, exit=None):
    controller = ixp.controller
    chain = ServiceChain("scrub", hops=["FW1", "DPI1"], exit=exit)
    controller.policy.define_chain(chain)
    isp = controller.register_participant("ISP")
    isp.set_policies(outbound=match(dstport=80) >> fwd(chain))
    return chain


class TestValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ServiceChain("x", hops=[])

    def test_repeated_hop_rejected(self):
        with pytest.raises(ValueError):
            ServiceChain("x", hops=["FW1", "FW1"])

    def test_unknown_port_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.controller.policy.define_chain(ServiceChain("x", hops=["NOPE"]))

    def test_port_cannot_serve_two_chains(self, deployment):
        config = deployment.controller.config
        with pytest.raises(ValueError):
            validate_chains(
                [ServiceChain("a", ["FW1"]), ServiceChain("b", ["FW1"])], config
            )


class TestChainedForwarding:
    def test_traffic_traverses_every_hop_in_order(self, deployment):
        install_chain(deployment)
        deployment.send("subscriber", dstip="198.51.7.7", dstport=80, srcport=5)
        assert len(deployment.middleboxes["firewall"].seen) == 1
        assert len(deployment.middleboxes["dpi"].seen) == 1
        # and, after the chain, the packet resumed its BGP path via T
        assert deployment.carried_upstream_by("T") == 1

    def test_forwarding_tag_preserved_through_chain(self, deployment):
        """The destination-MAC tag (here the announcing interface's MAC,
        since no policy gives this prefix a VMAC) must survive every hop
        — it is what lets post-chain traffic resume default forwarding."""
        install_chain(deployment)
        deployment.send("subscriber", dstip="198.51.7.7", dstport=80, srcport=5)
        (at_firewall,) = deployment.middleboxes["firewall"].seen
        (at_dpi,) = deployment.middleboxes["dpi"].seen
        t1 = deployment.controller.config.participant("T").port("T1")
        assert at_firewall["dstmac"] == at_dpi["dstmac"] == t1.hardware

    def test_unselected_traffic_bypasses_chain(self, deployment):
        install_chain(deployment)
        deployment.send("subscriber", dstip="198.51.7.7", dstport=443, srcport=5)
        assert deployment.middleboxes["firewall"].seen == []
        assert deployment.carried_upstream_by("T") == 1

    def test_firewall_can_drop(self, deployment):
        install_chain(deployment)
        deployment.middleboxes["firewall"].transform = lambda packet: None
        deployment.send("subscriber", dstip="198.51.7.7", dstport=80, srcport=5)
        assert deployment.middleboxes["dpi"].seen == []
        assert deployment.carried_upstream_by("T") == 0

    def test_middlebox_transform_applies(self, deployment):
        install_chain(deployment)
        deployment.middleboxes["firewall"].transform = lambda packet: packet.modify(tos=46)
        deployment.send("subscriber", dstip="198.51.7.7", dstport=80, srcport=5)
        (at_dpi,) = deployment.middleboxes["dpi"].seen
        assert at_dpi["tos"] == 46

    def test_explicit_exit_target(self, deployment):
        install_chain(deployment, exit="T1")
        deployment.send("subscriber", dstip="198.51.7.7", dstport=80, srcport=5)
        assert deployment.carried_upstream_by("T") == 1

    def test_chain_survives_fast_path_update(self, deployment):
        """A best-path change to the chained prefix must not break the
        chain: the fast-path block carries its own continuation rules."""
        install_chain(deployment)
        controller = deployment.controller
        controller.routing.announce(
            "T", "198.51.0.0/16", RouteAttributes(as_path=[64999], next_hop="172.0.0.11")
        )
        assert controller.ops.fast_path_log  # fast path fired
        deployment.send("subscriber", dstip="198.51.7.7", dstport=80, srcport=5)
        assert len(deployment.middleboxes["firewall"].seen) == 1
        assert len(deployment.middleboxes["dpi"].seen) == 1
        assert deployment.carried_upstream_by("T") == 1
