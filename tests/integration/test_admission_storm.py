"""Integration: a policy-storming tenant is throttled, neighbours are not.

The admission plane's acceptance property is *isolation*: one tenant
hammering the control plane must not degrade anyone else's service.
These tests drive a seeded storm from one participant of the Figure 1
exchange and assert (1) the storm is rejected with typed errors and an
escalating backoff, (2) every other participant's control-plane
requests still go through, and (3) the data plane keeps forwarding
exactly as before the storm.  The admission clock is injected, so every
timing assertion is deterministic.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.controller import SDXController
from repro.core.participant import SDXPolicySet
from repro.guard import (
    AdmissionConfig,
    AnnouncementRateExceeded,
    PolicyEditRateExceeded,
)
from repro.policy.language import fwd, match

from tests.conftest import (
    P1,
    P3,
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)
from tests.integration.test_chaos import egress


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def metered():
    """Figure 1, compiled, with finite edit/announce budgets and a fake clock."""
    controller = SDXController(
        make_figure1_config(),
        admission=AdmissionConfig(
            policy_edits_per_sec=1.0,
            policy_edit_burst=2,
            announcements_per_sec=10.0,
            announcement_burst=20,
            backoff_initial=0.5,
            backoff_factor=2.0,
            backoff_max=8.0,
        ),
    )
    clock = FakeClock()
    controller.telemetry.set_time_source(clock)
    load_figure1_routes(controller)
    clock.advance(10.0)  # refill what the route load spent
    install_figure1_policies(controller)
    return controller, clock


def storm_policy(port: int) -> SDXPolicySet:
    return SDXPolicySet(outbound=(match(dstport=port) >> fwd("B")))


class TestPolicyStorm:
    def test_storm_is_rejected_with_escalating_backoff(self, metered):
        controller, clock = metered
        state = controller.admission._tenants["C"]
        allowed_before = state.allowed  # route-load announcements count too
        rejections = []
        for attempt in range(12):
            try:
                controller.policy.set_policies(
                    "C", storm_policy(8000 + attempt), recompile=True
                )
            except PolicyEditRateExceeded as error:
                rejections.append(error)
        # burst of 2 admitted, the other 10 rejected
        assert len(rejections) == 10
        assert state.allowed == allowed_before + 2 and state.rejected == 10
        # penalties escalated: 0.5 → 1 → 2 → 4 → 8 (capped)
        assert state.penalty == pytest.approx(8.0)
        retry_afters = [error.retry_after for error in rejections]
        assert retry_afters == sorted(retry_afters)

    def test_neighbours_keep_control_plane_access(self, metered):
        controller, clock = metered
        for attempt in range(12):
            try:
                controller.policy.set_policies(
                    "C", storm_policy(8000 + attempt), recompile=True
                )
            except PolicyEditRateExceeded:
                pass
        # A's quota is untouched by C's storm: its burst is still free.
        controller.policy.set_policies(
            "A",
            SDXPolicySet(
                outbound=(match(dstport=80) >> fwd("B"))
                + (match(dstport=443) >> fwd("C"))
            ),
            recompile=True,
        )
        # ... and so is B's announcement budget.
        controller.routing.announce(
            "B",
            "10.9.0.0/16",
            RouteAttributes(as_path=[65002, 65900], next_hop="172.0.0.11"),
        )
        snapshot = controller.admission.snapshot()
        assert "C" in snapshot and snapshot["C"]["in_backoff"]
        assert "A" not in snapshot and "B" not in snapshot

    def test_forwarding_is_unaffected_by_the_storm(self, metered):
        controller, clock = metered
        baseline = {
            ("A", P1, 80): egress(controller, "A", P1, dstport=80, srcip="50.0.0.1"),
            ("A", P1, 443): egress(controller, "A", P1, dstport=443, srcip="50.0.0.1"),
            ("A", P3, 80): egress(controller, "A", P3, dstport=80, srcip="192.0.0.1"),
        }
        assert baseline[("A", P1, 80)] == ["B1"]  # sanity: policies active
        digest = controller.switch.table.content_hash()
        storm_digest_changed = False
        for attempt in range(20):
            try:
                controller.policy.set_policies(
                    "C", storm_policy(8000 + attempt), recompile=True
                )
                storm_digest_changed = True  # an admitted edit may recompile
            except PolicyEditRateExceeded:
                pass
        for (sender, prefix, port), expected in baseline.items():
            assert (
                egress(controller, sender, prefix, dstport=port, srcip="50.0.0.1"
                       if port != 80 or prefix != P3 else "192.0.0.1")
                == expected
            )
        if not storm_digest_changed:
            assert controller.switch.table.content_hash() == digest

    def test_storm_recovers_after_quiet_period(self, metered):
        controller, clock = metered
        for attempt in range(8):
            try:
                controller.policy.set_policies(
                    "C", storm_policy(8000 + attempt), recompile=False
                )
            except PolicyEditRateExceeded:
                pass
        state = controller.admission._tenants["C"]
        assert state.backoff_until > clock.now
        # Stay quiet for the whole backoff + a full penalty window.
        clock.advance(state.backoff_until - clock.now + state.penalty + 2.0)
        controller.policy.set_policies("C", storm_policy(9000), recompile=False)
        assert controller.admission._tenants["C"].penalty == 0.0
        assert not controller.admission.snapshot()["C"]["in_backoff"]

    def test_health_surfaces_throttled_tenants(self, metered):
        controller, clock = metered
        for attempt in range(6):
            try:
                controller.policy.set_policies(
                    "C", storm_policy(8000 + attempt), recompile=False
                )
            except PolicyEditRateExceeded:
                pass
        health = controller.ops.health()
        assert health.admission["C"]["in_backoff"]
        assert "throttled: C" in health.summary()


class TestAnnouncementStorm:
    def test_update_burst_is_metered_per_prefix(self, metered):
        controller, clock = metered
        attrs = RouteAttributes(as_path=[65002, 65901], next_hop="172.0.0.11")
        admitted = rejected = 0
        for i in range(40):
            try:
                controller.routing.announce("B", f"10.{100 + i}.0.0/16", attrs)
                admitted += 1
            except AnnouncementRateExceeded:
                rejected += 1
        assert admitted == 20  # the burst capacity
        assert rejected == 20
        # C's announcements still flow while B is in backoff.
        controller.routing.announce(
            "C",
            "10.200.0.0/16",
            RouteAttributes(as_path=[65003, 65902], next_hop="172.0.0.21"),
        )
