"""End-to-end telemetry: the controller's metrics across a full cycle.

Drives one compile, a best-path-changing update burst, and an aborted
transactional commit through a Figure 1 exchange, then asserts that
``controller.ops.metrics()`` / ``metrics_text()`` report the cycle — the
wiring test behind the ``make metrics`` CI smoke.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.resilience import CommitSabotage, FaultInjector

from tests.conftest import P1, P3


def flap(controller, index):
    """One guaranteed best-path change for P1 (alternating attributes)."""
    controller.routing.announce(
        "C",
        P1,
        RouteAttributes(as_path=[65100 + index % 2, 65100], next_hop="172.0.0.21"),
    )


class TestMetricsAcrossACycle:
    def test_compile_update_rollback_cycle_populates_metrics(
        self, figure1_compiled
    ):
        controller = figure1_compiled
        for index in range(6):
            flap(controller, index)
        injector = FaultInjector(seed=13)
        injector.sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.run_background_recompilation()

        metrics = controller.ops.metrics()

        def series(name):
            return {
                tuple(sorted(entry["labels"].items())): entry
                for entry in metrics[name]["series"]
            }

        # compile phases: the fixture compile plus the aborted recompile
        compiles = series("sdx_compilations_total")[()]["value"]
        assert compiles >= 2
        phases = {labels[0][1] for labels in series("sdx_compile_phase_seconds")}
        assert phases == {"ast", "fec", "transform", "compose"}
        assert metrics["sdx_compile_seconds"]["series"][0]["count"] >= 2

        # the update burst flowed through the route server and fast path
        assert series("sdx_bgp_updates_total")[(("kind", "announce"),)]["value"] >= 6
        fast = series("sdx_fastpath_seconds")[()]
        assert fast["count"] == len(controller.ops.fast_path_log)
        assert series("sdx_fastpath_updates_total")[(("outcome", "installed"),)][
            "value"
        ] >= 6

        # the sabotaged commit rolled back, and the flow table noticed
        assert series("sdx_flowtable_rollbacks_total")[()]["value"] == 1
        assert series("sdx_flowtable_commits_total")[()]["value"] >= 1
        assert (
            series("sdx_flowtable_rules")[()]["value"]
            == controller.table_size()
        )

        # sampled gauges refreshed at snapshot time
        assert (
            series("sdx_vnh_allocated")[()]["value"]
            == controller.allocator.allocated
        )
        assert (
            series("sdx_fastpath_extra_rules")[()]["value"]
            == controller.fast_path.additional_rules()
        )

    def test_rollback_reclaims_fastpath_vnhs(self, figure1_compiled):
        controller = figure1_compiled
        flap(controller, 0)
        (prefix,) = controller.fast_path.active_prefixes
        vnh = controller.fast_path._vnhs[prefix]
        injector = FaultInjector(seed=7)
        injector.sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.run_background_recompilation()
        # the aborted commit's flush released the fast-path VNH; the
        # rollback must reinstate it so the override rules keep resolving
        assert controller.arp.resolve(vnh.address) == vnh.hardware
        assert controller.fast_path.active_prefixes == {prefix}

    def test_exposition_text_round_trip(self, figure1_compiled):
        controller = figure1_compiled
        flap(controller, 0)
        text = controller.ops.metrics_text()
        assert "# TYPE sdx_compile_seconds histogram" in text
        assert "# TYPE sdx_bgp_updates_total counter" in text
        assert 'sdx_compile_phase_seconds_bucket{phase="fec",le="+Inf"}' in text
        assert "sdx_fastpath_seconds_count 1" in text

    def test_health_report_folds_in_event_counters(self, figure1_compiled):
        controller = figure1_compiled
        flap(controller, 0)
        report = controller.ops.health()
        assert report.events["session_transitions"] >= 3  # A, B, C established
        assert report.events["quarantines"] == 0
        assert report.events["damping_suppressed"] == 0


@pytest.mark.chaos
class TestMetricsUnderChaos:
    def test_metrics_stay_coherent_under_fault_storm(self, figure1_compiled):
        controller = figure1_compiled
        clock = controller.enable_resilience().clock
        for index in range(12):
            flap(controller, index)
            clock.run_until(clock.now + 0.5)
        injector = FaultInjector(seed=29)
        injector.sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.run_background_recompilation()
        controller.run_background_recompilation()  # sabotage expired

        metrics = controller.ops.metrics()
        rollbacks = metrics["sdx_flowtable_rollbacks_total"]["series"][0]["value"]
        commits = metrics["sdx_flowtable_commits_total"]["series"][0]["value"]
        assert rollbacks == 1
        assert commits >= 2
        # damping suppressed some of the storm, and health agrees with
        # both the coordinator and the exposed counter
        report = controller.ops.health()
        suppressed = controller.resilience.suppressed_changes
        assert report.events["damping_suppressed"] == suppressed
        counter = controller.telemetry.get("sdx_damping_suppressed_total")
        assert counter.total() == suppressed
        # gauges track the post-recovery table exactly
        rules = metrics["sdx_flowtable_rules"]["series"][0]["value"]
        assert rules == controller.table_size()
        assert controller.ops.metrics_text().strip()
