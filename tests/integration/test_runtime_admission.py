"""Integration: the event-loop runtime under a seeded announcement storm.

Satellite of the runtime PR: admission-plane rejections must keep the
ingress queue bounded (rejected work either surfaces immediately or is
parked on the *timer wheel*, never left clogging the queue), and with
``RuntimeConfig(admission_retry=True)`` the scheduler honours the
admission plane's honest ``retry_after`` by re-enqueueing the submission
once the backoff expires on the runtime's virtual clock
(``sim_time=True`` puts telemetry — and therefore the token buckets —
on the same time base the timer wheel advances).
"""

from __future__ import annotations

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.controller import SDXController
from repro.guard import AdmissionConfig, AnnouncementRateExceeded
from repro.runtime import QueueOverflow, RuntimeConfig

from tests.conftest import load_figure1_routes, make_figure1_config

ATTRS = RouteAttributes(as_path=[65002, 65901], next_hop="172.0.0.11")


def metered_eventloop(runtime_config, *, rate=10.0, burst=20):
    """Figure 1 on the event loop with finite announcement budgets,
    admission and runtime sharing one virtual clock."""
    controller = SDXController(
        make_figure1_config(),
        admission=AdmissionConfig(
            policy_edits_per_sec=100.0,
            policy_edit_burst=100,
            announcements_per_sec=rate,
            announcement_burst=burst,
            backoff_initial=0.5,
            backoff_factor=2.0,
            backoff_max=8.0,
        ),
        runtime_mode="eventloop",
        runtime_config=runtime_config,
    )
    load_figure1_routes(controller)
    # refill what the route load spent before the storm starts
    controller.runtime.clock.run_until(controller.runtime.clock.now + 10.0)
    return controller


class TestStormWithoutRetry:
    def test_rejection_propagates_like_inline(self):
        controller = metered_eventloop(RuntimeConfig(sim_time=True))
        admitted = rejected = 0
        for i in range(40):
            try:
                controller.routing.announce("B", f"10.{100 + i}.0.0/16", ATTRS)
                admitted += 1
            except AnnouncementRateExceeded as error:
                assert error.participant == "B" and error.retry_after > 0
                rejected += 1
        assert admitted == 20  # the burst capacity, exactly as inline
        assert rejected == 20
        assert controller.admission.snapshot()["B"]["in_backoff"]

    def test_queue_depth_stays_bounded_through_the_storm(self):
        controller = metered_eventloop(RuntimeConfig(sim_time=True))
        for i in range(40):
            try:
                controller.routing.announce("B", f"10.{100 + i}.0.0/16", ATTRS)
            except AnnouncementRateExceeded:
                pass
        info = controller.runtime.health_info()
        # Auto-drain never lets rejected work pile up: one event in
        # flight at a time, and the queue is empty again afterwards.
        assert info["ingress_peak"] <= 2
        assert controller.runtime.queue_depths()["ingress"] == 0
        assert info["inflight"] == 0


class TestStormWithRetry:
    def test_autodrain_retry_waits_out_the_backoff(self):
        controller = metered_eventloop(
            RuntimeConfig(sim_time=True, admission_retry=True)
        )
        started = controller.runtime.clock.now
        for i in range(40):  # every announcement eventually lands
            changes = controller.routing.announce("B", f"10.{100 + i}.0.0/16", ATTRS)
            assert changes
        state = controller.admission._tenants["B"]
        assert state.rejected > 0  # the storm *was* throttled...
        # ...but retries honoured retry_after, so all 40 were admitted
        # (plus the route load) and virtual time advanced to pay the
        # 20-announcement deficit at 10/sec.
        elapsed = controller.runtime.clock.now - started
        assert elapsed >= (40 - 20) / 10.0

    def test_pipelined_retry_timestamps_honor_retry_after(self):
        """One announcement over budget: its retry is parked for exactly
        ``retry_after`` (= the 0.5s initial backoff penalty) on the
        virtual clock, then admitted."""
        controller = metered_eventloop(
            RuntimeConfig(sim_time=True, admission_retry=True)
        )
        with controller.runtime.pipelined():
            handles = [
                controller.routing.announce("B", f"10.{100 + i}.0.0/16", ATTRS)
                for i in range(21)
            ]
        assert all(h.done and h.error is None for h in handles)
        retried = [h for h in handles if h.retries > 0]
        assert len(retried) == 1  # exactly one exceeded the burst of 20
        handle = retried[0]
        assert handle.completed_at - handle.enqueued_at == pytest.approx(0.5)

    def test_contended_storm_exhausts_the_retry_budget(self):
        controller = metered_eventloop(
            RuntimeConfig(sim_time=True, admission_retry=True,
                          max_admission_retries=2),
            rate=1.0,
            burst=5,
        )
        with controller.runtime.pipelined():
            handles = [
                controller.routing.announce("B", f"10.{100 + i}.0.0/16", ATTRS)
                for i in range(30)
            ]
        assert all(h.done for h in handles)
        succeeded = [h for h in handles if h.error is None]
        exhausted = [h for h in handles if h.error is not None]
        # The initial burst of 5 is admitted.  The 25 over-budget
        # contenders retry on honest retry_afters, but each retry that
        # lands inside the tenant's still-open backoff window counts as
        # a fresh rejection and extends the window for everyone — so a
        # contended storm exhausts its retry budget instead of slipping
        # past the throttle.  That is the admission plane's punitive
        # design, and the scheduler must surface it as a final, typed
        # rejection rather than retrying forever.
        assert len(succeeded) == 5
        assert len(exhausted) == 25
        for handle in exhausted:
            assert isinstance(handle.error, AnnouncementRateExceeded)
            assert handle.retries == 2  # budget spent before giving up

    def test_retry_requeue_respects_backpressure(self):
        controller = metered_eventloop(
            RuntimeConfig(sim_time=True, admission_retry=True,
                          ingress_capacity=8),
        )
        with pytest.raises(QueueOverflow):
            with controller.runtime.pipelined():
                for i in range(9):
                    controller.routing.announce("B", f"10.{100 + i}.0.0/16", ATTRS)
        controller.runtime.discard_pending()
        assert controller.runtime.health_info()["ingress_rejected"] >= 1
