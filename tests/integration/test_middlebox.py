"""Integration tests: middlebox redirection (Section 2's fourth application).

A participant steers a targeted subset of traffic — identified by a
BGP attribute query (``RIB.filter('as_path', '.*43515$')``) — through a
middlebox attached to a dedicated SDX port, exactly as the paper's
video-transcoder example describes.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.ixp.topology import IXPConfig
from repro.policy import fwd, match

YOUTUBE_AS = 43515
YOUTUBE_PREFIX = "10.9.0.0/16"
OTHER_PREFIX = "10.8.0.0/16"


@pytest.fixture
def deployment():
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    # E hosts the middlebox on port E1.
    config.add_participant("E", 65005, [("E1", "172.0.0.51", "08:00:27:00:00:51")])
    # E1 is occupied by the middlebox itself, not a border router.
    ixp = EmulatedIXP(config, appliance_ports=["E1"])
    controller = ixp.controller
    controller.routing.announce(
        "B",
        YOUTUBE_PREFIX,
        RouteAttributes(as_path=[65002, YOUTUBE_AS], next_hop="172.0.0.11"),
    )
    controller.routing.announce(
        "B",
        OTHER_PREFIX,
        RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11"),
    )
    ixp.add_host("client", "A", "50.0.0.1")
    ixp.add_middlebox("transcoder", "E1")
    return ixp


def install_redirect(ixp):
    controller = ixp.controller
    handle = controller.register_participant("A")
    youtube_prefixes = handle.rib().filter("as_path", rf".*{YOUTUBE_AS}$")
    assert youtube_prefixes, "RIB query must find the YouTube-originated prefix"
    handle.set_policies(
        outbound=match(dstip=set(youtube_prefixes)) >> fwd("E1"),
    )
    return youtube_prefixes


class TestMiddleboxRedirection:
    def test_rib_query_selects_by_origin_as(self, deployment):
        prefixes = install_redirect(deployment)
        assert [str(p) for p in prefixes] == [YOUTUBE_PREFIX]

    def test_targeted_traffic_reaches_middlebox(self, deployment):
        install_redirect(deployment)
        deployment.send("client", dstip="10.9.1.1", dstport=80, srcport=5)
        assert len(deployment.hosts["transcoder"].received) == 1
        # it never reached B's network
        assert deployment.carried_upstream_by("B") == 0

    def test_redirected_frames_carry_middlebox_port_mac(self, deployment):
        install_redirect(deployment)
        deployment.send("client", dstip="10.9.1.1", dstport=80, srcport=5)
        (packet,) = deployment.hosts["transcoder"].received
        e1 = deployment.controller.config.participant("E").port("E1")
        assert packet["dstmac"] == e1.hardware

    def test_untargeted_traffic_unaffected(self, deployment):
        install_redirect(deployment)
        deployment.send("client", dstip="10.8.1.1", dstport=80, srcport=5)
        assert deployment.hosts["transcoder"].received == []
        assert deployment.carried_upstream_by("B") == 1
