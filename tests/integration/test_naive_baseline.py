"""Integration tests: the naive compiler is equivalent but bigger.

The §4.2 strawman must forward identically to the optimized pipeline
(it differs only in encoding), while spending data-plane state
proportional to prefixes instead of prefix groups.  Probe equivalence
uses router-faithful tagging per strategy: physical next-hop MACs under
naive compilation, VMACs under the optimized one.
"""

import pytest

from repro.core.naive import compile_naive
from repro.experiments.common import build_scenario
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet

from tests.conftest import P1, P3, P4, install_figure1_policies


@pytest.fixture
def figure1(figure1_controller):
    install_figure1_policies(figure1_controller)
    return figure1_controller


def naive_probe(controller, naive_classifier, sender_port, dst_prefix, dstip, **headers):
    """Under naive compilation no VNHs exist: routers tag with the real
    next-hop interface MAC of their best route."""
    sender = controller.config.owner_of_port(sender_port).name
    best = controller.route_server.best_route(sender, IPv4Prefix(dst_prefix))
    if best is None:
        return None
    owner = controller.config.owner_of_address(best.attributes.next_hop)
    hardware = owner.port_for_address(best.attributes.next_hop).hardware
    packet = Packet(dstip=dstip, dstmac=hardware, port=sender_port, **headers)
    return naive_classifier.eval(packet)


def vmac_probe(controller, sender_port, dst_prefix, dstip, **headers):
    sender = controller.config.owner_of_port(sender_port).name
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    next_hop = advertised[IPv4Prefix(dst_prefix)]
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    packet = Packet(dstip=dstip, dstmac=vmac, port=sender_port, **headers)
    return controller.last_compilation.classifier.eval(packet)


PROBES = [
    (P1, "10.1.2.3", dict(dstport=80, srcip="50.0.0.1", srcport=7)),
    (P1, "10.1.2.3", dict(dstport=443, srcip="50.0.0.1", srcport=7)),
    (P1, "10.1.2.3", dict(dstport=22, srcip="50.0.0.1", srcport=7)),
    (P3, "10.3.1.1", dict(dstport=80, srcip="200.0.0.1", srcport=7)),
    (P4, "10.4.1.1", dict(dstport=80, srcip="50.0.0.1", srcport=7)),
]


def test_naive_forwards_identically_on_figure1(figure1):
    controller = figure1
    naive = compile_naive(
        controller.config, controller.route_server, controller.policy.policies()
    )
    for dst_prefix, dstip, headers in PROBES:
        expected = vmac_probe(controller, "A1", dst_prefix, dstip, **headers)
        actual = naive_probe(
            controller, naive.classifier, "A1", dst_prefix, dstip, **headers
        )
        expected_behaviour = {(o.get("port"), o.get("dstip")) for o in expected}
        actual_behaviour = {(o.get("port"), o.get("dstip")) for o in actual}
        assert actual_behaviour == expected_behaviour, (dst_prefix, headers)


def test_naive_uses_more_rules_at_scale():
    scenario = build_scenario(participants=25, prefixes=800, seed=4)
    naive = compile_naive(
        scenario.ixp.config, scenario.route_server, scenario.workload.policies
    )
    vmac = scenario.compiler().compile(scenario.workload.policies)
    assert naive.rules > 3 * vmac.stats.rules


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_naive_equivalent_on_random_scenarios(seed):
    """Randomized cross-check: both strategies forward probes identically
    (modulo each strategy's own router tagging)."""
    import random

    from repro.netutils.ip import IPv4Prefix as Prefix

    scenario = build_scenario(participants=15, prefixes=200, seed=seed)
    controller = scenario.controller()
    controller.compile()
    naive = compile_naive(
        controller.config, controller.route_server, controller.policy.policies()
    )
    rng = random.Random(seed)
    ports = [port.port_id for port in controller.config.physical_ports()]
    prefixes = sorted(controller.route_server.all_prefixes())
    checked = 0
    for _ in range(40):
        in_port = rng.choice(ports)
        sender = controller.config.owner_of_port(in_port).name
        prefix = rng.choice(prefixes)
        best = controller.route_server.best_route(sender, prefix)
        if best is None:
            continue
        if controller.route_server.route_from(sender, prefix) is not None:
            # Paper invariant: an announcer never forwards traffic for
            # its own prefix back into the fabric (its router delivers
            # locally), so such probes are outside both pipelines' spec.
            continue
        headers = dict(
            dstip=prefix.host(rng.randrange(1, 255)),
            dstport=rng.choice((80, 443, 8080, 22)),
            srcip=rng.choice(("50.0.0.1", "200.9.9.9")),
            srcport=7,
            port=in_port,
        )
        # VMAC-strategy tagging
        advertised = {
            a.prefix: a.attributes.next_hop
            for a in controller.advertisements(sender)
        }
        vmac = controller.arp.resolve(advertised[prefix])
        if vmac is None:
            owner = controller.config.owner_of_address(advertised[prefix])
            vmac = owner.port_for_address(advertised[prefix]).hardware
        vmac_out = controller.last_compilation.classifier.eval(
            Packet(dstmac=vmac, **headers)
        )
        # naive-strategy tagging: the real best next-hop interface MAC
        owner = controller.config.owner_of_address(best.attributes.next_hop)
        hardware = owner.port_for_address(best.attributes.next_hop).hardware
        naive_out = naive.classifier.eval(Packet(dstmac=hardware, **headers))
        vmac_behaviour = {(o.get("port"), o.get("dstip")) for o in vmac_out}
        naive_behaviour = {(o.get("port"), o.get("dstip")) for o in naive_out}
        assert naive_behaviour == vmac_behaviour, (sender, prefix, headers)
        checked += 1
    assert checked >= 20


def test_naive_rule_count_tracks_prefixes_not_groups():
    small = build_scenario(participants=20, prefixes=300, seed=4)
    large = build_scenario(participants=20, prefixes=900, seed=4)
    naive_small = compile_naive(
        small.ixp.config, small.route_server, small.workload.policies
    )
    naive_large = compile_naive(
        large.ixp.config, large.route_server, large.workload.policies
    )
    # tripling the table size should grow the naive table substantially
    assert naive_large.rules > 2 * naive_small.rules
