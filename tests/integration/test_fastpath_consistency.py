"""Integration tests: fast-path vs background-recompiled data planes.

Section 4.3.2's two-stage design is only sound if the quick, suboptimal
fast-path rules forward *identically* to the fully re-optimized table
that eventually replaces them.  These tests drive the same probe
packets through the switch right after a fast-path update and again
after background re-optimization, asserting identical egress behaviour
— and that the re-optimized table is no larger.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet

from tests.conftest import P1, P2, P3, P4


def probe_packets(controller, sender_port):
    """Probes across ports/flows, tagged per the sender's current routes."""
    sender = controller.config.owner_of_port(sender_port).name
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    packets = []
    for prefix_text, dstip in ((P1, "10.1.2.3"), (P2, "10.2.9.9"), (P3, "10.3.4.5"), (P4, "10.4.7.7")):
        prefix = IPv4Prefix(prefix_text)
        next_hop = advertised.get(prefix)
        if next_hop is None:
            continue
        vmac = controller.arp.resolve(next_hop)
        if vmac is None:
            owner = controller.config.owner_of_address(next_hop)
            if owner is None:
                continue
            vmac = owner.port_for_address(next_hop).hardware
        for dstport in (80, 443, 22):
            for srcip in ("50.0.0.1", "200.0.0.1"):
                packets.append(
                    Packet(
                        dstip=dstip,
                        dstmac=vmac,
                        port=sender_port,
                        dstport=dstport,
                        srcport=7,
                        srcip=srcip,
                    )
                )
    return packets


def egress_behaviour(controller, packets):
    observed = []
    for packet in packets:
        outputs = controller.switch.receive(packet, packet["port"])
        observed.append(
            {
                (port, out.get("dstmac"), out.get("dstip"))
                for port, out in outputs
            }
        )
    return observed


SCENARIOS = [
    ("withdraw-diverted", lambda c: c.routing.withdraw("B", P1)),
    ("withdraw-best", lambda c: c.routing.withdraw("C", P1)),
    (
        "better-path",
        lambda c: c.routing.announce(
            "C", P3, RouteAttributes(as_path=[65102], next_hop="172.0.0.21")
        ),
    ),
    (
        "new-port",
        lambda c: c.routing.announce(
            "B", P2, RouteAttributes(as_path=[65002, 65101], next_hop="172.0.0.12")
        ),
    ),
]


@pytest.mark.parametrize("name,mutate", SCENARIOS)
def test_fast_path_agrees_with_background_recompilation(figure1_compiled, name, mutate):
    controller = figure1_compiled
    mutate(controller)
    assert controller.ops.fast_path_log, "expected the fast path to fire"
    packets = probe_packets(controller, "A1")
    assert packets
    fast = egress_behaviour(controller, packets)
    fast_table_size = controller.table_size()
    controller.run_background_recompilation()
    packets_after = probe_packets(controller, "A1")
    optimized = egress_behaviour(controller, packets_after)
    assert optimized == fast, f"fast path diverged from optimal table in {name}"
    assert controller.table_size() <= fast_table_size


def test_burst_then_background_recompilation(figure1_compiled):
    controller = figure1_compiled
    controller.routing.withdraw("B", P1)
    controller.routing.announce(
        "C", P3, RouteAttributes(as_path=[65102], next_hop="172.0.0.21")
    )
    controller.routing.announce(
        "B", P1, RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
    )
    packets = probe_packets(controller, "A1") + probe_packets(controller, "C1")
    fast = egress_behaviour(controller, packets)
    controller.run_background_recompilation()
    packets_after = probe_packets(controller, "A1") + probe_packets(controller, "C1")
    assert egress_behaviour(controller, packets_after) == fast


def test_fast_path_is_fast(figure1_compiled):
    """Sub-second convergence is the paper's headline claim; at this toy
    scale the fast path should be comfortably sub-100ms per update."""
    controller = figure1_compiled
    controller.routing.withdraw("C", P1)
    (entry,) = controller.ops.fast_path_log
    assert entry.seconds < 0.1
