"""Randomized cross-validation of the compiler against a reference model.

The compiled single-table data plane is compared, probe by probe,
against an *independent* model of what the SDX should do, built from
the policy ASTs and route-server queries directly (no classifiers):

1. evaluate the sender's outbound policy AST on the packet;
2. keep only outputs whose target legitimately advertised the
   destination to the sender (the BGP-consistency rule);
3. if nothing remains, fall back to the sender's best BGP route;
4. at the receiving virtual switch, evaluate the inbound policy AST;
   failing that, deliver out the port that announced the prefix;
5. frames leave with the egress interface's MAC.

Workloads come from the §6.1 generator (unicast, disjoint policies —
the regime the oracle models exactly); probes sample advertised
prefixes with router-faithful MAC tags.
"""

import random

import pytest

from repro.experiments.common import build_scenario
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet


def _tag(controller, sender, prefix):
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    next_hop = advertised.get(prefix)
    if next_hop is None:
        return None
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        if owner is None:
            return None
        vmac = owner.port_for_address(next_hop).hardware
    return vmac


def _expected_outputs(controller, packet, sender, prefix):
    """The reference model: (egress port, dstip) pairs for one probe."""
    config = controller.config
    server = controller.route_server
    policy_sets = controller.policy.policies()

    def deliver(target, carried):
        """Delivery at participant ``target``'s virtual switch."""
        spec = config.participant(target)
        inbound = policy_sets.get(target).inbound if target in policy_sets else None
        if inbound is not None:
            outs = inbound.eval(carried)
            if outs:
                return {
                    (out["port"], out.get("dstip")) for out in outs
                }
        route = server.route_from(target, prefix)
        if route is None:
            return set()
        port = spec.port_for_address(route.attributes.next_hop)
        if port is None:
            return set()
        return {(port.port_id, carried.get("dstip"))}

    outbound = (
        policy_sets.get(sender).outbound if sender in policy_sets else None
    )
    loc_rib = server.loc_rib(sender)
    deliveries = set()
    if outbound is not None:
        for out in outbound.eval(packet):
            target = out.get("port")
            if target in config and prefix in loc_rib.prefixes_via(target):
                deliveries |= deliver(target, out)
    if not deliveries:
        best = loc_rib.best(prefix)
        if best is None:
            return set()
        deliveries = deliver(best.learned_from, packet)
    return deliveries


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_compiled_data_plane_matches_reference_model(seed):
    scenario = build_scenario(
        participants=25, prefixes=400, seed=seed, policy_seed=seed + 50
    )
    controller = scenario.controller()
    controller.compile()
    config = controller.config
    server = controller.route_server

    rng = random.Random(seed + 99)
    ports = [port.port_id for port in config.physical_ports()]
    prefixes = sorted(server.all_prefixes())
    probes = checked = 0
    while probes < 60:
        probes += 1
        in_port = rng.choice(ports)
        sender = config.owner_of_port(in_port).name
        prefix = rng.choice(prefixes)
        if server.route_from(sender, prefix) is not None:
            # Paper invariant: announcers never forward traffic for
            # their own prefixes back into the fabric.
            continue
        vmac = _tag(controller, sender, prefix)
        if vmac is None:
            continue  # sender has no route: its router would not send
        packet = Packet(
            dstip=prefix.host(rng.randrange(1, 255)),
            dstmac=vmac,
            dstport=rng.choice((80, 443, 8080, 1935, 8443, 22)),
            srcport=rng.choice((1024, 30000, 55000)),
            srcip=rng.choice(("50.0.0.1", "130.5.5.5", "200.9.9.9")),
        )
        expected = _expected_outputs(controller, packet, sender, prefix)
        actual = {
            (port, out.get("dstip"))
            for port, out in controller.switch.receive(
                packet.modify(port=in_port), in_port
            )
        }
        assert actual == expected, (
            f"seed={seed} sender={sender} prefix={prefix} packet={packet}"
        )
        checked += 1
    assert checked >= 30, "too few checkable probes"
