"""Property tests: PrefixTrie versus a naive dict + linear-scan model."""

from hypothesis import given, strategies as st

from repro.netutils.ip import IPv4Address, IPv4Prefix, PrefixTrie

prefix_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
        st.integers(),
    ),
    max_size=40,
)
probe_addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address), max_size=20
)


def model_longest_match(entries, address):
    best = None
    for pfx, value in entries.items():
        if address in pfx and (best is None or pfx.length > best[0].length):
            best = (pfx, value)
    return best


@given(prefix_entries, probe_addresses)
def test_longest_match_agrees_with_linear_scan(raw_entries, probes):
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    assert len(trie) == len(entries)
    for address in probes:
        assert trie.longest_match(address) == model_longest_match(entries, address)


@given(prefix_entries)
def test_items_round_trip(raw_entries):
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    assert dict(trie.items()) == entries


@given(prefix_entries)
def test_deletion_restores_model(raw_entries):
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    # delete every other key
    for index, pfx in enumerate(list(entries)):
        if index % 2 == 0:
            del trie[pfx]
            del entries[pfx]
    assert dict(trie.items()) == entries
    for pfx in entries:
        assert pfx in trie


@given(prefix_entries, st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1), st.integers(min_value=0, max_value=16)))
def test_covered_by_agrees_with_containment_scan(raw_entries, block_raw):
    block = IPv4Prefix(block_raw[0], block_raw[1])
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    expected = {pfx: v for pfx, v in entries.items() if block.contains(pfx)}
    assert dict(trie.covered_by(block)) == expected
