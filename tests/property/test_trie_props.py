"""Property tests: PrefixTrie versus a naive dict + linear-scan model."""

from hypothesis import given, strategies as st

from repro.netutils.ip import IPv4Address, IPv4Prefix, PrefixTrie

prefix_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
        st.integers(),
    ),
    max_size=40,
)
probe_addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address), max_size=20
)


def model_longest_match(entries, address):
    best = None
    for pfx, value in entries.items():
        if address in pfx and (best is None or pfx.length > best[0].length):
            best = (pfx, value)
    return best


@given(prefix_entries, probe_addresses)
def test_longest_match_agrees_with_linear_scan(raw_entries, probes):
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    assert len(trie) == len(entries)
    for address in probes:
        assert trie.longest_match(address) == model_longest_match(entries, address)


@given(prefix_entries)
def test_items_round_trip(raw_entries):
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    assert dict(trie.items()) == entries


@given(prefix_entries)
def test_deletion_restores_model(raw_entries):
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    # delete every other key
    for index, pfx in enumerate(list(entries)):
        if index % 2 == 0:
            del trie[pfx]
            del entries[pfx]
    assert dict(trie.items()) == entries
    for pfx in entries:
        assert pfx in trie


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_host_bits_canonicalized(network, length, probe_raw):
    """10.1.2.3/16 and 10.1.0.0/16 are the same trie key."""
    canonical = IPv4Prefix(IPv4Prefix(network, length).network, length)
    trie = PrefixTrie()
    trie[IPv4Prefix(network, length)] = "first"
    trie[canonical] = "second"
    assert len(trie) == 1
    assert trie[canonical] == "second"
    probe = IPv4Address(probe_raw)
    assert (trie.longest_match(probe) is not None) == (probe in canonical)


@given(prefix_entries, probe_addresses)
def test_default_route_backstops_every_miss(raw_entries, probes):
    """With 0.0.0.0/0 installed, longest_match never misses and the
    default (depth 0) only wins when no real entry covers the probe."""
    entries = {}
    trie = PrefixTrie()
    default = IPv4Prefix(0, 0)
    trie[default] = "default"
    entries[default] = "default"
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    for address in probes:
        found = trie.longest_match(address)
        assert found == model_longest_match(entries, address)
        assert found is not None
        specific = {p for p in entries if p.length > 0 and address in p}
        if not specific:
            assert found[0] == default


@given(prefix_entries, probe_addresses)
def test_miss_reported_as_none(raw_entries, probes):
    """Without a default route, a probe outside every entry misses."""
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    for address in probes:
        covered = any(address in pfx for pfx in entries)
        assert (trie.longest_match(address) is not None) == covered


@given(prefix_entries, st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1), st.integers(min_value=0, max_value=16)))
def test_covered_by_agrees_with_containment_scan(raw_entries, block_raw):
    block = IPv4Prefix(block_raw[0], block_raw[1])
    entries = {}
    trie = PrefixTrie()
    for network, length, value in raw_entries:
        pfx = IPv4Prefix(network, length)
        entries[pfx] = value
        trie[pfx] = value
    expected = {pfx: v for pfx, v in entries.items() if block.contains(pfx)}
    assert dict(trie.covered_by(block)) == expected
