"""Algebraic laws of the policy language (Pyretic's equational theory).

The NSDI'13 paper the SDX builds on gives the language an equational
semantics; these properties pin the laws the SDX compiler implicitly
relies on when it reorders, prunes, and memoizes compositions.
All equalities are *semantic* (same output packets), not syntactic.
"""

from hypothesis import given, settings, strategies as st

from repro.policy import Packet, drop, false_, fwd, identity, match, modify, true_
from tests.property.test_policy_semantics import packets, policies


def equivalent(left, right, packet):
    assert left.eval(packet) == right.eval(packet)


@settings(max_examples=150, deadline=None)
@given(policies, packets)
def test_identity_is_sequential_unit(policy, packet):
    equivalent(identity >> policy, policy, packet)
    equivalent(policy >> identity, policy, packet)


@settings(max_examples=150, deadline=None)
@given(policies, packets)
def test_drop_is_sequential_zero(policy, packet):
    equivalent(drop >> policy, drop, packet)
    equivalent(policy >> drop, drop, packet)


@settings(max_examples=150, deadline=None)
@given(policies, packets)
def test_drop_is_parallel_unit(policy, packet):
    equivalent(drop + policy, policy, packet)
    equivalent(policy + drop, policy, packet)


@settings(max_examples=100, deadline=None)
@given(policies, policies, packets)
def test_parallel_is_commutative(left, right, packet):
    equivalent(left + right, right + left, packet)


@settings(max_examples=100, deadline=None)
@given(policies, packets)
def test_parallel_is_idempotent(policy, packet):
    equivalent(policy + policy, policy, packet)


@settings(max_examples=100, deadline=None)
@given(policies, policies, policies, packets)
def test_sequential_is_associative(a, b, c, packet):
    equivalent((a >> b) >> c, a >> (b >> c), packet)


@settings(max_examples=100, deadline=None)
@given(policies, policies, policies, packets)
def test_parallel_is_associative(a, b, c, packet):
    equivalent((a + b) + c, a + (b + c), packet)


@settings(max_examples=100, deadline=None)
@given(policies, policies, policies, packets)
def test_sequential_right_distributes_over_parallel(a, b, c, packet):
    """(a + b) >> c == (a >> c) + (b >> c) — the law behind the paper's
    §4.3.1 decomposition of the composed SDX policy."""
    equivalent((a + b) >> c, (a >> c) + (b >> c), packet)


@settings(max_examples=150, deadline=None)
@given(packets)
def test_true_false_filters(packet):
    equivalent(true_, identity, packet)
    equivalent(false_, drop, packet)


@settings(max_examples=100, deadline=None)
@given(st.sampled_from((80, 443, 22)), packets)
def test_filter_sequential_is_conjunction(port, packet):
    left = match(dstport=port) >> match(srcport=1000)
    right = match(dstport=port) & match(srcport=1000)
    equivalent(left, right, packet)


@settings(max_examples=100, deadline=None)
@given(packets)
def test_modify_then_matching_filter_passes(packet):
    policy = modify(dstport=80) >> match(dstport=80)
    expected = modify(dstport=80)
    equivalent(policy, expected, packet)
    blocked = modify(dstport=80) >> match(dstport=443)
    equivalent(blocked, drop, packet)
