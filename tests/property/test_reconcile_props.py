"""Property tests: delta-reconciled commits vs full wipe-and-reinstall.

The reconciling :class:`~repro.pipeline.stages.FabricCommitter` is only
correct if it is *observationally indistinguishable* from the historical
wipe-and-reinstall committer — same installed table, byte for byte —
while being strictly cheaper on incremental edits and preserving the
packet/byte counters of every rule it did not have to touch.  These
tests drive randomized synthetic exchanges (§6.1 policy mix, burst-
structured update traces) through full controllers and pin all three
claims at every commit point.
"""

from __future__ import annotations

import pytest

from repro.core.controller import SDXController
from repro.core.participant import SDXPolicySet
from repro.dataplane.flowtable import FlowRule, FlowTable
from repro.dataplane.reconcile import is_base_cookie, target_specs
from repro.experiments.common import build_scenario
from repro.pipeline import ParallelBackend, SerialBackend
from repro.workloads.policy_gen import generate_policies
from repro.workloads.update_gen import generate_update_trace


def _base_rules(controller: SDXController):
    return [rule for rule in controller.switch.table if is_base_cookie(rule.cookie)]


def _full_reinstall_digest(controller: SDXController) -> str:
    """What a wipe-and-reinstall of the last compilation would produce."""
    result = controller.last_compilation
    assert result is not None
    segments = result.segments or ((("all",), result.classifier),)
    fresh = FlowTable()
    for spec in target_specs(segments):
        fresh.install(
            FlowRule(spec.priority, spec.match, spec.actions, cookie=spec.cookie)
        )
    return fresh.content_hash()


def _assert_digest_identical(controller: SDXController) -> None:
    assert controller.switch.table.content_hash() == _full_reinstall_digest(controller)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_reconciled_commits_match_full_reinstall(seed):
    """After every commit in a randomized workload, the live table must
    hash identically to a from-scratch reinstall of the same result."""
    scenario = build_scenario(
        participants=8, prefixes=48, seed=seed, policy_seed=seed + 100
    )
    controller = scenario.controller()
    _assert_digest_identical(controller)

    trace = generate_update_trace(scenario.ixp, bursts=20, seed=seed + 5)
    half = len(trace.updates) // 2
    with controller.routing.batched_updates():
        for update in trace.updates[:half]:
            controller.routing.process_update(update)
    controller.run_background_recompilation()
    _assert_digest_identical(controller)

    alternate = generate_policies(scenario.ixp, seed=seed + 200)
    for name in list(alternate.policies)[:2]:
        controller.policy.set_policies(name, alternate.policies[name])
        _assert_digest_identical(controller)

    with controller.routing.batched_updates():
        for update in trace.updates[half:]:
            controller.routing.process_update(update)
    controller.run_background_recompilation()
    _assert_digest_identical(controller)


@pytest.mark.parametrize(
    "backend",
    [SerialBackend(), ParallelBackend(processes=2)],
    ids=["serial", "parallel"],
)
def test_reconciling_committer_backend_matrix(backend):
    """The delta committer composes with every execution backend: shard
    results computed serially or in worker processes reconcile to the
    same table a full reinstall would build."""
    scenario = build_scenario(participants=8, prefixes=48, seed=9, policy_seed=109)
    controller = scenario.controller(backend=backend)
    _assert_digest_identical(controller)
    alternate = generate_policies(scenario.ixp, seed=900)
    name = next(iter(alternate.policies))
    controller.policy.set_policies(name, alternate.policies[name])
    _assert_digest_identical(controller)


def test_single_participant_edit_installs_strictly_fewer_rules():
    """Editing 1 of 10 participants must not rewrite the whole table:
    the commit installs strictly fewer rules than the table holds, and
    retains a healthy remainder — asserted through the churn counters."""
    scenario = build_scenario(participants=10, prefixes=60, seed=3, policy_seed=7)
    controller = scenario.controller()
    table_total = len(_base_rules(controller))
    assert table_total > 0
    before = controller.ops.churn()

    alternate = generate_policies(scenario.ixp, seed=999)
    edited = next(
        name for name in alternate.policies if name in scenario.workload.policies
    )
    controller.policy.set_policies(edited, alternate.policies[edited])

    after = controller.ops.churn()
    report = controller.ops.last_commit()
    assert after.commits == before.commits + 1
    assert after.added - before.added == report.added
    assert report.added < table_total
    assert report.retained + report.reprioritized > 0
    _assert_digest_identical(controller)


def test_counters_preserved_on_every_untouched_rule():
    """Bump each installed base rule by exactly one packet, then edit one
    participant.  Every survivor the report counted (retained or
    reprioritized) must still carry its packet; every added rule starts
    at zero — so the table's packet total equals the survivor count."""
    scenario = build_scenario(participants=8, prefixes=48, seed=4, policy_seed=11)
    controller = scenario.controller()
    for rule in _base_rules(controller):
        rule.count(10)

    alternate = generate_policies(scenario.ixp, seed=444)
    edited = next(
        name for name in alternate.policies if name in scenario.workload.policies
    )
    controller.policy.set_policies(edited, alternate.policies[edited])

    report = controller.ops.last_commit()
    survivors = report.retained + report.reprioritized
    assert survivors > 0
    total_packets = sum(rule.packets for rule in _base_rules(controller))
    assert total_packets == survivors


def test_clearing_policies_reconciles_to_reduced_table():
    """Removing a participant's policies shrinks its segment via removes
    while the rest of the table survives in place."""
    scenario = build_scenario(participants=8, prefixes=48, seed=6, policy_seed=13)
    controller = scenario.controller()
    edited = next(iter(scenario.workload.policies))
    before_total = len(_base_rules(controller))
    controller.policy.set_policies(edited, SDXPolicySet())
    report = controller.ops.last_commit()
    assert report.removed > 0
    assert report.retained + report.reprioritized > 0
    assert len(_base_rules(controller)) <= before_total
    _assert_digest_identical(controller)
