"""Determinism properties: same seed → byte-identical workloads.

Three layers of the guarantee, each pinned separately:

* **repeat-run** — calling a generator or provider twice in one
  process yields byte-identical serialized documents;
* **cross-process / cross-PYTHONHASHSEED** — hash randomization must
  not leak into generated topologies, traces, or fixture ingestion
  (``IPv4Prefix.__hash__`` is salt-dependent, so any iteration over an
  un-sorted prefix set would break this);
* **serial vs parallel backend** — replaying the same scenario trace
  through controllers on different execution backends converges to the
  same fabric digest.
"""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.core.controller import SDXController
from repro.pipeline import ParallelBackend
from repro.workloads.providers import SyntheticProvider, load_fixture
from repro.workloads.scenarios import ScenarioSpec, build_scenario_trace, replay
from repro.workloads.serialization import (
    dumps_topology,
    dumps_trace,
    loads_topology,
    loads_trace,
)
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src")

#: Executed in a fresh interpreter per hash seed: digests of every
#: generator output whose byte-stability the suite guarantees.
_DIGEST_SCRIPT = """
import hashlib
from repro.workloads.providers import load_fixture
from repro.workloads.scenarios import ScenarioSpec, build_scenario_trace
from repro.workloads.serialization import dumps_topology, dumps_trace
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace

def digest(text):
    return hashlib.sha256(text.encode()).hexdigest()

ixp = generate_ixp(20, 120, seed=5)
print("ixp", digest(dumps_topology(ixp)))
trace = generate_update_trace(ixp, bursts=30, seed=6)
print("trace", digest(dumps_trace(trace)))
fixture = load_fixture("ixp_small").build()
print("fixture", digest(dumps_topology(fixture)))
spec = ScenarioSpec("d", "failover-storm", seed=7)
print("scenario", digest(dumps_trace(build_scenario_trace(fixture, spec))))
"""


class TestRepeatRunIdentity:
    def test_synthetic_topology(self):
        assert dumps_topology(generate_ixp(15, 90, seed=4)) == dumps_topology(
            generate_ixp(15, 90, seed=4)
        )

    def test_update_trace(self):
        ixp = generate_ixp(10, 60, seed=4)
        first = generate_update_trace(ixp, bursts=40, seed=9)
        second = generate_update_trace(ixp, bursts=40, seed=9)
        assert dumps_trace(first) == dumps_trace(second)

    def test_providers(self):
        for provider in (
            SyntheticProvider(12, 70, seed=2),
            load_fixture("ixp_small"),
        ):
            assert dumps_topology(provider.build()) == dumps_topology(
                provider.build()
            )

    def test_round_trip_is_stable(self):
        ixp = generate_ixp(10, 60, seed=4)
        text = dumps_topology(ixp)
        assert dumps_topology(loads_topology(text)) == text
        trace = generate_update_trace(ixp, bursts=20, seed=9)
        text = dumps_trace(trace)
        assert dumps_trace(loads_trace(text)) == text


class TestCrossProcessIdentity:
    def _digests(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hash_seed)
        env["PYTHONPATH"] = _SRC
        output = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return dict(line.split() for line in output.splitlines())

    def test_hash_randomization_does_not_leak(self):
        first = self._digests(1)
        second = self._digests(20140817)
        assert first == second
        assert set(first) == {"ixp", "trace", "fixture", "scenario"}


class TestBackendIdentity:
    def _fabric_hash(self, ixp, trace, backend):
        controller = SDXController(ixp.config, backend=backend)
        controller.route_server.load(ixp.updates)
        controller.compile()
        replay(controller, trace.updates, verify_every=0, recompile_every=4)
        return controller.switch.table.content_hash()

    def test_serial_and_parallel_replay_identically(self):
        ixp = load_fixture("ixp_small").build()
        trace = build_scenario_trace(
            ixp, ScenarioSpec("d", "correlated-withdrawal", seed=8)
        )
        serial = self._fabric_hash(ixp, trace, backend=None)
        parallel = self._fabric_hash(ixp, trace, ParallelBackend(processes=2))
        assert serial == parallel
