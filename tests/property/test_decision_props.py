"""Property tests for the BGP decision process."""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import Origin, RouteAttributes
from repro.bgp.decision import best_path, rank_routes
from repro.bgp.messages import Route


def route_strategy():
    return st.builds(
        lambda peer, path, nh, lp, med, origin: Route(
            "10.0.0.0/8",
            RouteAttributes(
                as_path=path, next_hop=nh, local_pref=lp, med=med, origin=origin
            ),
            learned_from=peer,
        ),
        peer=st.sampled_from(["A", "B", "C", "D", "E"]),
        path=st.lists(
            st.integers(min_value=64000, max_value=64100), min_size=1, max_size=5
        ),
        nh=st.integers(min_value=1, max_value=1 << 24),
        lp=st.sampled_from([50, 100, 200]),
        med=st.sampled_from([0, 10, 50]),
        origin=st.sampled_from(list(Origin)),
    )


routes_lists = st.lists(route_strategy(), max_size=8)


@given(routes_lists)
def test_best_is_member(routes):
    best = best_path(routes)
    if routes:
        assert best in routes
    else:
        assert best is None


@given(routes_lists)
def test_rank_is_permutation(routes):
    ranked = rank_routes(routes)
    assert sorted(map(id, ranked)) == sorted(map(id, routes))


@settings(max_examples=200)
@given(routes_lists)
def test_rank_deterministic_under_input_order(routes):
    forward = rank_routes(routes)
    backward = rank_routes(list(reversed(routes)))
    assert [
        (r.learned_from, r.attributes) for r in forward
    ] == [(r.learned_from, r.attributes) for r in backward]


@given(routes_lists)
def test_highest_local_pref_always_wins(routes):
    best = best_path(routes)
    if best is not None:
        top = max(route.attributes.local_pref for route in routes)
        assert best.attributes.local_pref == top


@given(routes_lists)
def test_among_top_local_pref_shortest_path_wins(routes):
    best = best_path(routes)
    if best is None:
        return
    top = max(route.attributes.local_pref for route in routes)
    contenders = [r for r in routes if r.attributes.local_pref == top]
    shortest = min(len(r.attributes.as_path) for r in contenders)
    assert len(best.attributes.as_path) == shortest


# -- differential: the implementation vs a straight-line reference ------------
#
# The reference applies the textbook elimination steps literally, one
# pass per pick, with no sorting cleverness — slow but obviously right.


def _reference_best(routes, always_compare_med=False):
    contenders = list(routes)
    top = max(r.attributes.local_pref for r in contenders)
    contenders = [r for r in contenders if r.attributes.local_pref == top]
    shortest = min(len(r.attributes.as_path) for r in contenders)
    contenders = [r for r in contenders if len(r.attributes.as_path) == shortest]
    lowest_origin = min(int(r.attributes.origin) for r in contenders)
    contenders = [r for r in contenders if int(r.attributes.origin) == lowest_origin]

    def dominated(route):
        return any(
            (
                always_compare_med
                or (
                    other.attributes.as_path.first_as is not None
                    and other.attributes.as_path.first_as
                    == route.attributes.as_path.first_as
                )
            )
            and other.attributes.med < route.attributes.med
            for other in contenders
        )

    contenders = [r for r in contenders if not dominated(r)]
    return min(
        contenders,
        key=lambda r: (
            int(r.attributes.next_hop),
            r.learned_from,
            r.attributes.med,
            r.attributes.as_path.asns,
        ),
    )


def _reference_rank(routes, always_compare_med=False):
    remaining = list(routes)
    ranked = []
    while remaining:
        best = _reference_best(remaining, always_compare_med)
        ranked.append(best)
        remaining.remove(best)
    return ranked


@settings(max_examples=300)
@given(routes_lists, st.booleans())
def test_best_path_matches_reference_decision_process(routes, acm):
    best = best_path(routes, always_compare_med=acm)
    if not routes:
        assert best is None
    else:
        assert best is _reference_best(routes, always_compare_med=acm)


@settings(max_examples=300)
@given(routes_lists, st.booleans())
def test_rank_matches_reference_decision_process(routes, acm):
    ranked = rank_routes(routes, always_compare_med=acm)
    reference = _reference_rank(routes, always_compare_med=acm)
    assert [id(r) for r in ranked] == [id(r) for r in reference]


def _route(peer, first_as, med, next_hop):
    return Route(
        "10.0.0.0/8",
        RouteAttributes(
            as_path=[first_as, 65000], next_hop=next_hop, med=med
        ),
        learned_from=peer,
    )


def test_med_elimination_is_not_adjacent_only():
    """Pinned regression: MED comparison must group by neighbor AS.

    The old implementation compared MED only between sort-adjacent
    routes; B (a different neighbor AS) sorted between A and C masked
    that C MED-dominates A, so A incorrectly ranked first.
    """
    a = _route("A", 100, med=10, next_hop="192.0.2.1")
    b = _route("B", 200, med=0, next_hop="192.0.2.2")
    c = _route("C", 100, med=0, next_hop="192.0.2.3")
    assert best_path([a, b, c]) is b
    assert rank_routes([a, b, c]) == [b, c, a]
    # A stays MED-dominated in every input order.
    for ordering in ([c, b, a], [b, a, c], [a, c, b]):
        assert best_path(ordering) is not a
