"""Property tests for the BGP decision process."""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import Origin, RouteAttributes
from repro.bgp.decision import best_path, rank_routes
from repro.bgp.messages import Route


def route_strategy():
    return st.builds(
        lambda peer, path, nh, lp, med, origin: Route(
            "10.0.0.0/8",
            RouteAttributes(
                as_path=path, next_hop=nh, local_pref=lp, med=med, origin=origin
            ),
            learned_from=peer,
        ),
        peer=st.sampled_from(["A", "B", "C", "D", "E"]),
        path=st.lists(
            st.integers(min_value=64000, max_value=64100), min_size=1, max_size=5
        ),
        nh=st.integers(min_value=1, max_value=1 << 24),
        lp=st.sampled_from([50, 100, 200]),
        med=st.sampled_from([0, 10, 50]),
        origin=st.sampled_from(list(Origin)),
    )


routes_lists = st.lists(route_strategy(), max_size=8)


@given(routes_lists)
def test_best_is_member(routes):
    best = best_path(routes)
    if routes:
        assert best in routes
    else:
        assert best is None


@given(routes_lists)
def test_rank_is_permutation(routes):
    ranked = rank_routes(routes)
    assert sorted(map(id, ranked)) == sorted(map(id, routes))


@settings(max_examples=200)
@given(routes_lists)
def test_rank_deterministic_under_input_order(routes):
    forward = rank_routes(routes)
    backward = rank_routes(list(reversed(routes)))
    assert [
        (r.learned_from, r.attributes) for r in forward
    ] == [(r.learned_from, r.attributes) for r in backward]


@given(routes_lists)
def test_highest_local_pref_always_wins(routes):
    best = best_path(routes)
    if best is not None:
        top = max(route.attributes.local_pref for route in routes)
        assert best.attributes.local_pref == top


@given(routes_lists)
def test_among_top_local_pref_shortest_path_wins(routes):
    best = best_path(routes)
    if best is None:
        return
    top = max(route.attributes.local_pref for route in routes)
    contenders = [r for r in routes if r.attributes.local_pref == top]
    shortest = min(len(r.attributes.as_path) for r in contenders)
    assert len(best.attributes.as_path) == shortest
