"""Trace-validity property: every generated trace obeys the contract.

``validate_trace`` rejects ghost withdrawals, same-burst
self-superseding announcements, and time regressions.  This suite
sweeps the generator knobs and the scenario builders — including
flap-heavy settings and partially-down exchanges — and requires every
produced trace to validate.
"""

import pytest

from repro.workloads.providers import load_fixture
from repro.workloads.scenarios import SCENARIO_KINDS, ScenarioSpec, build_scenario_trace
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace, validate_trace


@pytest.mark.parametrize("seed", [0, 7, 23])
@pytest.mark.parametrize("withdrawal_probability", [0.0, 0.15, 1.0])
def test_generated_traces_validate(seed, withdrawal_probability):
    ixp = generate_ixp(8, 48, seed=seed)
    trace = generate_update_trace(
        ixp,
        bursts=50,
        seed=seed + 1,
        withdrawal_probability=withdrawal_probability,
    )
    validate_trace(ixp, trace.updates)


@pytest.mark.parametrize("seed", [1, 9])
def test_flap_heavy_large_bursts_validate(seed):
    ixp = generate_ixp(12, 80, seed=seed)
    trace = generate_update_trace(
        ixp,
        bursts=40,
        seed=seed,
        active_fraction=1.0,
        burst_small_fraction=0.2,
        burst_tail_max=60,
        withdrawal_probability=0.8,
    )
    validate_trace(ixp, trace.updates)


@pytest.mark.parametrize("down_members", [1, 2])
def test_partially_down_exchange_validates(down_members):
    """Sessions down at trace start never produce ghost withdrawals."""
    ixp = generate_ixp(8, 48, seed=5)
    victims = sorted(
        ixp.announced, key=lambda n: -len(ixp.announced[n])
    )[:down_members]
    down = ixp._replace(
        updates=[u for u in ixp.updates if u.peer not in victims]
    )
    trace = generate_update_trace(
        down, bursts=60, seed=2, active_fraction=1.0, withdrawal_probability=1.0
    )
    validate_trace(down, trace.updates)


@pytest.mark.parametrize("kind", SCENARIO_KINDS)
@pytest.mark.parametrize("seed", [0, 11])
def test_scenario_traces_validate_on_fixture(kind, seed):
    ixp = load_fixture("ixp_small").build()
    trace = build_scenario_trace(ixp, ScenarioSpec("p", kind, seed=seed))
    assert trace.updates
    validate_trace(ixp, trace.updates)


@pytest.mark.parametrize("kind", SCENARIO_KINDS)
def test_scenario_traces_validate_on_synthetic(kind):
    ixp = generate_ixp(10, 60, seed=3)
    trace = build_scenario_trace(ixp, ScenarioSpec("p", kind, seed=4))
    validate_trace(ixp, trace.updates)
