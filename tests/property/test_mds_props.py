"""Property tests for the Minimum Disjoint Subsets computation."""

from hypothesis import given, settings, strategies as st

from repro.core.fec import minimum_disjoint_subsets, minimum_disjoint_subsets_naive

set_families = st.lists(
    st.frozensets(st.integers(min_value=0, max_value=30), max_size=12),
    max_size=8,
)


@given(set_families)
def test_output_partitions_the_union(family):
    groups = minimum_disjoint_subsets(family)
    union = set().union(*family) if family else set()
    covered = set()
    for group in groups:
        assert group, "no empty groups"
        assert not (covered & group), "groups must be pairwise disjoint"
        covered |= group
    assert covered == union


@given(set_families)
def test_groups_never_straddle_input_sets(family):
    """Every group is entirely inside or entirely outside each input set."""
    for group in minimum_disjoint_subsets(family):
        for input_set in family:
            overlap = group & input_set
            assert not overlap or overlap == group


@given(set_families)
def test_groups_are_maximal(family):
    """Elements with identical membership signatures share a group."""
    groups = minimum_disjoint_subsets(family)
    signature = {}
    for element in set().union(*family) if family else set():
        signature[element] = frozenset(
            index for index, s in enumerate(family) if element in s
        )
    group_of = {}
    for index, group in enumerate(groups):
        for element in group:
            group_of[element] = index
    for a in signature:
        for b in signature:
            if signature[a] == signature[b]:
                assert group_of[a] == group_of[b]


@settings(max_examples=60, deadline=None)
@given(set_families)
def test_naive_implementation_agrees(family):
    fast = {frozenset(g) for g in minimum_disjoint_subsets(family)}
    slow = {frozenset(g) for g in minimum_disjoint_subsets_naive(family)}
    assert fast == slow


@given(set_families)
def test_idempotent(family):
    groups = minimum_disjoint_subsets(family)
    again = minimum_disjoint_subsets(groups)
    assert {frozenset(g) for g in groups} == {frozenset(g) for g in again}
