"""Determinism pin: ``REPRO_RUNTIME=inline`` ≡ ``eventloop``, byte for byte.

The event-loop runtime reorders *when* work happens — events queue,
compilation yields at stage and shard boundaries, guard verification of
commit N overlaps compilation of N+1 — but it runs exactly the same
apply bodies at exactly the same points in event order.  These tests
drive identical seeded workloads (synthetic exchange, §6.1 policy mix,
burst-structured update traces) through both modes and assert the flow
tables match at every checkpoint, across serial and parallel execution
backends and with the commit guard on and off.

The one sanctioned divergence is opt-in burst coalescing
(``RuntimeConfig(coalesce=True)``): it collapses a burst's fast-path
work into one deduplicated pass, which changes fast-path sequence
numbers (cookies) and is therefore only *forwarding-equivalent* — but a
full recompile flushes the fast path, so digests reconverge at the next
compilation checkpoint, which is also pinned here.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import build_scenario
from repro.guard import GuardConfig
from repro.pipeline import ParallelBackend
from repro.runtime import RuntimeConfig
from repro.workloads.policy_gen import generate_policies
from repro.workloads.update_gen import generate_update_trace


def _drive(scenario, seed, *, runtime_mode, backend=None, guard=None,
           pipelined=False, runtime_config=None):
    """One fixed workload; returns the digest at every checkpoint."""
    kwargs = {"runtime_mode": runtime_mode}
    if backend is not None:
        kwargs["backend"] = backend
    if guard is not None:
        kwargs["guard"] = guard
    if runtime_config is not None:
        kwargs["runtime_config"] = runtime_config
    controller = scenario.controller(**kwargs)
    digests = [controller.switch.table.content_hash()]

    def burst(updates):
        if pipelined:
            with controller.runtime.pipelined():
                for update in updates:
                    controller.routing.process_update(update)
        else:
            for update in updates:
                controller.routing.process_update(update)

    trace = generate_update_trace(scenario.ixp, bursts=18, seed=seed)
    half = len(trace.updates) // 2
    burst(trace.updates[:half])
    digests.append(controller.switch.table.content_hash())
    controller.run_background_recompilation()
    digests.append(controller.switch.table.content_hash())

    alternate = generate_policies(scenario.ixp, seed=seed + 200)
    for name in list(alternate.policies)[:2]:
        controller.policy.set_policies(name, alternate.policies[name])
    digests.append(controller.switch.table.content_hash())

    burst(trace.updates[half:])
    controller.run_background_recompilation()
    digests.append(controller.switch.table.content_hash())
    return digests


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_eventloop_matches_inline_serial(seed):
    scenario = build_scenario(
        participants=8, prefixes=48, seed=seed, policy_seed=seed + 100
    )
    inline = _drive(scenario, seed + 7, runtime_mode="inline")
    eventloop = _drive(scenario, seed + 7, runtime_mode="eventloop")
    assert eventloop == inline


def test_eventloop_matches_inline_parallel_backend():
    scenario = build_scenario(participants=8, prefixes=48, seed=5, policy_seed=105)
    inline = _drive(
        scenario, 12, runtime_mode="inline", backend=ParallelBackend(processes=2)
    )
    eventloop = _drive(
        scenario, 12, runtime_mode="eventloop", backend=ParallelBackend(processes=2)
    )
    assert eventloop == inline


@pytest.mark.parametrize("seed", [0, 3])
def test_pipelined_burst_matches_inline(seed):
    """Burst mode pipelines ingress/compile/commit/verify yet stays
    byte-identical: events still apply in submission order."""
    scenario = build_scenario(
        participants=8, prefixes=48, seed=seed, policy_seed=seed + 100
    )
    inline = _drive(scenario, seed + 7, runtime_mode="inline")
    burst = _drive(scenario, seed + 7, runtime_mode="eventloop", pipelined=True)
    assert burst == inline


@pytest.mark.parametrize("backend", [None, ParallelBackend(processes=2)],
                         ids=["serial", "parallel"])
def test_deferred_guard_verification_is_side_effect_free(backend):
    """With the guard on, eventloop defers verification past the commit;
    a passing check must leave no trace — digests match inline exactly."""
    scenario = build_scenario(participants=8, prefixes=48, seed=4, policy_seed=104)
    guard = GuardConfig(probe_budget=16, seed=3)
    inline = _drive(scenario, 9, runtime_mode="inline", backend=backend, guard=guard)
    eventloop = _drive(
        scenario, 9, runtime_mode="eventloop", backend=backend, guard=guard,
        pipelined=True,
    )
    assert eventloop == inline


def test_coalesced_burst_reconverges_at_recompile():
    """coalesce=True changes fast-path cookies (not forwarding); a full
    recompile flushes the fast path, so compile checkpoints must agree."""
    scenario = build_scenario(participants=8, prefixes=48, seed=6, policy_seed=106)
    inline = _drive(scenario, 15, runtime_mode="inline")
    coalesced = _drive(
        scenario, 15, runtime_mode="eventloop", pipelined=True,
        runtime_config=RuntimeConfig(coalesce=True),
    )
    # checkpoints: [initial, post-burst, post-compile, post-edit, post-compile]
    assert coalesced[0] == inline[0]
    assert coalesced[2] == inline[2]
    assert coalesced[4] == inline[4]


def test_eventloop_is_self_deterministic():
    """Same seed + trace ⇒ identical digests on repeated eventloop runs."""
    scenario = build_scenario(participants=8, prefixes=48, seed=2, policy_seed=102)
    first = _drive(scenario, 21, runtime_mode="eventloop", pipelined=True)
    second = _drive(scenario, 21, runtime_mode="eventloop", pipelined=True)
    assert first == second
