"""Golden equivalence: staged pipeline vs the monolithic compiler.

The staged pipeline (``repro.pipeline``) caches per-participant shard
blocks and reconciles VNHs across compilations, so its output is only
correct if it stays *byte-identical* to what the legacy single-shot
``SDXCompiler.compile`` would produce from the same inputs.  These
tests drive randomized workloads (synthetic exchange + §6.1 policy mix
+ burst-structured update traces) through a live controller and, after
every compilation point, replay the controller's current state through
the monolithic compiler.

The only free variable between the two is VNH assignment: the pipeline
reuses allocations for surviving prefix-set keys while a fresh legacy
compile would number them sequentially.  The ``_ReplayAllocator``
oracle closes that gap — it feeds the legacy compile exactly the
(VNH, VMAC) pairs the pipeline assigned, in group order, which is the
same order ``compute_fec_table`` allocates in.  With the allocator
pinned, every other byte must match.
"""

from __future__ import annotations

import pytest

from repro.core.controller import SDXController
from repro.experiments.common import build_scenario
from repro.pipeline import ParallelBackend, ShuffledSerialBackend
from repro.workloads.policy_gen import generate_policies
from repro.workloads.update_gen import generate_update_trace


class _ReplayAllocator:
    """Feeds the legacy compile the pipeline's exact VNH assignments.

    ``compute_fec_table`` allocates one (VNH, VMAC) pair per bucket, in
    sorted-bucket order — the same order the pipeline's FEC table lists
    its groups.  Replaying ``[g.vnh for g in groups]`` therefore makes
    the fresh legacy compile reproduce the pipeline's incremental
    allocation decisions exactly.
    """

    def __init__(self, pairs):
        self._pairs = list(pairs)
        self._cursor = 0

    def allocate(self):
        if self._cursor >= len(self._pairs):
            raise AssertionError(
                "legacy compile allocated more VNHs than the pipeline did"
            )
        pair = self._pairs[self._cursor]
        self._cursor += 1
        return pair

    def release(self, address):  # pragma: no cover - legacy compile never releases
        pass

    @property
    def exhausted(self) -> bool:
        return self._cursor == len(self._pairs)


def _assert_matches_legacy(controller: SDXController) -> None:
    """The controller's last result must equal a fresh monolithic compile."""
    result = controller.last_compilation
    assert result is not None
    replay = _ReplayAllocator(group.vnh for group in result.fec_table.groups)
    live = {
        name: policy_set
        for name, policy_set in controller.policy.policies().items()
        if name not in controller.ops.quarantined()
    }
    expected = controller.compiler.compile(
        live,
        originated=controller.routing.originated(),
        allocator=replay,
        chains=list(controller.policy.chains().values()),
    )
    assert replay.exhausted, "pipeline kept VNHs the legacy compile never assigned"
    assert expected.classifier == result.classifier
    assert expected.stage1 == result.stage1
    assert expected.segments == result.segments
    assert expected.advertised_next_hops == result.advertised_next_hops


def _churn(controller: SDXController, scenario, seed: int) -> None:
    """One randomized round of BGP bursts + policy edits + a recompile."""
    trace = generate_update_trace(scenario.ixp, bursts=25, seed=seed)
    half = len(trace.updates) // 2
    with controller.routing.batched_updates():
        for update in trace.updates[:half]:
            controller.routing.process_update(update)
    controller.run_background_recompilation()
    _assert_matches_legacy(controller)

    alternate = generate_policies(scenario.ixp, seed=seed + 200)
    edited = [name for name in alternate.policies][:2]
    with controller.deferred_recompilation():
        for name in edited:
            controller.policy.set_policies(name, alternate.policies[name])
    _assert_matches_legacy(controller)

    with controller.routing.batched_updates():
        for update in trace.updates[half:]:
            controller.routing.process_update(update)
    controller.run_background_recompilation()
    _assert_matches_legacy(controller)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pipeline_matches_legacy_compiler_serial(seed):
    scenario = build_scenario(
        participants=8, prefixes=48, seed=seed, policy_seed=seed + 100
    )
    controller = scenario.controller()
    _assert_matches_legacy(controller)
    _churn(controller, scenario, seed=seed + 7)


def test_pipeline_matches_legacy_compiler_parallel():
    scenario = build_scenario(participants=8, prefixes=48, seed=5, policy_seed=105)
    controller = scenario.controller(backend=ParallelBackend(processes=2))
    _assert_matches_legacy(controller)
    _churn(controller, scenario, seed=12)


def _scripted_run(scenario, backend):
    """Drive one fixed input sequence; return every observable checkpoint."""
    controller = scenario.controller(backend=backend)
    hashes = [controller.switch.table.content_hash()]
    trace = generate_update_trace(scenario.ixp, bursts=20, seed=31)
    with controller.routing.batched_updates():
        for update in trace.updates:
            controller.routing.process_update(update)
    controller.run_background_recompilation()
    hashes.append(controller.switch.table.content_hash())
    alternate = generate_policies(scenario.ixp, seed=231)
    with controller.deferred_recompilation():
        for name in list(alternate.policies)[:3]:
            controller.policy.set_policies(name, alternate.policies[name])
    hashes.append(controller.switch.table.content_hash())
    return hashes


def test_flow_table_deterministic_across_backends():
    """Same inputs -> identical flow table, whatever runs the shards.

    The serial backend is the reference; shuffled backends randomize
    shard *execution* order and the fork pool randomizes *completion*
    order, so agreement here means assembly depends only on the
    submission order, never on scheduling.
    """
    scenario = build_scenario(participants=8, prefixes=48, seed=9, policy_seed=109)
    reference = _scripted_run(scenario, backend=None)
    for backend in (
        ShuffledSerialBackend(seed=3),
        ShuffledSerialBackend(seed=99),
        ParallelBackend(processes=2),
        ParallelBackend(processes=4),
    ):
        assert _scripted_run(scenario, backend=backend) == reference
