"""Property tests for IPv4 prefix algebra."""

from hypothesis import given, strategies as st

from repro.netutils.ip import IPv4Address, IPv4Prefix

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)
prefixes = st.tuples(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
).map(lambda t: IPv4Prefix(t[0], t[1]))


@given(addresses)
def test_string_round_trip(address):
    assert IPv4Address(str(address)) == address


@given(prefixes)
def test_prefix_string_round_trip(pfx):
    assert IPv4Prefix(str(pfx)) == pfx


@given(prefixes)
def test_prefix_contains_itself_and_its_bounds(pfx):
    assert pfx.contains(pfx)
    assert pfx.network in pfx
    assert pfx.broadcast in pfx


@given(prefixes, prefixes)
def test_containment_matches_membership(a, b):
    """a ⊇ b iff every address of b is in a (checked on b's endpoints)."""
    if a.contains(b):
        assert b.network in a and b.broadcast in a
    else:
        assert b.network not in a or b.broadcast not in a or b.length < a.length


@given(prefixes, prefixes)
def test_overlap_is_symmetric_and_matches_intersection(a, b):
    assert a.overlaps(b) == b.overlaps(a)
    assert (a.intersection(b) is not None) == a.overlaps(b)


@given(prefixes, prefixes)
def test_intersection_is_the_finer_prefix(a, b):
    overlap = a.intersection(b)
    if overlap is not None:
        assert overlap in (a, b)
        assert a.contains(overlap) and b.contains(overlap)


@given(prefixes, addresses)
def test_membership_equivalent_to_host_prefix_containment(pfx, address):
    assert (address in pfx) == pfx.contains(address.to_prefix())


@given(prefixes)
def test_subnet_split_partitions(pfx):
    if pfx.length <= 30:
        children = list(pfx.subnets(min(pfx.length + 2, 32)))
        total = sum(child.num_addresses for child in children)
        assert total == pfx.num_addresses
        for child in children:
            assert pfx.contains(child)


@given(prefixes)
def test_supernet_contains(pfx):
    if pfx.length > 0:
        assert pfx.supernet().contains(pfx)
