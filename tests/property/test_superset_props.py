"""Property tests pinning the superset VMAC bit-budget invariants.

The encoding promises: every attribute field fits the 48-bit MAC with
nothing left over, encoded VMACs are pairwise distinct (the bijection
the ARP responder depends on), and neither encoded nor spilled VMACs
can ever collide with participant interface MACs or each other's
blocks.
"""

from hypothesis import given, settings, strategies as st

from repro.core import supersets as ss
from repro.core.supersets import SupersetEncoder
from repro.netutils.mac import MACAllocator

NAMES = [f"as{i:02d}" for i in range(20)]

member_sets = st.frozensets(st.sampled_from(NAMES), min_size=1, max_size=14)
classes = st.lists(
    st.tuples(member_sets, st.none() | st.sampled_from(NAMES)),
    min_size=1,
    max_size=40,
)


def test_attribute_fields_fill_exactly_48_bits():
    assert (
        8 + ss.SUPERSET_BITS + ss.POSITION_BITS + ss.NEXTHOP_BITS + ss.SERIAL_BITS
        == 48
    )


@given(classes)
def test_vmacs_stay_in_48_bits_and_never_collide(family):
    encoder = SupersetEncoder()
    issued = [encoder.encode(members, nexthop) for members, nexthop in family]
    values = [int(vmac) for vmac in issued]
    assert all(0 <= value < (1 << 48) for value in values)
    assert len(set(values)) == len(values), "VNH<->VMAC bijection broken"


@given(classes)
def test_no_collision_with_physical_or_fec_blocks(family):
    encoder = SupersetEncoder()
    for members, nexthop in family:
        vmac = encoder.encode(members, nexthop)
        top_octet = int(vmac) >> 40
        # locally administered, never a real interface's block
        assert top_octet & 0x02
        if encoder.is_superset_vmac(vmac):
            assert top_octet == ss.MARKER_OCTET
        else:
            # spilled classes live in the per-FEC fallback block
            assert top_octet != ss.MARKER_OCTET
            assert int(vmac) >> 32 == 0x02A5


@given(classes)
def test_decode_recovers_members_and_masks_agree(family):
    encoder = SupersetEncoder()
    for members, nexthop in family:
        vmac = encoder.encode(members, nexthop)
        encoding = encoder.decode(vmac)
        if encoding is None:
            assert len(members) > ss.POSITION_BITS or encoder.spills
            continue
        roster = encoder.members_of(encoding.superset_id)
        carried = {
            roster[position]
            for position in range(ss.POSITION_BITS)
            if (encoding.position_mask >> position) & 1
        }
        assert carried == members
        # the policy matcher for every member selects this VMAC ...
        for name in members:
            position = encoder.position_of(encoding.superset_id, name)
            assert encoder.policy_match(encoding.superset_id, position).matches(vmac)
        # ... and for hosted non-members it never does
        for name in set(roster) - members:
            position = encoder.position_of(encoding.superset_id, name)
            assert not encoder.policy_match(encoding.superset_id, position).matches(
                vmac
            )
        if nexthop is not None:
            assert encoder.nexthop_match(nexthop).matches(vmac)


@given(classes)
def test_superset_ids_and_positions_respect_budget(family):
    encoder = SupersetEncoder()
    for members, nexthop in family:
        encoder.encode(members, nexthop)
    assert encoder.superset_count <= ss.MAX_SUPERSETS
    for superset_id in range(encoder.superset_count):
        roster = encoder.members_of(superset_id)
        assert len(roster) <= ss.POSITION_BITS
        for name in roster:
            position = encoder.position_of(superset_id, name)
            assert 0 <= position < ss.POSITION_BITS


@settings(max_examples=25, deadline=None)
@given(classes)
def test_spilled_vmacs_unique_even_with_shared_fallback(family):
    fallback = MACAllocator()
    encoder = SupersetEncoder(fallback=fallback)
    issued = [int(encoder.encode(members, nexthop)) for members, nexthop in family]
    direct = [int(fallback.allocate()) for _ in range(8)]
    combined = issued + direct
    assert len(set(combined)) == len(combined)
