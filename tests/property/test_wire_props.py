"""Property tests: BGP wire encoding round-trips exactly."""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import Community, Origin, RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.bgp.wire import decode_message, encode_update
from repro.netutils.ip import IPv4Prefix

prefixes = st.tuples(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
).map(lambda t: IPv4Prefix(t[0], t[1]))

attributes = st.builds(
    RouteAttributes,
    as_path=st.lists(st.integers(min_value=1, max_value=(1 << 32) - 1), min_size=1, max_size=6),
    next_hop=st.integers(min_value=0, max_value=(1 << 32) - 1),
    origin=st.sampled_from(list(Origin)),
    med=st.integers(min_value=0, max_value=(1 << 32) - 1),
    local_pref=st.integers(min_value=0, max_value=(1 << 32) - 1),
    communities=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=65535),
            st.integers(min_value=0, max_value=65535),
        ).map(lambda t: Community(*t)),
        max_size=4,
    ),
)

updates = st.builds(
    BGPUpdate,
    peer=st.just("B"),
    announced=st.lists(
        st.builds(Announcement, prefix=prefixes, attributes=attributes), max_size=4
    ),
    withdrawn=st.lists(st.builds(Withdrawal, prefix=prefixes), max_size=4, unique_by=str),
)


def _decode_all(messages, peer="B"):
    announced, withdrawn = [], []
    for wire in messages:
        decoded, rest = decode_message(wire, peer=peer)
        assert rest == b""
        announced.extend(decoded.announced)
        withdrawn.extend(decoded.withdrawn)
    return announced, withdrawn


@settings(max_examples=300, deadline=None)
@given(updates)
def test_update_round_trip(update):
    from collections import Counter

    announced, withdrawn = _decode_all(encode_update(update))
    # announcements round-trip up to message-packing order (multiset
    # equality); the wire has no export_to, which is None on both sides
    assert Counter(announced) == Counter(update.announced)
    assert Counter(withdrawn) == Counter(update.withdrawn)


@settings(max_examples=100, deadline=None)
@given(st.lists(updates, max_size=3))
def test_concatenated_stream_decodes(stream):
    wire = b"".join(b"".join(encode_update(u)) for u in stream)
    count = 0
    while wire:
        _, wire = decode_message(wire, peer="B")
        count += 1
    expected = sum(max(1, len(_grouped(u))) for u in stream)
    assert count == expected


def _grouped(update):
    groups = []
    for announcement in update.announced:
        for attributes, members in groups:
            if attributes == announcement.attributes:
                members.append(announcement.prefix)
                break
        else:
            groups.append((announcement.attributes, [announcement.prefix]))
    return groups
