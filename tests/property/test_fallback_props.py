"""Property test: ``with_fallback`` implements the if-claimed semantics.

For arbitrary primary/fallback classifiers and packets:

* if the packet matches any non-drop rule of the primary ("claimed"),
  the combined classifier returns exactly the primary's verdict;
* otherwise it returns the fallback's verdict.
"""

from hypothesis import given, settings, strategies as st

from repro.policy import Packet, with_fallback
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule

DSTPORTS = (80, 443, 22)
SRCPORTS = (1, 2)
MACS = ("02:00:00:00:00:01", "02:00:00:00:00:02")

matches = st.fixed_dictionaries(
    {},
    optional={
        "dstport": st.sampled_from(DSTPORTS),
        "srcport": st.sampled_from(SRCPORTS),
        "dstmac": st.sampled_from(MACS),
    },
).map(lambda kw: HeaderMatch(**kw))

actions = st.one_of(
    st.just(frozenset()),  # drop rule
    st.sampled_from(["B", "C", "B1"]).map(lambda p: frozenset({Action(port=p)})),
)

classifiers = st.lists(
    st.tuples(matches, actions).map(lambda t: Rule(t[0], t[1])), max_size=6
).map(Classifier)

packets = st.builds(
    Packet,
    dstport=st.sampled_from(DSTPORTS),
    srcport=st.sampled_from(SRCPORTS),
    dstmac=st.sampled_from(MACS),
)


def claimed(classifier, packet):
    return any(
        not rule.is_drop and rule.match.matches(packet) for rule in classifier.rules
    )


@settings(max_examples=400, deadline=None)
@given(classifiers, classifiers, packets)
def test_fallback_semantics(primary, fallback, packet):
    combined = with_fallback(primary, fallback)
    if claimed(primary, packet):
        assert combined.eval(packet) == primary.eval(packet)
    else:
        assert combined.eval(packet) == fallback.eval(packet)
