"""The central policy-language property: compiling preserves semantics.

For random policy ASTs and random packets, interpreting the AST
directly (``policy.eval``) and running the compiled rule table
(``policy.compile().eval``) must produce identical packet sets.  This
is the invariant the whole SDX compilation pipeline rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.policy import (
    Packet,
    drop,
    false_,
    fwd,
    identity,
    if_,
    match,
    modify,
    true_,
)
from repro.policy.language import Filter

PORTS = ("A1", "B1", "C1", "B", "C")
DSTPORTS = (80, 443, 22)
SRCPORTS = (1000, 2000)
PREFIXES = ("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8")
ADDRESSES = ("10.0.0.1", "10.1.2.3", "11.5.5.5", "192.168.1.1")

match_kwargs = st.fixed_dictionaries(
    {},
    optional={
        "dstport": st.sampled_from(DSTPORTS),
        "srcport": st.sampled_from(SRCPORTS),
        "dstip": st.sampled_from(PREFIXES),
        "srcip": st.sampled_from(PREFIXES),
        "port": st.sampled_from(PORTS),
    },
)

atomic_filters = st.one_of(
    st.just(true_),
    st.just(false_),
    match_kwargs.map(lambda kw: match(**kw)),
)


def _combine_filters(children):
    left, right = children
    return left & right


filters = st.recursive(
    atomic_filters,
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda p: p[0] & p[1]),
        st.tuples(inner, inner).map(lambda p: p[0] | p[1]),
        inner.map(lambda p: ~p),
    ),
    max_leaves=6,
)

atomic_policies = st.one_of(
    st.just(identity),
    st.just(drop),
    st.sampled_from(PORTS).map(fwd),
    st.sampled_from(ADDRESSES).map(lambda a: modify(dstip=a)),
    st.sampled_from(DSTPORTS).map(lambda p: modify(dstport=p)),
    atomic_filters,
)

policies = st.recursive(
    atomic_policies,
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda p: p[0] >> p[1]),
        st.tuples(inner, inner).map(lambda p: p[0] + p[1]),
        st.tuples(filters, inner, inner).map(lambda t: if_(t[0], t[1], t[2])),
    ),
    max_leaves=8,
)

packets = st.builds(
    Packet,
    dstport=st.sampled_from(DSTPORTS + (8080,)),
    srcport=st.sampled_from(SRCPORTS + (3000,)),
    dstip=st.sampled_from(ADDRESSES),
    srcip=st.sampled_from(ADDRESSES),
    port=st.sampled_from(PORTS),
)


@settings(max_examples=300, deadline=None)
@given(policies, packets)
def test_compiled_classifier_matches_interpreter(policy, packet):
    assert policy.compile().eval(packet) == policy.eval(packet)


@settings(max_examples=150, deadline=None)
@given(filters, packets)
def test_filter_semantics(predicate, packet):
    expected = frozenset((packet,)) if predicate.test(packet) else frozenset()
    assert predicate.eval(packet) == expected
    assert predicate.compile().eval(packet) == expected


@settings(max_examples=150, deadline=None)
@given(policies, policies, packets)
def test_parallel_composition_is_union(left, right, packet):
    combined = (left + right).eval(packet)
    assert combined == left.eval(packet) | right.eval(packet)


@settings(max_examples=150, deadline=None)
@given(policies, policies, packets)
def test_sequential_composition_is_pipeline(left, right, packet):
    expected = frozenset(
        out for intermediate in left.eval(packet) for out in right.eval(intermediate)
    )
    assert (left >> right).eval(packet) == expected


@settings(max_examples=100, deadline=None)
@given(filters, policies, policies, packets)
def test_if_equals_desugared_form(predicate, then, otherwise, packet):
    sugar = if_(predicate, then, otherwise).eval(packet)
    desugared = ((predicate >> then) + (~predicate >> otherwise)).eval(packet)
    assert sugar == desugared


@settings(max_examples=100, deadline=None)
@given(policies, packets)
def test_optimization_preserves_semantics(policy, packet):
    compiled = policy.compile()
    assert compiled.optimized().eval(packet) == compiled.eval(packet)


@settings(max_examples=100, deadline=None)
@given(filters, packets)
def test_negation_is_complement(predicate, packet):
    assert predicate.test(packet) != (~predicate).test(packet)
