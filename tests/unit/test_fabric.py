"""Unit tests for the fabric and hosts."""

import pytest

from repro.dataplane.fabric import Endpoint, Fabric, Host
from repro.dataplane.switch import Node, SDNSwitch
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.policy.packet import Packet


class _Repeater(Node):
    """Forwards everything from port 'in' to port 'out'."""

    def ports(self):
        return frozenset({"in", "out"})

    def receive(self, packet, in_port):
        if in_port == "in":
            return [("out", packet)]
        return []


class _Loop(Node):
    """Bounces packets back and forth forever."""

    def ports(self):
        return frozenset({"p"})

    def receive(self, packet, in_port):
        return [("p", packet)]


class TestTopology:
    def test_duplicate_node_rejected(self):
        fabric = Fabric()
        fabric.add_node(Host("h", "10.0.0.1", "02:de:00:00:00:01"))
        with pytest.raises(ValueError):
            fabric.add_node(Host("h", "10.0.0.2", "02:de:00:00:00:02"))

    def test_link_validates_nodes_and_ports(self):
        fabric = Fabric()
        fabric.add_node(Host("h1", "10.0.0.1", "02:de:00:00:00:01"))
        fabric.add_node(Host("h2", "10.0.0.2", "02:de:00:00:00:02"))
        with pytest.raises(ValueError):
            fabric.link(("h1", "eth0"), ("nowhere", "eth0"))
        with pytest.raises(ValueError):
            fabric.link(("h1", "eth9"), ("h2", "eth0"))
        fabric.link(("h1", "eth0"), ("h2", "eth0"))
        with pytest.raises(ValueError):
            fabric.link(("h1", "eth0"), ("h2", "eth0"))

    def test_peer_lookup(self):
        fabric = Fabric()
        fabric.add_node(Host("h1", "10.0.0.1", "02:de:00:00:00:01"))
        fabric.add_node(Host("h2", "10.0.0.2", "02:de:00:00:00:02"))
        fabric.link(("h1", "eth0"), ("h2", "eth0"))
        assert fabric.peer(("h1", "eth0")) == Endpoint("h2", "eth0")
        assert fabric.peer(("h2", "eth0")) == Endpoint("h1", "eth0")


class TestDelivery:
    def build_chain(self):
        fabric = Fabric()
        sender = fabric.add_node(Host("sender", "10.0.0.1", "02:de:00:00:00:01"))
        repeater = fabric.add_node(_Repeater("mid"))
        receiver = fabric.add_node(Host("receiver", "10.0.0.2", "02:de:00:00:00:02"))
        fabric.link(("sender", "eth0"), ("mid", "in"))
        fabric.link(("mid", "out"), ("receiver", "eth0"))
        return fabric, sender, receiver

    def test_end_to_end_delivery(self):
        fabric, sender, receiver = self.build_chain()
        packet = sender.build_packet(dstip="10.0.0.2")
        hops = fabric.send_from("sender", "eth0", packet)
        assert hops == 2
        assert receiver.received == [packet]

    def test_link_counters(self):
        fabric, sender, receiver = self.build_chain()
        fabric.send_from("sender", "eth0", sender.build_packet(dstip="10.0.0.2"))
        assert fabric.traffic_on(("sender", "eth0"), ("mid", "in")) == 1
        assert fabric.traffic_on(("mid", "out"), ("receiver", "eth0")) == 1
        fabric.reset_counters()
        assert fabric.traffic_on(("sender", "eth0"), ("mid", "in")) == 0

    def test_unlinked_port_drops(self):
        fabric = Fabric()
        fabric.add_node(Host("h", "10.0.0.1", "02:de:00:00:00:01"))
        assert fabric.send_from("h", "eth0", Packet(dstip="10.0.0.2")) == 0
        assert fabric.dropped_unlinked == 1

    def test_hop_limit_stops_loops(self):
        fabric = Fabric()
        fabric.add_node(_Loop("l1"))
        fabric.add_node(_Loop("l2"))
        fabric.link(("l1", "p"), ("l2", "p"))
        fabric.send_from("l1", "p", Packet(dstip="10.0.0.1"))
        assert fabric.hop_limit_drops == 1

    def test_inject_runs_node_logic(self):
        fabric, sender, receiver = self.build_chain()
        packet = Packet(srcip="10.0.0.1", dstip="10.0.0.2")
        hops = fabric.inject("mid", "in", packet)
        assert hops == 1
        assert receiver.received == [packet]


class TestHost:
    def test_records_only_own_traffic(self):
        host = Host("h", "10.0.0.1", "02:de:00:00:00:01")
        host.receive(Packet(dstip="10.0.0.1"), "eth0")
        host.receive(Packet(dstip="10.0.0.9"), "eth0")
        assert len(host.received) == 1

    def test_promiscuous_records_everything(self):
        host = Host("h", "10.0.0.1", "02:de:00:00:00:01", promiscuous=True)
        host.receive(Packet(dstip="10.0.0.9"), "eth0")
        assert len(host.received) == 1

    def test_build_packet_prefills_source(self):
        host = Host("h", "10.0.0.1", "02:de:00:00:00:01")
        packet = host.build_packet(dstip="10.0.0.2", dstport=80)
        assert str(packet["srcip"]) == "10.0.0.1"
        assert packet["srcmac"] == host.hardware
        assert packet["dstport"] == 80
