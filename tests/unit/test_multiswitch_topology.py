"""Unit tests for the multi-switch topology model."""

import pytest

from repro.core.multiswitch import SwitchTopology


def triangle():
    return SwitchTopology(
        switches={"s1": ["A1"], "s2": ["B1"], "s3": ["C1"]},
        links=[
            (("s1", "u12"), ("s2", "u21")),
            (("s2", "u23"), ("s3", "u32")),
            (("s3", "u31"), ("s1", "u13")),
        ],
    )


class TestConstruction:
    def test_requires_a_switch(self):
        with pytest.raises(ValueError):
            SwitchTopology(switches={})

    def test_duplicate_edge_ports_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology(switches={"s1": ["A1"], "s2": ["A1"]})

    def test_uplink_colliding_with_edge_port_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology(
                switches={"s1": ["A1"], "s2": ["B1"]},
                links=[(("s1", "A1"), ("s2", "u"))],
            )

    def test_unknown_switch_in_link_rejected(self):
        with pytest.raises(ValueError):
            SwitchTopology(
                switches={"s1": ["A1"]},
                links=[(("s1", "u"), ("sX", "u"))],
            )


class TestQueries:
    def test_owner_of(self):
        topology = triangle()
        assert topology.owner_of("B1") == "s2"
        assert topology.owner_of("Z9") is None

    def test_uplink_ports(self):
        topology = triangle()
        assert topology.uplink_ports("s1") == {"u12", "u13"}

    def test_next_hop_direct(self):
        topology = triangle()
        assert topology.next_hop_port("s1", "s2") == "u12"
        assert topology.next_hop_port("s2", "s1") == "u21"

    def test_next_hop_to_self_is_none(self):
        assert triangle().next_hop_port("s1", "s1") is None

    def test_next_hop_multi_hop_chain(self):
        line = SwitchTopology(
            switches={"s1": ["A1"], "s2": ["B1"], "s3": ["C1"]},
            links=[
                (("s1", "u12"), ("s2", "u21")),
                (("s2", "u23"), ("s3", "u32")),
            ],
        )
        assert line.next_hop_port("s1", "s3") == "u12"
        assert line.next_hop_port("s3", "s1") == "u32"

    def test_unreachable_returns_none(self):
        disconnected = SwitchTopology(switches={"s1": ["A1"], "s2": ["B1"]})
        assert disconnected.next_hop_port("s1", "s2") is None
