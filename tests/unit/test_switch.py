"""Unit tests for the SDN switch and the learning switch baseline."""

from repro.dataplane.switch import LearningSwitch, SDNSwitch
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.policy.packet import Packet


class TestSDNSwitch:
    def make(self):
        switch = SDNSwitch("sw", ports=["A1", "B1"])
        switch.table.install_classifier(
            Classifier(
                [
                    Rule(HeaderMatch(port="A1", dstport=80), (Action(port="B1"),)),
                ]
            )
        )
        return switch

    def test_forwarding(self):
        switch = self.make()
        out = switch.receive(Packet(dstport=80), "A1")
        assert len(out) == 1
        port, packet = out[0]
        assert port == "B1" and packet["port"] == "B1"

    def test_switch_field_not_leaked(self):
        switch = self.make()
        ((_, packet),) = switch.receive(Packet(dstport=80), "A1")
        assert "switch" not in packet

    def test_drop_counted(self):
        switch = self.make()
        assert switch.receive(Packet(dstport=22), "A1") == []
        assert switch.dropped == 1 and switch.received == 1

    def test_output_to_unknown_port_dropped(self):
        switch = SDNSwitch("sw", ports=["A1"])
        switch.table.install_classifier(
            Classifier([Rule(HeaderMatch.ANY, (Action(port="nowhere"),))])
        )
        assert switch.receive(Packet(dstport=80), "A1") == []

    def test_multicast_output(self):
        switch = SDNSwitch("sw", ports=["A1", "B1", "C1"])
        switch.table.install_classifier(
            Classifier(
                [Rule(HeaderMatch.ANY, (Action(port="B1"), Action(port="C1")))]
            )
        )
        out = switch.receive(Packet(dstport=80), "A1")
        assert {port for port, _ in out} == {"B1", "C1"}

    def test_add_port(self):
        switch = SDNSwitch("sw")
        switch.add_port("X1")
        assert "X1" in switch.ports()


class TestLearningSwitch:
    def test_floods_unknown_destination(self):
        switch = LearningSwitch("lan", ports=["p1", "p2", "p3"])
        out = switch.receive(
            Packet(srcmac="02:00:00:00:00:01", dstmac="02:00:00:00:00:02"), "p1"
        )
        assert {port for port, _ in out} == {"p2", "p3"}
        assert switch.floods == 1

    def test_learns_source_port(self):
        switch = LearningSwitch("lan", ports=["p1", "p2", "p3"])
        switch.receive(Packet(srcmac="02:00:00:00:00:01", dstmac="02:00:00:00:00:02"), "p1")
        out = switch.receive(
            Packet(srcmac="02:00:00:00:00:02", dstmac="02:00:00:00:00:01"), "p2"
        )
        assert out == [("p1", out[0][1])]
        from repro.netutils.mac import MACAddress
        assert switch.mac_table[MACAddress("02:00:00:00:00:01")] == "p1"

    def test_no_hairpin(self):
        switch = LearningSwitch("lan", ports=["p1", "p2"])
        switch.receive(Packet(srcmac="02:00:00:00:00:01", dstmac="02:00:00:00:00:09"), "p1")
        out = switch.receive(
            Packet(srcmac="02:00:00:00:00:03", dstmac="02:00:00:00:00:01"), "p1"
        )
        assert out == []
