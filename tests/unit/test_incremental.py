"""Unit tests for the fast-path incremental compiler."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.incremental import FASTPATH_BASE_PRIORITY
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet

from tests.conftest import P1, P2, P3, P4, P5


def tagged_packet(controller, sender_port, dst_prefix, dstip, **headers):
    """Build a packet carrying the dstmac the sender's router would apply."""
    sender = controller.config.owner_of_port(sender_port).name
    (announcement,) = [
        a
        for a in controller.advertisements(sender)
        if a.prefix == IPv4Prefix(dst_prefix)
    ]
    next_hop = announcement.attributes.next_hop
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    return Packet(dstip=dstip, dstmac=vmac, port=sender_port, **headers)


class TestFastPath:
    def test_single_update_installs_high_priority_block(self, figure1_compiled):
        controller = figure1_compiled
        base_rules = controller.table_size()
        controller.routing.withdraw("C", P1)
        (entry,) = controller.ops.fast_path_log
        assert entry.rules_installed > 0
        assert controller.table_size() == base_rules + entry.rules_installed
        fast_rules = [
            rule
            for rule in controller.switch.table
            if rule.priority >= FASTPATH_BASE_PRIORITY
        ]
        assert len(fast_rules) == entry.rules_installed

    def test_fast_path_rules_steer_traffic_correctly(self, figure1_compiled):
        controller = figure1_compiled
        # Before: A's HTTP to p1 diverts via B (policy).  Withdraw B's p1:
        # the policy filter no longer allows B, so HTTP follows default to C.
        controller.routing.withdraw("B", P1)
        packet = tagged_packet(
            controller, "A1", P1, "10.1.2.3", dstport=80, srcport=7, srcip="50.0.0.1"
        )
        out = controller.switch.receive(packet, "A1")
        assert len(out) == 1 and out[0][0] == "C1"

    def test_withdrawal_of_only_route_uninstalls(self, figure1_compiled):
        controller = figure1_compiled
        controller.routing.withdraw("A", P5)
        (entry,) = controller.ops.fast_path_log
        assert entry.vnh is None and entry.rules_installed == 0
        assert P5 not in {str(p) for p in controller.fast_path.active_prefixes}

    def test_repeated_updates_replace_block(self, figure1_compiled):
        controller = figure1_compiled

        def attrs(asns, next_hop):
            return RouteAttributes(as_path=asns, next_hop=next_hop)

        controller.routing.announce("C", P1, attrs([65003, 65100], "172.0.0.21"))
        first_size = controller.table_size()
        controller.routing.announce("C", P1, attrs([65100], "172.0.0.21"))
        # the old block for P1 was removed before the new one installed
        assert len(controller.fast_path.active_prefixes) == 1
        assert controller.table_size() <= first_size + 4

    def test_fast_path_readvertises_new_vnh(self, figure1_compiled):
        controller = figure1_compiled
        before = {
            a.prefix: a.attributes.next_hop for a in controller.advertisements("A")
        }
        controller.routing.withdraw("C", P1)
        after = {
            a.prefix: a.attributes.next_hop for a in controller.advertisements("A")
        }
        assert after[IPv4Prefix(P1)] != before[IPv4Prefix(P1)]
        assert controller.arp.resolve(after[IPv4Prefix(P1)]) is not None

    def test_additional_rules_metric(self, figure1_compiled):
        controller = figure1_compiled
        assert controller.fast_path.additional_rules() == 0
        controller.routing.withdraw("C", P1)
        assert controller.fast_path.additional_rules() > 0

    def test_additional_rules_matches_table_scan_and_running_count(
        self, figure1_compiled
    ):
        controller = figure1_compiled
        controller.routing.withdraw("C", P1)
        controller.routing.withdraw("B", P3)
        engine = controller.fast_path
        fastpath_rules = [
            rule
            for rule in controller.switch.table
            if isinstance(rule.cookie, tuple) and rule.cookie[0] == "fastpath"
        ]
        assert engine.additional_rules() == len(fastpath_rules)
        # the engine's O(1) running count (what Figure 9 reads through
        # the gauge) agrees with the authoritative table scan
        assert engine._extra_rules == len(fastpath_rules)

    def test_superseded_vnh_is_released(self, figure1_compiled):
        controller = figure1_compiled
        controller.routing.withdraw("C", P1)
        footprint = controller.allocator.allocated
        for index in range(8):  # repeated flaps replace P1's block in place
            controller.routing.announce(
                "C",
                P1,
                RouteAttributes(
                    as_path=[65100 + index % 2, 65100], next_hop="172.0.0.21"
                ),
            )
        assert controller.allocator.allocated == footprint
        assert controller.allocator.released_total >= 8

    def test_fastpath_seconds_follow_sim_clock_when_resilient(
        self, figure1_compiled
    ):
        from repro.sim.clock import Simulator

        controller = figure1_compiled
        controller.enable_resilience(clock=Simulator(start=100.0))
        controller.routing.withdraw("C", P1)
        (entry,) = controller.ops.fast_path_log
        # on the sim time base, handling is instantaneous: no wall-clock
        # jitter leaks into simulated measurements
        assert entry.seconds == 0.0
        assert controller.telemetry.now() == 100.0

    def test_fastpath_latency_lands_in_telemetry(self, figure1_compiled):
        controller = figure1_compiled
        controller.routing.withdraw("C", P1)
        histogram = controller.telemetry.get("sdx_fastpath_seconds")
        assert histogram.count() == len(controller.ops.fast_path_log)
        assert histogram.samples() == [
            entry.seconds for entry in controller.ops.fast_path_log
        ]

    def test_flush_removes_blocks(self, figure1_compiled):
        controller = figure1_compiled
        controller.routing.withdraw("C", P1)
        removed = controller.fast_path.flush()
        assert removed > 0
        assert controller.fast_path.additional_rules() == 0

    def test_inbound_policy_applies_to_fast_path_traffic(self, figure1_compiled):
        controller = figure1_compiled
        # Flip best path for p3 (currently via B) by shortening C's path;
        # default for p3 then goes to C.  B's inbound TE must still apply
        # to policy-diverted HTTP traffic toward the new VMAC.
        controller.routing.announce(
            "C", P3, RouteAttributes(as_path=[65102], next_hop="172.0.0.21")
        )
        packet = tagged_packet(
            controller, "A1", P3, "10.3.9.9", dstport=80, srcport=7, srcip="200.0.0.1"
        )
        out = controller.switch.receive(packet, "A1")
        # HTTP diverts to B (still feasible via B) and B's inbound TE sends
        # srcip 200.x (128/1) to port B2.
        assert len(out) == 1 and out[0][0] == "B2"


class TestStaleDeliveryPruning:
    """The multi-table VMAC table must not strand delivery rules.

    The merged table-1 segment carries one delivery rule per (class,
    announcing participant), keyed by feasibility at compile time.  A
    withdrawal handled by the fast path must prune entries whose
    participant no longer advertises any prefix of the class — the
    invariant checker flags them, and a router receiving such a frame
    would discard it.
    """

    def _controller(self, vmac_mode="fec", dataplane_mode="multitable"):
        from repro.core.config import SDXConfig
        from repro.core.controller import SDXController
        from tests.conftest import (
            install_figure1_policies,
            load_figure1_routes,
            make_figure1_config,
        )

        controller = SDXController(
            make_figure1_config(),
            sdx=SDXConfig(vmac_mode=vmac_mode, dataplane_mode=dataplane_mode),
        )
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        return controller

    def _delivery_rules(self, controller, prefix, participant):
        ports = {
            port.port_id
            for port in controller.config.participant(participant).ports
        }
        group = next(
            g
            for g in controller.last_compilation.fec_table.affected_groups
            if IPv4Prefix(prefix) in g.prefixes
        )
        return [
            rule
            for rule in controller.switch.table
            if rule.table > 0
            and rule.goto is None
            and rule.match.constraints.get("dstmac") == group.vnh.hardware
            and any(a.output_port in ports for a in rule.actions)
        ]

    def test_withdrawal_prunes_stale_delivery_rule(self):
        from repro.verify.invariants import check_bgp_consistency

        controller = self._controller()
        # p3 is multihomed (B best, C backup): both delivery rules exist.
        assert self._delivery_rules(controller, P3, "B")
        assert self._delivery_rules(controller, P3, "C")
        controller.routing.withdraw("B", P3)
        # B's entry is gone, C's (still advertising) survives.
        assert not self._delivery_rules(controller, P3, "B")
        assert self._delivery_rules(controller, P3, "C")
        assert check_bgp_consistency(controller) == []

    @pytest.mark.parametrize("vmac_mode", ["fec", "superset"])
    def test_mass_withdrawal_keeps_bgp_consistency(self, vmac_mode):
        from repro.verify.invariants import check_bgp_consistency

        controller = self._controller(vmac_mode=vmac_mode)
        for prefix in (P1, P2, P3, P4):
            controller.routing.withdraw("B", prefix)
            assert check_bgp_consistency(controller) == [], (vmac_mode, prefix)

    def test_single_table_layout_is_untouched(self):
        controller = self._controller(dataplane_mode="single")
        table_before = controller.switch.table.content_hash()
        assert controller.fast_path.prune_stale_delivery([IPv4Prefix(P3)]) == 0
        assert controller.switch.table.content_hash() == table_before
