"""Unit tests for located packets."""

import pytest

from repro.netutils.ip import IPv4Address
from repro.policy.packet import Packet


class TestPacket:
    def test_construction_normalizes(self):
        pkt = Packet(srcip="10.0.0.1", dstport="80")
        assert pkt["srcip"] == IPv4Address("10.0.0.1")
        assert pkt["dstport"] == 80

    def test_construction_from_mapping_and_kwargs(self):
        pkt = Packet({"srcip": "10.0.0.1"}, dstport=80)
        assert pkt["dstport"] == 80 and "srcip" in pkt

    def test_kwargs_override_mapping(self):
        pkt = Packet({"dstport": 80}, dstport=443)
        assert pkt["dstport"] == 443

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            Packet(nosuchfield=1)

    def test_none_fields_omitted(self):
        pkt = Packet(srcip="10.0.0.1", dstport=None)
        assert "dstport" not in pkt

    def test_modify_returns_new_packet(self):
        original = Packet(dstport=80, port="A1")
        moved = original.modify(port="B")
        assert moved["port"] == "B" and original["port"] == "A1"
        assert moved["dstport"] == 80

    def test_modify_with_none_removes_field(self):
        pkt = Packet(dstport=80, port="A1").modify(port=None)
        assert "port" not in pkt

    def test_modify_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            Packet().modify(bogus=1)

    def test_location_property(self):
        assert Packet(port="A1").location == "A1"
        assert Packet().location is None

    def test_immutability(self):
        pkt = Packet(dstport=80)
        with pytest.raises(AttributeError):
            pkt.anything = 1

    def test_mapping_interface(self):
        pkt = Packet(dstport=80, srcport=1234)
        assert len(pkt) == 2
        assert set(pkt) == {"dstport", "srcport"}
        assert pkt.get("dstport") == 80
        assert pkt.get("proto", 6) == 6

    def test_equality_and_hash(self):
        a = Packet(dstport=80, srcip="10.0.0.1")
        b = Packet(srcip="10.0.0.1", dstport=80)
        c = Packet(dstport=443, srcip="10.0.0.1")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_not_equal_to_dict(self):
        assert Packet(dstport=80) != {"dstport": 80}

    def test_repr_is_sorted_and_readable(self):
        text = repr(Packet(dstport=80, srcip="10.0.0.1"))
        assert "dstport=80" in text and "srcip=10.0.0.1" in text
