"""Unit tests for the SDX controller."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.controller import BASE_COOKIE, SDXController
from repro.core.participant import SDXPolicySet
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet, fwd, match

from tests.conftest import P1, P4, P5, install_figure1_policies


class TestRegistration:
    def test_register_returns_stable_handle(self, figure1_controller):
        first = figure1_controller.register_participant("A")
        second = figure1_controller.register_participant("A")
        assert first is second
        assert first.asn == 65001

    def test_unknown_participant_rejected(self, figure1_controller):
        with pytest.raises(KeyError):
            figure1_controller.register_participant("Z")

    def test_all_participants_are_route_server_peers(self, figure1_controller):
        assert figure1_controller.route_server.peers() == {"A", "B", "C"}


class TestPolicies:
    def test_set_policies_compiles(self, figure1_controller):
        a = figure1_controller.register_participant("A")
        a.set_policies(outbound=match(dstport=80) >> fwd("B"))
        assert figure1_controller.last_compilation is not None
        assert figure1_controller.table_size() > 0

    def test_clear_policies(self, figure1_controller):
        a = figure1_controller.register_participant("A")
        a.set_policies(outbound=match(dstport=80) >> fwd("B"))
        with_policy = figure1_controller.last_compilation.stats.fec_groups
        a.clear_policies()
        assert figure1_controller.last_compilation.stats.fec_groups < with_policy
        assert "A" not in figure1_controller.policy.policies()

    def test_empty_policy_set_removed(self, figure1_controller):
        figure1_controller.policy.set_policies("A", SDXPolicySet(), recompile=False)
        assert "A" not in figure1_controller.policy.policies()


class TestCompilation:
    def test_base_rules_tagged_with_provenance_cookies(self, figure1_compiled):
        cookies = {rule.cookie for rule in figure1_compiled.switch.table}
        assert all(cookie[0] == BASE_COOKIE for cookie in cookies)
        labels = {cookie[1:] for cookie in cookies}
        assert ("policy", "A") in labels and ("default",) in labels

    def test_recompile_replaces_base_block(self, figure1_compiled):
        before = figure1_compiled.table_size()
        figure1_compiled.compile()
        assert figure1_compiled.table_size() == before

    def test_advertisements_carry_vnh_for_affected(self, figure1_compiled):
        advertised = {
            ann.prefix: ann.attributes.next_hop
            for ann in figure1_compiled.advertisements("A")
        }
        assert advertised[IPv4Prefix(P1)] in figure1_compiled.config.vnh_pool

    def test_arp_resolves_advertised_vnh(self, figure1_compiled):
        (announcement,) = [
            a for a in figure1_compiled.advertisements("A") if a.prefix == IPv4Prefix(P1)
        ]
        vmac = figure1_compiled.arp.resolve(announcement.attributes.next_hop)
        assert vmac is not None and vmac.is_locally_administered


class TestOrigination:
    def test_originate_and_withdraw(self, figure1_controller):
        install_figure1_policies(figure1_controller, recompile=False)
        handle = figure1_controller.register_participant("C")
        handle.announce("74.125.1.0/24")
        figure1_controller.compile()
        group = figure1_controller.last_compilation.fec_table.group_for("74.125.1.0/24")
        assert group is not None and group.is_affected
        handle.withdraw("74.125.1.0/24")
        figure1_controller.compile()
        assert (
            figure1_controller.last_compilation.fec_table.group_for("74.125.1.0/24")
            is None
        )

    def test_origination_visible_to_other_participants(self, figure1_controller):
        handle = figure1_controller.register_participant("C")
        handle.announce("74.125.1.0/24")
        best = figure1_controller.route_server.best_route("A", "74.125.1.0/24")
        assert best is not None and best.learned_from == "C"


class TestFastPathWiring:
    def test_update_before_compile_skips_fast_path(self, figure1_controller):
        figure1_controller.routing.withdraw("C", P5)
        assert figure1_controller.ops.fast_path_log == []

    def test_update_after_compile_triggers_fast_path(self, figure1_compiled):
        figure1_compiled.routing.withdraw("A", P5)
        log = figure1_compiled.ops.fast_path_log
        assert len(log) == 1 and str(log[0].prefix) == P5

    def test_fast_path_disabled(self, figure1_controller):
        figure1_controller.fast_path_enabled = False
        install_figure1_policies(figure1_controller)
        figure1_controller.routing.withdraw("C", P5)
        assert figure1_controller.ops.fast_path_log == []

    def test_background_recompile_flushes_fast_path(self, figure1_compiled):
        # P1 keeps a route via B after C withdraws, so the fast path
        # installs an override block for it.
        figure1_compiled.routing.withdraw("C", P1)
        assert figure1_compiled.fast_path.active_prefixes
        figure1_compiled.run_background_recompilation()
        assert not figure1_compiled.fast_path.active_prefixes
        cookies = {rule.cookie for rule in figure1_compiled.switch.table}
        assert all(cookie[0] == BASE_COOKIE for cookie in cookies)


class TestRIBQueries:
    def test_participant_rib_filter(self, figure1_controller):
        handle = figure1_controller.register_participant("A")
        prefixes = handle.rib().filter("as_path", r"65100$")
        assert IPv4Prefix(P1) in prefixes

    def test_learned_routes(self, figure1_compiled):
        handle = figure1_compiled.register_participant("A")
        routes = handle.learned_routes()
        # p4 is hidden from A by B's export scope and announced only by
        # B and C; p5 is A's own prefix, never re-advertised back.
        assert {str(a.prefix) for a in routes} == {P1, "10.2.0.0/16", "10.3.0.0/16", P4}
