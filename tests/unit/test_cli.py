"""Unit tests for the experiments CLI."""

import pytest

from repro.experiments.__main__ import RUNNERS, main


class TestArgumentHandling:
    def test_runner_registry_covers_every_artifact(self):
        assert set(RUNNERS) == {
            "table1",
            "baseline",
            "fig5a",
            "fig5b",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablation",
        }

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_no_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_quick_table1_runs(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "AMS-IX" in out

    def test_multiple_experiments_run_in_order(self, capsys):
        assert main(["table1", "baseline", "--quick"]) == 0
        out = capsys.readouterr().out
        assert out.index("Table 1") < out.index("Naive vs VMAC")
