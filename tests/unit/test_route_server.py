"""Unit tests for the route server and per-participant views."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.bgp.route_server import RouteServer
from repro.netutils.ip import IPv4Prefix

P1 = IPv4Prefix("10.1.0.0/16")
P2 = IPv4Prefix("10.2.0.0/16")


def attrs(asns, next_hop):
    return RouteAttributes(as_path=asns, next_hop=next_hop)


@pytest.fixture
def server():
    rs = RouteServer()
    for peer in ("A", "B", "C"):
        rs.add_peer(peer)
    return rs


class TestPeering:
    def test_duplicate_peer_rejected(self, server):
        with pytest.raises(ValueError):
            server.add_peer("A")

    def test_unknown_peer_update_rejected(self, server):
        with pytest.raises(KeyError):
            server.process_update(BGPUpdate("Z"))

    def test_update_requires_established_session(self, server):
        server.session("B").shutdown()
        with pytest.raises(RuntimeError):
            server.announce("B", P1, attrs([65002], "172.0.0.11"))

    def test_peers_listing(self, server):
        assert server.peers() == {"A", "B", "C"}


class TestDecisionViews:
    def test_best_excludes_own_route(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        assert server.best_route("B", P1) is None
        assert server.best_route("A", P1) is not None

    def test_best_respects_export_scope(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"), export_to=["C"])
        assert server.best_route("A", P1) is None
        assert server.best_route("C", P1) is not None

    def test_best_prefers_shorter_path(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("C", P1, attrs([65100], "172.0.0.21"))
        assert server.best_route("A", P1).learned_from == "C"

    def test_candidates_ranked(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("C", P1, attrs([65100], "172.0.0.21"))
        candidates = server.candidate_routes("A", P1)
        assert [r.learned_from for r in candidates] == ["C", "B"]

    def test_feasible_next_hops(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("C", P1, attrs([65100], "172.0.0.21"))
        view = server.loc_rib("A")
        assert view.feasible_next_hops(P1) == {"B", "C"}
        assert view.feasible_next_hops(P2) == frozenset()

    def test_prefixes_via(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("B", P2, attrs([65002, 65101], "172.0.0.11"), export_to=["C"])
        view_a = server.loc_rib("A")
        view_c = server.loc_rib("C")
        assert view_a.prefixes_via("B") == {P1}
        assert view_c.prefixes_via("B") == {P1, P2}
        assert view_a.prefixes_via("A") == frozenset()

    def test_view_items_and_contains(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        view = server.loc_rib("A")
        assert P1 in view
        assert dict(view.items())[P1].learned_from == "B"


class TestUpdateProcessing:
    def test_withdrawal_removes_route(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.withdraw("B", P1)
        assert server.best_route("A", P1) is None
        assert server.all_prefixes() == frozenset()

    def test_withdrawal_falls_back_to_next_candidate(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("C", P1, attrs([65003, 65007, 65100], "172.0.0.21"))
        assert server.best_route("A", P1).learned_from == "B"
        server.withdraw("B", P1)
        assert server.best_route("A", P1).learned_from == "C"

    def test_reannouncement_replaces(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("B", P1, attrs([65002, 65999, 65100], "172.0.0.11"))
        best = server.best_route("A", P1)
        assert list(best.attributes.as_path) == [65002, 65999, 65100]

    def test_idempotent_reannouncement_reports_no_change(self, server):
        announcement = Announcement(P1, attrs([65002, 65100], "172.0.0.11"))
        server.process_update(BGPUpdate("B", announced=[announcement]))
        changes = server.process_update(BGPUpdate("B", announced=[announcement]))
        assert changes == []

    def test_noop_withdrawal_reports_no_change(self, server):
        changes = server.process_update(BGPUpdate("B", withdrawn=[Withdrawal(P1)]))
        assert changes == []

    def test_changes_cover_all_participants(self, server):
        changes = server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        participants = {change.participant for change in changes}
        assert participants == {"A", "B", "C"}
        by_participant = {change.participant: change for change in changes}
        assert by_participant["A"].new.learned_from == "B"
        assert by_participant["B"].new is None  # own route excluded

    def test_subscribers_notified(self, server):
        seen = []
        server.subscribe(lambda changes: seen.append(len(changes)))
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        assert seen == [3]

    def test_session_down_withdraws_everything(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("B", P2, attrs([65002, 65101], "172.0.0.11"))
        server.session("B").fail()
        assert server.best_route("A", P1) is None
        assert server.best_route("A", P2) is None

    def test_bulk_load_skips_notifications(self, server):
        seen = []
        server.subscribe(lambda changes: seen.append(changes))
        count = server.load(
            [
                BGPUpdate(
                    "B", announced=[Announcement(P1, attrs([65002, 65100], "172.0.0.11"))]
                ),
                BGPUpdate(
                    "C", announced=[Announcement(P2, attrs([65003, 65100], "172.0.0.21"))]
                ),
            ]
        )
        assert count == 2 and seen == []
        assert server.best_route("A", P1) is not None


class TestQueries:
    def test_ranked_routes_fingerprint_source(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        server.announce("C", P1, attrs([65100], "172.0.0.21"))
        ranked = server.ranked_routes(P1)
        assert [r.learned_from for r in ranked] == ["C", "B"]

    def test_rib_table_for_policy_queries(self, server):
        server.announce("B", P1, attrs([65002, 43515], "172.0.0.11"))
        table = server.rib_table("A")
        assert table.filter("as_path", r"43515$") == [P1]

    def test_advertisements_sorted_by_prefix(self, server):
        server.announce("B", P2, attrs([65002, 65101], "172.0.0.11"))
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        advertised = server.advertisements("A")
        assert [a.prefix for a in advertised] == [P1, P2]

    def test_route_from_and_prefixes_from(self, server):
        server.announce("B", P1, attrs([65002, 65100], "172.0.0.11"))
        assert server.route_from("B", P1).learned_from == "B"
        assert server.route_from("C", P1) is None
        assert server.prefixes_from("B") == {P1}
