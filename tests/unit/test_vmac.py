"""Unit tests for VNH/VMAC allocation."""

import pytest

from repro.core.vmac import VirtualNextHopAllocator
from repro.netutils.ip import IPv4Address, IPv4Prefix


class TestVirtualNextHopAllocator:
    def test_allocates_host_addresses_in_pool(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        vnh = allocator.allocate()
        assert vnh.address in IPv4Prefix("172.16.0.0/24")
        assert vnh.address != IPv4Prefix("172.16.0.0/24").network  # skips network addr
        assert vnh.hardware.is_locally_administered

    def test_pairs_are_unique(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        pairs = [allocator.allocate() for _ in range(50)]
        assert len({p.address for p in pairs}) == 50
        assert len({p.hardware for p in pairs}) == 50
        assert allocator.allocated == 50

    def test_resolve_acts_as_arp_responder(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        vnh = allocator.allocate()
        assert allocator.resolve(vnh.address) == vnh.hardware
        assert allocator.resolve(str(vnh.address)) == vnh.hardware
        assert allocator.resolve("9.9.9.9") is None

    def test_contains(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        vnh = allocator.allocate()
        assert vnh.address in allocator
        assert IPv4Address("9.9.9.9") not in allocator

    def test_pool_exhaustion(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/30")  # 2 usable hosts
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_tiny_pool_rejected(self):
        with pytest.raises(ValueError):
            VirtualNextHopAllocator("172.16.0.0/31")

    def test_release_all(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        first = allocator.allocate()
        allocator.release_all()
        assert allocator.allocated == 0
        assert allocator.resolve(first.address) is None
        assert allocator.allocate().address == first.address

    def test_iteration(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        vnhs = [allocator.allocate() for _ in range(3)]
        assert list(allocator) == vnhs

    def test_release_returns_address_to_pool(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        vnh = allocator.allocate()
        assert allocator.release(vnh.address) is True
        assert allocator.allocated == 0
        assert allocator.resolve(vnh.address) is None
        assert allocator.released_total == 1
        # not allocated anymore -> a second release is a no-op
        assert allocator.release(vnh.address) is False

    def test_released_addresses_reused_with_fresh_macs(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/29")  # 6 usable
        vnh = allocator.allocate()
        for _ in range(100):  # far more cycles than the pool has addresses
            allocator.release(vnh.address)
            reused = allocator.allocate()
            assert reused.address == vnh.address
            assert reused.hardware != vnh.hardware  # routers must re-ARP
            vnh = reused
        assert allocator.allocated == 1

    def test_reclaim_reinstates_released_pair(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        vnh = allocator.allocate()
        allocator.release(vnh.address)
        allocator.reclaim(vnh)
        assert allocator.resolve(vnh.address) == vnh.hardware
        # the address left the free list: the next allocation is fresh
        assert allocator.allocate().address != vnh.address
        # reclaiming a live pair is idempotent
        allocator.reclaim(vnh)
        assert allocator.resolve(vnh.address) == vnh.hardware
