"""Unit tests for the IXP static configuration."""

import pytest

from repro.ixp.topology import IXPConfig, ParticipantSpec, PortSpec
from repro.netutils.ip import IPv4Address
from repro.netutils.mac import MACAddress


def build_config():
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [
            ("B1", "172.0.0.11", "08:00:27:00:00:11"),
            ("B2", "172.0.0.12", "08:00:27:00:00:12"),
        ],
    )
    config.add_participant("D", 64496, [])  # remote participant
    return config


class TestParticipantSpec:
    def test_port_lookup(self):
        config = build_config()
        b = config.participant("B")
        assert b.port("B1").address == IPv4Address("172.0.0.11")
        with pytest.raises(KeyError):
            b.port("B9")

    def test_port_ids(self):
        assert build_config().participant("B").port_ids == ("B1", "B2")

    def test_port_for_address(self):
        b = build_config().participant("B")
        assert b.port_for_address("172.0.0.12").port_id == "B2"
        assert b.port_for_address("9.9.9.9") is None

    def test_remote_detection(self):
        config = build_config()
        assert config.participant("D").is_remote
        assert not config.participant("A").is_remote

    def test_duplicate_port_on_participant_rejected(self):
        with pytest.raises(ValueError):
            ParticipantSpec(
                "X",
                1,
                [
                    PortSpec("X1", IPv4Address("1.1.1.1"), MACAddress("02:00:00:00:00:01")),
                    PortSpec("X1", IPv4Address("1.1.1.2"), MACAddress("02:00:00:00:00:02")),
                ],
            )


class TestIXPConfig:
    def test_duplicate_participant_rejected(self):
        config = build_config()
        with pytest.raises(ValueError):
            config.add_participant("A", 65009)

    def test_port_id_collision_rejected(self):
        config = build_config()
        with pytest.raises(ValueError):
            config.add_participant("E", 65005, [("A1", "172.0.0.99", "08:00:27:00:00:99")])

    def test_address_collision_rejected(self):
        config = build_config()
        with pytest.raises(ValueError):
            config.add_participant("E", 65005, [("E1", "172.0.0.1", "08:00:27:00:00:99")])

    def test_mac_collision_rejected(self):
        config = build_config()
        with pytest.raises(ValueError):
            config.add_participant("E", 65005, [("E1", "172.0.0.99", "08:00:27:00:00:01")])

    def test_physical_ports(self):
        config = build_config()
        assert [p.port_id for p in config.physical_ports()] == ["A1", "B1", "B2"]

    def test_owner_of_port(self):
        config = build_config()
        assert config.owner_of_port("B2").name == "B"
        with pytest.raises(KeyError):
            config.owner_of_port("Z1")

    def test_owner_of_address(self):
        config = build_config()
        assert config.owner_of_address("172.0.0.11").name == "B"
        assert config.owner_of_address("9.9.9.9") is None

    def test_contains_and_len(self):
        config = build_config()
        assert "A" in config and "Z" not in config
        assert len(config) == 3

    def test_participant_names_order(self):
        assert build_config().participant_names() == ("A", "B", "D")
