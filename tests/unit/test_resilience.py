"""Unit tests for the resilience layer.

Covers each component in isolation — flap damping math (RFC 2439),
update-plane protection (RFC 7606), session liveness timers and
graceful restart (RFC 4724), transactional flow-table commits, and the
controller's quarantine of poisoned participant policies — plus the
end-to-end wire-error path: corrupted bytes entering
``UpdateGuard.process_wire`` and their effect on the route server.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.bgp.route_server import RouteServer
from repro.bgp.session import SessionState
from repro.bgp.wire import WireError, decode_message, encode_update
from repro.dataplane.flowtable import FlowTable
from repro.netutils.ip import IPv4Prefix
from repro.policy import fwd, match
from repro.resilience import (
    CommitSabotage,
    DampingConfig,
    FaultInjector,
    FlapDamper,
    LivenessConfig,
    PolicyPoisonError,
    ProtectionConfig,
    SessionLivenessManager,
    SkewedClock,
    UpdateGuard,
    salvage_update,
)
from repro.sim.clock import Simulator

from tests.conftest import P1

P = "10.9.0.0/16"
Q = "10.10.0.0/16"


def attrs(asns=(65100,), next_hop="172.0.0.11"):
    return RouteAttributes(as_path=list(asns), next_hop=next_hop)


def make_server(*peers):
    server = RouteServer()
    for peer in peers:
        server.add_peer(peer)
    return server


class ManualClock:
    """A clock whose time the test sets directly."""

    def __init__(self):
        self.now = 0.0


# ---------------------------------------------------------------------------
# Flap damping (RFC 2439)
# ---------------------------------------------------------------------------


class TestFlapDamper:
    def test_no_history_means_no_suppression(self):
        damper = FlapDamper(ManualClock())
        assert not damper.is_suppressed("B", P)
        assert damper.penalty("B", P) == 0.0
        assert damper.reuse_delay("B", P) == 0.0

    def test_penalty_accumulates_to_suppression(self):
        damper = FlapDamper(ManualClock())
        assert not damper.record_withdraw("B", P)  # 1000 < 2000
        assert damper.record_withdraw("B", P)  # 2000 >= 2000
        assert damper.is_suppressed("B", P)
        assert damper.is_prefix_suppressed(P)
        assert not damper.is_prefix_suppressed(Q)

    def test_penalty_halves_per_half_life(self):
        clock = ManualClock()
        damper = FlapDamper(clock, DampingConfig(half_life=100.0))
        damper.record_withdraw("B", P)
        clock.now = 100.0
        assert damper.penalty("B", P) == pytest.approx(500.0)
        clock.now = 200.0
        assert damper.penalty("B", P) == pytest.approx(250.0)

    def test_penalty_capped_at_max(self):
        damper = FlapDamper(ManualClock())
        for _ in range(50):
            damper.record_withdraw("B", P)
        assert damper.penalty("B", P) == damper.config.max_penalty

    def test_suppressed_route_released_after_reuse_delay(self):
        clock = ManualClock()
        damper = FlapDamper(clock)
        for _ in range(3):
            damper.record_withdraw("B", P)
        assert damper.is_suppressed("B", P)
        delay = damper.reuse_delay("B", P)
        assert delay > 0
        clock.now = delay / 2
        assert damper.is_suppressed("B", P)
        clock.now = delay
        assert not damper.is_suppressed("B", P)
        assert damper.prefix_reuse_delay(P) == 0.0

    def test_distinct_peers_damped_independently(self):
        damper = FlapDamper(ManualClock())
        damper.record_withdraw("B", P)
        damper.record_withdraw("B", P)
        assert damper.is_suppressed("B", P)
        assert not damper.is_suppressed("C", P)
        # ...but the prefix as a whole counts as suppressed
        assert damper.is_prefix_suppressed(P)

    def test_flap_count_and_forget(self):
        damper = FlapDamper(ManualClock())
        damper.record_withdraw("B", P)
        damper.record_readvertise("B", P)
        assert damper.flap_count("B", P) == 2
        damper.forget("B")
        assert damper.flap_count("B", P) == 0
        assert not damper.is_suppressed("B", P)

    def test_reuse_threshold_must_sit_below_suppress(self):
        with pytest.raises(ValueError):
            FlapDamper(
                ManualClock(),
                DampingConfig(suppress_threshold=500.0, reuse_threshold=750.0),
            )

    def test_suppressed_routes_listing_sorted(self):
        damper = FlapDamper(ManualClock())
        for peer in ("C", "B"):
            damper.record_withdraw(peer, P)
            damper.record_withdraw(peer, P)
        assert damper.suppressed_routes() == (
            ("B", IPv4Prefix(P)),
            ("C", IPv4Prefix(P)),
        )

    def test_long_churn_keeps_record_count_bounded(self):
        # A rolling population of routes each flaps once and goes quiet.
        # Decayed-cold records must be evicted, not kept forever: the
        # table tracks the warm set, not every route that ever flapped.
        clock = ManualClock()
        damper = FlapDamper(clock, DampingConfig(half_life=60.0))
        for i in range(5000):
            clock.now = i * 30.0
            damper.record_withdraw("B", f"10.{(i >> 8) & 255}.{i & 255}.0/24")
        assert len(damper._records) < 200

    def test_cold_record_evicted_after_full_decay(self):
        clock = ManualClock()
        damper = FlapDamper(clock, DampingConfig(half_life=100.0))
        damper.record_withdraw("B", P)
        clock.now = 10_000.0  # 100 half-lives: penalty is effectively zero
        assert damper.penalty("B", P) == pytest.approx(0.0, abs=1e-3)
        assert ("B", IPv4Prefix(P)) not in damper._records
        # Re-flapping after eviction starts a clean history.
        assert not damper.record_withdraw("B", P)
        assert damper.flap_count("B", P) == 1

    def test_prefix_suppression_index_clears_on_release(self):
        clock = ManualClock()
        damper = FlapDamper(clock)
        for _ in range(2):
            damper.record_withdraw("B", P)
        assert damper.is_prefix_suppressed(P)
        delay = damper.prefix_reuse_delay(P)
        assert delay > 0
        clock.now = delay
        assert not damper.is_prefix_suppressed(P)
        assert damper.prefix_reuse_delay(P) == 0.0
        assert damper.suppressed_routes() == ()
        assert damper._suppressed == {}

    def test_forget_clears_suppression_index(self):
        damper = FlapDamper(ManualClock())
        for _ in range(2):
            damper.record_withdraw("B", P)
        assert damper.is_prefix_suppressed(P)
        damper.forget("B")
        assert not damper.is_prefix_suppressed(P)
        assert damper._suppressed == {}


# ---------------------------------------------------------------------------
# Update-plane protection (RFC 7606)
# ---------------------------------------------------------------------------


class TestSalvageUpdate:
    def _wire(self, update):
        (data,) = encode_update(update)
        return data

    def test_attribute_corruption_is_salvaged_as_withdraw(self):
        update = BGPUpdate("B", announced=[Announcement(P, attrs())])
        bad = FaultInjector(1).corrupt_attributes(self._wire(update))
        with pytest.raises(WireError):
            decode_message(bad, peer="B")
        salvaged = salvage_update(bad, "B")
        assert salvaged is not None
        assert not salvaged.announced
        assert Withdrawal(P) in salvaged.withdrawn

    def test_marker_corruption_is_not_salvageable(self):
        update = BGPUpdate("B", announced=[Announcement(P, attrs())])
        bad = FaultInjector(1).corrupt_marker(self._wire(update))
        assert salvage_update(bad, "B") is None

    def test_withdrawn_routes_survive_salvage(self):
        update = BGPUpdate(
            "B", announced=[Announcement(P, attrs())], withdrawn=[Withdrawal(Q)]
        )
        bad = FaultInjector(1).corrupt_attributes(self._wire(update))
        salvaged = salvage_update(bad, "B")
        assert {w.prefix for w in salvaged.withdrawn} == {
            IPv4Prefix(P),
            IPv4Prefix(Q),
        }


class TestUpdateGuardWirePath:
    """WireError paths reaching RouteServer.process_update end-to-end."""

    def _setup(self, **config):
        server = make_server("B", "C")
        server.announce("B", P, attrs())
        guard = UpdateGuard(server, ProtectionConfig(**config))
        return server, guard

    def test_clean_wire_message_is_applied(self):
        server, guard = self._setup()
        (data,) = encode_update(BGPUpdate("B", announced=[Announcement(Q, attrs())]))
        changes = guard.process_wire("B", data)
        assert server.route_from("B", IPv4Prefix(Q)) is not None
        assert any(change.prefix == IPv4Prefix(Q) for change in changes)
        assert guard.counters("B").total_errors == 0

    def test_corrupt_attributes_become_treat_as_withdraw(self):
        server, guard = self._setup()
        (data,) = encode_update(BGPUpdate("B", announced=[Announcement(P, attrs())]))
        bad = FaultInjector(2).corrupt_attributes(data)
        changes = guard.process_wire("B", bad)
        # the re-announcement was mangled: the route is withdrawn, not kept
        assert server.route_from("B", IPv4Prefix(P)) is None
        assert any(change.prefix == IPv4Prefix(P) for change in changes)
        counters = guard.counters("B")
        assert counters.wire_errors == 1
        assert counters.treat_as_withdraw == 1
        assert server.session("B").is_established  # no reset below threshold

    def test_corrupt_marker_is_discarded(self):
        server, guard = self._setup()
        (data,) = encode_update(BGPUpdate("B", announced=[Announcement(P, attrs())]))
        bad = FaultInjector(2).corrupt_marker(data)
        assert guard.process_wire("B", bad) == []
        # nothing salvageable: the existing route is untouched
        assert server.route_from("B", IPv4Prefix(P)) is not None
        assert guard.counters("B").wire_errors == 1
        assert guard.counters("B").treat_as_withdraw == 0

    def test_error_threshold_resets_session(self):
        server, guard = self._setup(error_threshold=3)
        (data,) = encode_update(BGPUpdate("B", announced=[Announcement(P, attrs())]))
        bad = FaultInjector(2).corrupt_marker(data)
        for _ in range(3):
            guard.process_wire("B", bad)
        assert server.session("B").state is SessionState.FAILED
        assert guard.counters("B").session_resets == 1
        # other peers are untouched
        assert server.session("C").is_established

    def test_garbage_too_short_for_framing_is_counted(self):
        server, guard = self._setup()
        assert guard.process_wire("B", b"\x00\x01\x02") == []
        assert guard.counters("B").wire_errors == 1


class TestUpdateGuardValidation:
    def _guarded(self, **config):
        server = make_server("B")
        guard = UpdateGuard(server, ProtectionConfig(**config))
        return server, guard

    def test_default_route_announcement_rejected(self):
        server, guard = self._guarded()
        update = BGPUpdate("B", announced=[Announcement("0.0.0.0/0", attrs())])
        guard.process_update(update)
        assert server.route_from("B", IPv4Prefix("0.0.0.0/0")) is None
        assert guard.counters("B").validation_errors == 1

    def test_empty_as_path_rejected(self):
        server, guard = self._guarded()
        update = BGPUpdate("B", announced=[Announcement(P, attrs(asns=()))])
        guard.process_update(update)
        assert server.route_from("B", IPv4Prefix(P)) is None
        assert "AS_PATH" in guard.counters("B").last_error

    def test_zero_next_hop_rejected(self):
        server, guard = self._guarded()
        update = BGPUpdate(
            "B", announced=[Announcement(P, attrs(next_hop="0.0.0.0"))]
        )
        guard.process_update(update)
        assert server.route_from("B", IPv4Prefix(P)) is None

    def test_bad_announcement_withdraws_only_itself(self):
        server, guard = self._guarded()
        server.announce("B", P, attrs())
        update = BGPUpdate(
            "B",
            announced=[
                Announcement(P, attrs(next_hop="0.0.0.0")),  # invalid refresh
                Announcement(Q, attrs()),  # valid
            ],
        )
        guard.process_update(update)
        assert server.route_from("B", IPv4Prefix(P)) is None  # treat-as-withdraw
        assert server.route_from("B", IPv4Prefix(Q)) is not None  # applied

    def test_update_from_down_session_is_dropped(self):
        server, guard = self._guarded()
        server.session("B").fail()
        update = BGPUpdate("B", announced=[Announcement(P, attrs())])
        assert guard.process_update(update) == []
        assert server.route_from("B", IPv4Prefix(P)) is None
        assert guard.counters("B").validation_errors == 1

    def test_first_asn_enforcement_opt_in(self):
        server = RouteServer()
        server.add_peer("B", asn=65002)
        guard = UpdateGuard(server, ProtectionConfig(enforce_first_asn=True))
        update = BGPUpdate("B", announced=[Announcement(P, attrs(asns=(65100,)))])
        guard.process_update(update)
        assert server.route_from("B", IPv4Prefix(P)) is None
        ok = BGPUpdate("B", announced=[Announcement(P, attrs(asns=(65002, 65100)))])
        guard.process_update(ok)
        assert server.route_from("B", IPv4Prefix(P)) is not None


# ---------------------------------------------------------------------------
# Session liveness, graceful restart, reconnection backoff
# ---------------------------------------------------------------------------


class TestSessionLiveness:
    CONFIG = dict(hold_time=10.0, restart_time=50.0, backoff_initial=1.0)

    def _watched(self, probe=None, **overrides):
        sim = Simulator()
        server = make_server("B")
        server.announce("B", P, attrs())
        manager = SessionLivenessManager(
            server, sim, LivenessConfig(**{**self.CONFIG, **overrides}), probe
        )
        manager.watch("B")
        return sim, server, manager

    def test_heartbeats_keep_the_session_up(self):
        sim, server, manager = self._watched(probe=lambda peer: False)
        for t in (6, 12, 18, 24):
            sim.run_until(t)
            manager.heard_from("B")
        sim.run_until(30)
        assert server.session("B").is_established
        assert manager.peer_state("B").hold_expirations == 0

    def test_silence_past_hold_time_fails_the_session(self):
        sim, server, manager = self._watched(probe=lambda peer: False)
        sim.run_until(11)
        assert server.session("B").state is SessionState.FAILED
        assert manager.peer_state("B").hold_expirations == 1

    def test_graceful_restart_retains_routes_as_stale(self):
        sim, server, manager = self._watched(probe=lambda peer: False)
        sim.run_until(11)  # hold expiry at t=10
        assert server.stale_prefixes("B") == frozenset({IPv4Prefix(P)})
        # forwarding continues on the last-known route
        assert server.route_from("B", IPv4Prefix(P)) is not None

    def test_without_graceful_restart_routes_flush_on_failure(self):
        sim, server, manager = self._watched(
            probe=lambda peer: False, graceful_restart=False
        )
        sim.run_until(11)
        assert server.route_from("B", IPv4Prefix(P)) is None
        assert server.stale_prefixes("B") == frozenset()

    def test_restart_timer_sweeps_unrefreshed_stale_routes(self):
        sim, server, manager = self._watched(probe=lambda peer: False)
        sim.run_until(70)  # fail at 10, restart timer expires at 60
        assert server.route_from("B", IPv4Prefix(P)) is None
        assert server.stale_prefixes("B") == frozenset()

    def test_reconnect_backoff_is_exponential(self):
        sim, server, manager = self._watched(probe=lambda peer: False)
        # fail at t=10; attempts at 11, 13, 17, 25, 41 (1+2+4+8+16 spacing)
        expected = [(12, 1), (14, 2), (18, 3), (26, 4), (42, 5)]
        for t, attempts in expected:
            sim.run_until(t)
            assert manager.peer_state("B").reconnect_attempts == attempts

    def test_reconnection_restores_the_session_and_resets_backoff(self):
        reachable = {"up": False}
        sim, server, manager = self._watched(probe=lambda peer: reachable["up"])
        sim.run_until(20)  # failed at 10, probes at 11, 13, 17 all refused
        assert server.session("B").state is SessionState.FAILED
        reachable["up"] = True
        sim.run_until(30)  # next probe at 25 succeeds
        assert server.session("B").is_established
        assert manager.peer_state("B").backoff == manager.config.backoff_initial
        # stale routes persist until refreshed or End-of-RIB swept
        assert server.stale_prefixes("B") == frozenset({IPv4Prefix(P)})

    def test_refresh_plus_end_of_rib_clears_stale_without_churn(self):
        reachable = {"up": False}
        sim, server, manager = self._watched(probe=lambda peer: reachable["up"])
        observed = []
        server.subscribe(observed.extend)
        sim.run_until(20)
        reachable["up"] = True
        sim.run_until(30)
        assert observed == []  # graceful failure + recovery: zero churn
        server.announce("B", P, attrs())  # peer re-sends the same route
        server.end_of_rib("B")
        assert server.stale_prefixes("B") == frozenset()
        assert server.route_from("B", IPv4Prefix(P)) is not None
        assert observed == []  # identical refresh: still no best-path churn

    def test_admin_shutdown_stops_supervision(self):
        sim, server, manager = self._watched(probe=lambda peer: True)
        server.session("B").shutdown()
        sim.run_until(200)
        assert server.session("B").state is SessionState.IDLE
        assert manager.peer_state("B").reconnect_attempts == 0

    def test_backoff_capped_at_maximum(self):
        sim, server, manager = self._watched(
            probe=lambda peer: False, backoff_max=4.0
        )
        sim.run_until(100)
        assert manager.peer_state("B").backoff == 4.0


# ---------------------------------------------------------------------------
# Timer skew
# ---------------------------------------------------------------------------


class TestSkewedClock:
    def test_relative_delays_are_scaled(self):
        sim = Simulator()
        skewed = SkewedClock(sim, 2.0)
        fired = []
        skewed.schedule_in(5.0, lambda: fired.append("x"))
        sim.run_until(9.9)
        assert fired == []
        sim.run_until(10.0)
        assert fired == ["x"]

    def test_underlying_clock_unaffected(self):
        sim = Simulator()
        skewed = SkewedClock(sim, 0.5)
        fired = []
        sim.schedule_in(8.0, lambda: fired.append("direct"))
        skewed.schedule_in(8.0, lambda: fired.append("skewed"))
        sim.run_until(4.0)
        assert fired == ["skewed"]
        sim.run_until(8.0)
        assert fired == ["skewed", "direct"]

    def test_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            SkewedClock(Simulator(), 0.0)

    def test_injector_skew_is_seed_deterministic(self):
        sim = Simulator()
        a = FaultInjector(5).skew_clock(sim)
        b = FaultInjector(5).skew_clock(sim)
        assert a.factor == b.factor


# ---------------------------------------------------------------------------
# Transactional flow tables
# ---------------------------------------------------------------------------


def _toy_table():
    table = FlowTable()
    table.install_classifier(
        (match(dstport=80) >> fwd("B")).compile(), base_priority=100, cookie="web"
    )
    return table


class TestFlowTableTransactions:
    def test_rollback_restores_contents_and_hash(self):
        table = _toy_table()
        before = table.content_hash()
        transaction = table.transaction()
        table.remove_by_cookie("web")
        table.install_classifier(
            (match(dstport=22) >> fwd("C")).compile(), base_priority=50, cookie="ssh"
        )
        assert table.content_hash() != before
        transaction.rollback()
        assert table.content_hash() == before

    def test_commit_keeps_mutations(self):
        table = _toy_table()
        before = table.content_hash()
        with table.transaction():
            table.remove_by_cookie("web")
        assert len(table) == 0
        assert table.content_hash() != before

    def test_exception_in_with_block_rolls_back(self):
        table = _toy_table()
        before = table.content_hash()
        with pytest.raises(RuntimeError):
            with table.transaction():
                table.clear()
                raise RuntimeError("mid-commit failure")
        assert table.content_hash() == before

    def test_rollback_after_commit_is_a_no_op(self):
        table = _toy_table()
        transaction = table.transaction()
        table.remove_by_cookie("web")
        transaction.commit()
        transaction.rollback()
        assert len(table) == 0

    def test_hash_ignores_counters(self):
        table = _toy_table()
        before = table.content_hash()
        rule = table.rules()[0]
        rule.count(1500)
        assert table.content_hash() == before

    def test_restored_rules_keep_their_counters(self):
        table = _toy_table()
        checkpoint = table.checkpoint()
        rule = table.rules()[0]
        table.clear()
        rule.count(100)  # traffic counted while the rule was "out"
        table.restore(checkpoint)
        assert table.rules()[0].packets == 1


# ---------------------------------------------------------------------------
# Fault-isolated compilation (quarantine) and transactional install
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_poisoned_policy_quarantines_only_the_culprit(self, figure1_compiled):
        controller = figure1_compiled
        controller.register_participant("C").set_policies(
            outbound=match(dstport=22) >> fwd("B"), recompile=False
        )
        FaultInjector(3).poison_policy(controller, "A")
        result = controller.compile()
        assert set(controller.ops.quarantined()) == {"A"}
        record = controller.ops.quarantined()["A"]
        assert record.error_type == "PolicyPoisonError"
        assert "poison" in record.error
        # C's policy block survived the quarantine pass
        labels = [label for label, _ in result.segments]
        assert ("policy", "C") in labels
        assert ("policy", "A") not in labels

    def test_quarantined_compile_raises_nothing(self, figure1_compiled):
        controller = figure1_compiled
        FaultInjector(3).poison_policy(controller, "A")
        controller.compile()  # must not raise
        controller.compile()  # stays quarantined; still must not raise
        assert set(controller.ops.quarantined()) == {"A"}

    def test_release_without_fix_requarantines(self, figure1_compiled):
        controller = figure1_compiled
        FaultInjector(3).poison_policy(controller, "A")
        controller.compile()
        assert controller.ops.release_quarantine("A", recompile=False)
        assert not controller.ops.quarantined()
        controller.compile()  # the pill is still installed
        assert set(controller.ops.quarantined()) == {"A"}

    def test_replacing_the_policy_lifts_quarantine(self, figure1_compiled):
        from repro.core.participant import SDXPolicySet

        controller = figure1_compiled
        FaultInjector(3).poison_policy(controller, "A")
        controller.compile()
        controller.policy.set_policies(
            "A", SDXPolicySet(outbound=match(dstport=80) >> fwd("B")), recompile=False
        )
        result = controller.compile()
        assert not controller.ops.quarantined()
        assert ("policy", "A") in [label for label, _ in result.segments]

    def test_release_quarantine_unknown_participant_is_false(self, figure1_compiled):
        assert not figure1_compiled.ops.release_quarantine("Z")

    def test_unattributable_failure_propagates(self, figure1_compiled):
        controller = figure1_compiled
        # Fail a *shared* pipeline stage (the default-forwarding /
        # stage-2 build serves every participant at once): no single
        # participant can be blamed, so the error must surface instead
        # of a bogus quarantine.
        pipeline = controller.pipeline
        original = pipeline._build_shared_blocks

        def broken_build(*args, **kwargs):
            raise RuntimeError("allocator exhausted mid-compile")

        pipeline._build_shared_blocks = broken_build
        try:
            with pytest.raises(RuntimeError, match="allocator exhausted"):
                controller.compile()
            assert not controller.ops.quarantined()
        finally:
            pipeline._build_shared_blocks = original

    def test_shared_shard_failure_propagates_without_quarantine(
        self, figure1_compiled
    ):
        controller = figure1_compiled
        # A failure inside the shared "default" compile shard is equally
        # unattributable: the scheduler must raise, not quarantine.
        from repro.pipeline import shards as shards_module

        original = shards_module.run_shard

        def broken_run_shard(task):
            if task.label == ("default",):
                return shards_module.ShardResult(
                    task.label, None, None, None, ("RuntimeError", "fabric melted")
                )
            return original(task)

        # Invalidate the cached default shard so the broken one runs.
        controller.pipeline._shard_cache.pop(("default",), None)
        import repro.pipeline.pipeline as pipeline_module

        pipeline_module.run_shard, saved = broken_run_shard, pipeline_module.run_shard
        try:
            with pytest.raises(RuntimeError, match="fabric melted"):
                controller.compile()
            assert not controller.ops.quarantined()
        finally:
            pipeline_module.run_shard = saved


class TestTransactionalInstall:
    def test_sabotaged_commit_rolls_back_bit_identically(self, figure1_compiled):
        controller = figure1_compiled
        table = controller.switch.table
        before_hash = table.content_hash()
        before_result = controller.last_compilation
        FaultInjector(4).sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.compile()
        assert table.content_hash() == before_hash
        assert controller.last_compilation is before_result

    def test_commit_succeeds_after_sabotage_expires(self, figure1_compiled):
        controller = figure1_compiled
        FaultInjector(4).sabotage_commit(controller, times=1)
        with pytest.raises(CommitSabotage):
            controller.compile()
        controller.compile()  # hook removed itself; clean commit
        assert controller.last_compilation is not None

    def test_rollback_preserves_advertisements(self, figure1_compiled):
        controller = figure1_compiled
        before = {
            announcement.prefix: announcement.attributes.next_hop
            for announcement in controller.advertisements("A")
        }
        FaultInjector(4).sabotage_commit(controller)
        with pytest.raises(CommitSabotage):
            controller.compile()
        after = {
            announcement.prefix: announcement.attributes.next_hop
            for announcement in controller.advertisements("A")
        }
        assert after == before


# ---------------------------------------------------------------------------
# Health report
# ---------------------------------------------------------------------------


class TestHealthReport:
    def test_healthy_exchange_reports_not_degraded(self, figure1_compiled):
        report = figure1_compiled.ops.health()
        assert not report.degraded
        assert set(report.sessions) == {"A", "B", "C"}
        assert all(state == "established" for state in report.sessions.values())
        assert report.flow_rules > 0
        assert "3 sessions (3 up)" in report.summary()

    def test_quarantine_degrades_the_report(self, figure1_compiled):
        controller = figure1_compiled
        FaultInjector(6).poison_policy(controller, "A")
        controller.compile()
        report = controller.ops.health()
        assert report.degraded
        assert set(report.quarantined) == {"A"}
        assert "quarantined: A" in report.summary()

    def test_failed_session_degrades_the_report(self, figure1_compiled):
        controller = figure1_compiled
        controller.route_server.session("B").fail()
        report = controller.ops.health()
        assert report.degraded
        assert report.sessions["B"] == "failed"
