"""Unit tests for IPv4 addresses, prefixes, and the prefix trie."""

import pytest

from repro.netutils.ip import IPv4Address, IPv4Prefix, PrefixTrie, ip, prefix


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert int(ip("10.0.0.1")) == (10 << 24) + 1

    def test_parse_int(self):
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_parse_copy_constructor(self):
        original = ip("1.2.3.4")
        assert IPv4Address(original) == original

    def test_round_trip(self):
        for text in ("0.0.0.0", "255.255.255.255", "192.168.1.77"):
            assert str(ip(text)) == text

    def test_rejects_bad_strings(self):
        for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "10..0.1", "10.0.0.1.2"):
            with pytest.raises(ValueError):
                ip(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            IPv4Address(1.5)

    def test_ordering(self):
        assert ip("10.0.0.1") < ip("10.0.0.2") <= ip("10.0.0.2")
        assert ip("10.0.1.0") > ip("10.0.0.255")

    def test_no_implicit_string_equality(self):
        # a == b must imply hash(a) == hash(b); strings never compare equal
        assert ip("10.0.0.1") != "10.0.0.1"

    def test_hashable(self):
        assert len({ip("1.1.1.1"), ip("1.1.1.1"), ip("2.2.2.2")}) == 2

    def test_add_offset(self):
        assert ip("10.0.0.1") + 255 == ip("10.0.1.0")

    def test_to_prefix(self):
        host = ip("10.0.0.1").to_prefix()
        assert host.length == 32 and host.network == ip("10.0.0.1")

    def test_repr(self):
        assert "10.0.0.1" in repr(ip("10.0.0.1"))


class TestIPv4Prefix:
    def test_parse_cidr(self):
        pfx = prefix("10.0.0.0/8")
        assert pfx.length == 8 and str(pfx.network) == "10.0.0.0"

    def test_two_argument_form(self):
        assert prefix("10.0.0.0", 8) == prefix("10.0.0.0/8")

    def test_canonicalizes_host_bits(self):
        assert prefix("10.1.2.3/8") == prefix("10.0.0.0/8")

    def test_rejects_double_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix("10.0.0.0/8", 8)

    def test_rejects_bad_length(self):
        for bad in (-1, 33):
            with pytest.raises(ValueError):
                IPv4Prefix("10.0.0.0", bad)

    def test_requires_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix("10.0.0.0")

    def test_netmask(self):
        assert str(prefix("10.0.0.0/8").netmask) == "255.0.0.0"
        assert str(prefix("0.0.0.0/0").netmask) == "0.0.0.0"

    def test_num_addresses(self):
        assert prefix("10.0.0.0/24").num_addresses == 256
        assert prefix("1.2.3.4/32").num_addresses == 1

    def test_broadcast(self):
        assert prefix("10.0.0.0/24").broadcast == ip("10.0.0.255")

    def test_host_indexing(self):
        pfx = prefix("10.0.0.0/24")
        assert pfx.host(0) == ip("10.0.0.0")
        assert pfx.host(255) == ip("10.0.0.255")
        with pytest.raises(ValueError):
            pfx.host(256)

    def test_contains_address(self):
        pfx = prefix("10.0.0.0/8")
        assert ip("10.255.0.1") in pfx
        assert "10.0.0.1" in pfx
        assert ip("11.0.0.0") not in pfx

    def test_contains_prefix(self):
        assert prefix("10.1.0.0/16") in prefix("10.0.0.0/8")
        assert prefix("10.0.0.0/8") not in prefix("10.1.0.0/16")
        assert prefix("10.0.0.0/8") in prefix("10.0.0.0/8")

    def test_overlaps(self):
        assert prefix("10.0.0.0/8").overlaps(prefix("10.1.0.0/16"))
        assert prefix("10.1.0.0/16").overlaps(prefix("10.0.0.0/8"))
        assert not prefix("10.0.0.0/8").overlaps(prefix("11.0.0.0/8"))

    def test_intersection_nested(self):
        outer, inner = prefix("10.0.0.0/8"), prefix("10.1.0.0/16")
        assert outer.intersection(inner) == inner
        assert inner.intersection(outer) == inner

    def test_intersection_disjoint(self):
        assert prefix("10.0.0.0/8").intersection(prefix("11.0.0.0/8")) is None

    def test_subnets(self):
        subnets = list(prefix("10.0.0.0/30").subnets(32))
        assert [str(s) for s in subnets] == [
            "10.0.0.0/32",
            "10.0.0.1/32",
            "10.0.0.2/32",
            "10.0.0.3/32",
        ]
        with pytest.raises(ValueError):
            list(prefix("10.0.0.0/24").subnets(8))

    def test_supernet(self):
        assert prefix("10.1.0.0/16").supernet(8) == prefix("10.0.0.0/8")
        assert prefix("10.1.0.0/16").supernet() == prefix("10.0.0.0/15")
        with pytest.raises(ValueError):
            prefix("10.0.0.0/8").supernet(16)

    def test_sorting(self):
        assert prefix("9.0.0.0/8") < prefix("10.0.0.0/8") < prefix("10.0.0.0/9")

    def test_no_implicit_string_equality(self):
        assert prefix("10.0.0.0/8") != "10.0.0.0/8"

    def test_hashable(self):
        assert len({prefix("10.0.0.0/8"), prefix("10.1.2.3/8")}) == 1


class TestPrefixTrie:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0 and not trie
        assert trie.longest_match("10.0.0.1") is None

    def test_insert_lookup(self):
        trie = PrefixTrie()
        trie[prefix("10.0.0.0/8")] = "a"
        assert trie[prefix("10.0.0.0/8")] == "a"
        assert prefix("10.0.0.0/8") in trie
        assert len(trie) == 1

    def test_exact_match_only_for_getitem(self):
        trie = PrefixTrie()
        trie[prefix("10.0.0.0/8")] = "a"
        with pytest.raises(KeyError):
            trie[prefix("10.0.0.0/16")]

    def test_overwrite_keeps_size(self):
        trie = PrefixTrie()
        trie[prefix("10.0.0.0/8")] = "a"
        trie[prefix("10.0.0.0/8")] = "b"
        assert len(trie) == 1 and trie[prefix("10.0.0.0/8")] == "b"

    def test_delete(self):
        trie = PrefixTrie()
        trie[prefix("10.0.0.0/8")] = "a"
        del trie[prefix("10.0.0.0/8")]
        assert len(trie) == 0
        with pytest.raises(KeyError):
            del trie[prefix("10.0.0.0/8")]

    def test_get_default(self):
        trie = PrefixTrie()
        assert trie.get(prefix("10.0.0.0/8"), "missing") == "missing"

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie[prefix("10.0.0.0/8")] = "general"
        trie[prefix("10.1.0.0/16")] = "specific"
        matched, value = trie.longest_match("10.1.2.3")
        assert value == "specific" and matched == prefix("10.1.0.0/16")
        matched, value = trie.longest_match("10.2.0.1")
        assert value == "general" and matched == prefix("10.0.0.0/8")

    def test_longest_match_default_route(self):
        trie = PrefixTrie()
        trie[prefix("0.0.0.0/0")] = "default"
        assert trie.longest_match("203.0.113.7")[1] == "default"

    def test_longest_match_host_route(self):
        trie = PrefixTrie()
        trie[prefix("10.0.0.1/32")] = "host"
        assert trie.longest_match("10.0.0.1")[1] == "host"
        assert trie.longest_match("10.0.0.2") is None

    def test_covered_by(self):
        trie = PrefixTrie()
        trie[prefix("10.1.0.0/16")] = 1
        trie[prefix("10.2.0.0/16")] = 2
        trie[prefix("11.0.0.0/8")] = 3
        covered = dict(trie.covered_by(prefix("10.0.0.0/8")))
        assert covered == {prefix("10.1.0.0/16"): 1, prefix("10.2.0.0/16"): 2}

    def test_items_iterates_everything(self):
        entries = {prefix(f"10.{i}.0.0/16"): i for i in range(20)}
        trie = PrefixTrie(entries.items())
        assert dict(trie.items()) == entries
        assert set(trie.keys()) == set(entries)

    def test_zero_length_prefix_storable(self):
        trie = PrefixTrie()
        trie[prefix("0.0.0.0/0")] = "root"
        assert trie[prefix("0.0.0.0/0")] == "root"
        trie[prefix("128.0.0.0/1")] = "top-half"
        assert trie.longest_match("200.0.0.0")[1] == "top-half"
        assert trie.longest_match("1.0.0.0")[1] == "root"
