"""Unit tests for MAC addresses and the VMAC allocator block."""

import pytest

from repro.netutils.mac import MACAddress, MACAllocator, mac


class TestMACAddress:
    def test_parse_colon_hex(self):
        assert int(mac("00:00:00:00:00:ff")) == 255

    def test_round_trip(self):
        for text in ("00:00:00:00:00:00", "ff:ff:ff:ff:ff:ff", "08:00:27:a1:b2:c3"):
            assert str(mac(text)) == text

    def test_case_insensitive(self):
        assert mac("AA:BB:CC:DD:EE:FF") == mac("aa:bb:cc:dd:ee:ff")

    def test_from_int(self):
        assert str(MACAddress(0x080027000001)) == "08:00:27:00:00:01"

    def test_copy_constructor(self):
        original = mac("02:00:00:00:00:01")
        assert MACAddress(original) == original

    def test_rejects_bad_strings(self):
        for bad in ("0:0:0:0:0:0", "00-00-00-00-00-00", "00:00:00:00:00", "zz:00:00:00:00:00"):
            with pytest.raises(ValueError):
                mac(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MACAddress(1 << 48)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            MACAddress(3.14)

    def test_locally_administered_bit(self):
        assert mac("02:00:00:00:00:00").is_locally_administered
        assert not mac("08:00:27:00:00:01").is_locally_administered

    def test_ordering_and_hash(self):
        a, b = mac("02:00:00:00:00:01"), mac("02:00:00:00:00:02")
        assert a < b
        assert len({a, MACAddress(a), b}) == 2

    def test_no_implicit_string_equality(self):
        assert mac("02:00:00:00:00:01") != "02:00:00:00:00:01"


class TestMACAllocator:
    def test_sequential_allocation(self):
        allocator = MACAllocator(base="02:a5:00:00:00:00")
        first, second = allocator.allocate(), allocator.allocate()
        assert str(first) == "02:a5:00:00:00:00"
        assert str(second) == "02:a5:00:00:00:01"
        assert allocator.allocated == 2

    def test_allocations_are_locally_administered(self):
        allocator = MACAllocator()
        assert allocator.allocate().is_locally_administered

    def test_allocate_many(self):
        allocator = MACAllocator()
        addresses = list(allocator.allocate_many(10))
        assert len(set(addresses)) == 10

    def test_exhaustion(self):
        allocator = MACAllocator(capacity=2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_reset(self):
        allocator = MACAllocator()
        first = allocator.allocate()
        allocator.reset()
        assert allocator.allocate() == first
