"""Unit tests for MAC addresses and the VMAC allocator block."""

import pytest

from repro.netutils.mac import MACAddress, MACAllocator, mac


class TestMACAddress:
    def test_parse_colon_hex(self):
        assert int(mac("00:00:00:00:00:ff")) == 255

    def test_round_trip(self):
        for text in ("00:00:00:00:00:00", "ff:ff:ff:ff:ff:ff", "08:00:27:a1:b2:c3"):
            assert str(mac(text)) == text

    def test_case_insensitive(self):
        assert mac("AA:BB:CC:DD:EE:FF") == mac("aa:bb:cc:dd:ee:ff")

    def test_from_int(self):
        assert str(MACAddress(0x080027000001)) == "08:00:27:00:00:01"

    def test_copy_constructor(self):
        original = mac("02:00:00:00:00:01")
        assert MACAddress(original) == original

    def test_rejects_bad_strings(self):
        for bad in ("0:0:0:0:0:0", "00-00-00-00-00-00", "00:00:00:00:00", "zz:00:00:00:00:00"):
            with pytest.raises(ValueError):
                mac(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MACAddress(1 << 48)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            MACAddress(3.14)

    def test_locally_administered_bit(self):
        assert mac("02:00:00:00:00:00").is_locally_administered
        assert not mac("08:00:27:00:00:01").is_locally_administered

    def test_ordering_and_hash(self):
        a, b = mac("02:00:00:00:00:01"), mac("02:00:00:00:00:02")
        assert a < b
        assert len({a, MACAddress(a), b}) == 2

    def test_no_implicit_string_equality(self):
        assert mac("02:00:00:00:00:01") != "02:00:00:00:00:01"


class TestMACAllocator:
    def test_sequential_allocation(self):
        allocator = MACAllocator(base="02:a5:00:00:00:00")
        first, second = allocator.allocate(), allocator.allocate()
        assert str(first) == "02:a5:00:00:00:00"
        assert str(second) == "02:a5:00:00:00:01"
        assert allocator.allocated == 2

    def test_allocations_are_locally_administered(self):
        allocator = MACAllocator()
        assert allocator.allocate().is_locally_administered

    def test_allocate_many(self):
        allocator = MACAllocator()
        addresses = list(allocator.allocate_many(10))
        assert len(set(addresses)) == 10

    def test_exhaustion(self):
        allocator = MACAllocator(capacity=2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_reset(self):
        allocator = MACAllocator()
        first = allocator.allocate()
        allocator.reset()
        assert allocator.allocate() == first


class TestMACAllocatorBoundaries:
    def test_final_address_in_block_is_usable(self):
        allocator = MACAllocator(base="02:a5:00:00:00:00", capacity=3)
        last = None
        for _ in range(3):
            last = allocator.allocate()
        assert str(last) == "02:a5:00:00:00:02"
        with pytest.raises(RuntimeError, match="exhausted"):
            allocator.allocate()

    def test_exhausted_allocator_stays_exhausted(self):
        allocator = MACAllocator(capacity=1)
        allocator.allocate()
        for _ in range(3):
            with pytest.raises(RuntimeError):
                allocator.allocate()
        assert allocator.allocated == 1

    def test_reset_recovers_from_exhaustion(self):
        allocator = MACAllocator(capacity=2)
        list(allocator.allocate_many(2))
        with pytest.raises(RuntimeError):
            allocator.allocate()
        allocator.reset()
        assert allocator.allocated == 0
        assert str(allocator.allocate()) == "02:a5:00:00:00:00"

    def test_allocation_at_top_of_address_space(self):
        # A block ending exactly at ff:ff:ff:ff:ff:ff must not overflow
        # 48 bits on its final allocation.
        allocator = MACAllocator(base=(1 << 48) - 2, capacity=2)
        assert str(allocator.allocate()) == "ff:ff:ff:ff:ff:fe"
        assert str(allocator.allocate()) == "ff:ff:ff:ff:ff:ff"
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_allocate_many_stops_at_capacity(self):
        allocator = MACAllocator(capacity=3)
        with pytest.raises(RuntimeError):
            list(allocator.allocate_many(4))
        assert allocator.allocated == 3


class TestMACMask:
    def test_canonical_storage_zeroes_dont_care_bits(self):
        from repro.netutils.mac import MACMask

        masked = MACMask("06:ff:ff:ff:ff:ff", "ff:00:00:00:00:00")
        assert str(masked.value) == "06:00:00:00:00:00"
        assert masked == MACMask("06:00:00:00:00:00", "ff:00:00:00:00:00")
        assert hash(masked) == hash(MACMask("06:12:34:00:00:00", 0xFF0000000000))

    def test_matches_and_covers(self):
        from repro.netutils.mac import MACMask

        top_octet = MACMask("06:00:00:00:00:00", "ff:00:00:00:00:00")
        assert top_octet.matches(mac("06:12:34:56:78:9a"))
        assert not top_octet.matches(mac("02:a5:00:00:00:01"))
        narrower = MACMask("06:12:00:00:00:00", "ff:ff:00:00:00:00")
        assert top_octet.covers(narrower)
        assert not narrower.covers(top_octet)
        assert top_octet.covers(mac("06:00:00:00:00:07"))

    def test_intersect_merges_and_detects_disjoint(self):
        from repro.netutils.mac import MACMask

        a = MACMask("06:00:00:00:00:00", "ff:00:00:00:00:00")
        b = MACMask("00:34:00:00:00:00", "00:ff:00:00:00:00")
        merged = a.intersect(b)
        assert merged == MACMask("06:34:00:00:00:00", "ff:ff:00:00:00:00")
        conflict = MACMask("02:00:00:00:00:00", "ff:00:00:00:00:00")
        assert a.intersect(conflict) is None

    def test_intersect_with_exact_address_collapses(self):
        from repro.netutils.mac import MACMask

        a = MACMask("06:00:00:00:00:00", "ff:00:00:00:00:00")
        address = mac("06:12:34:56:78:9a")
        assert a.intersect(address) == address
        assert a.intersect(mac("08:00:27:00:00:01")) is None
        full = MACMask(address, (1 << 48) - 1)
        assert full.simplified() == address

    def test_header_match_with_masked_dstmac(self):
        from repro.netutils.mac import MACMask
        from repro.policy.classifier import HeaderMatch
        from repro.policy.packet import Packet

        masked = HeaderMatch(dstmac=MACMask("06:00:00:00:00:00", "ff:00:00:00:00:00"))
        assert masked.matches(Packet(dstmac="06:aa:bb:cc:dd:ee"))
        assert not masked.matches(Packet(dstmac="02:a5:00:00:00:01"))
        exact = HeaderMatch(dstmac="06:aa:bb:cc:dd:ee")
        assert masked.covers(exact)
        assert not exact.covers(masked)
        overlap = masked.intersect(exact)
        assert overlap is not None and overlap == exact
