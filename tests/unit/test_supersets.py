"""Unit tests for the superset VMAC encoder and its masked transforms."""

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Route
from repro.core import supersets as ss
from repro.core.fec import FECTable, PrefixGroup
from repro.core.supersets import (
    SupersetEncoder,
    default_delivery_classifier_superset,
    default_forwarding_classifier_superset,
    encoding_inputs,
    vmacify_outbound_superset,
)
from repro.core.vmac import VirtualNextHop
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress, MACMask
from repro.policy import fwd, match

P1 = IPv4Prefix("10.1.0.0/16")
P2 = IPv4Prefix("10.2.0.0/16")
P3 = IPv4Prefix("10.3.0.0/16")

PARTICIPANTS = frozenset({"A", "B", "C"})


def config3():
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [
            ("B1", "172.0.0.11", "08:00:27:00:00:11"),
            ("B2", "172.0.0.12", "08:00:27:00:00:12"),
        ],
    )
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    return config


def route(peer, prefix, next_hop, as_path=(65002, 65100), export_to=None):
    return Route(
        prefix,
        RouteAttributes(as_path=list(as_path), next_hop=next_hop),
        learned_from=peer,
        export_to=export_to,
    )


def encoded_group(encoder, group_id, prefixes, members, nexthop):
    vmac = encoder.encode(frozenset(members), nexthop)
    vnh = VirtualNextHop(IPv4Address(f"172.16.0.{group_id + 1}"), vmac)
    return PrefixGroup(group_id, frozenset(prefixes), vnh)


class TestEncoder:
    def test_roundtrip_decode(self):
        encoder = SupersetEncoder()
        vmac = encoder.encode(frozenset({"B", "C"}), "B")
        encoding = encoder.decode(vmac)
        assert encoding is not None
        roster = encoder.members_of(encoding.superset_id)
        carried = {
            roster[position]
            for position in range(ss.POSITION_BITS)
            if (encoding.position_mask >> position) & 1
        }
        assert carried == {"B", "C"}
        assert encoding.nexthop_id == encoder.nexthop_id("B")

    def test_serial_keeps_vmacs_distinct(self):
        encoder = SupersetEncoder()
        first = encoder.encode(frozenset({"B"}), "B")
        second = encoder.encode(frozenset({"B"}), "B")
        assert first != second
        assert encoder.decode(first)._replace(serial=0) == encoder.decode(
            second
        )._replace(serial=0)

    def test_overlapping_sets_share_a_superset(self):
        encoder = SupersetEncoder()
        first = encoder.decode(encoder.encode(frozenset({"A", "B"}), "A"))
        second = encoder.decode(encoder.encode(frozenset({"B", "C"}), "B"))
        assert first.superset_id == second.superset_id
        # existing positions never move when a roster grows
        assert encoder.position_of(first.superset_id, "A") == 0
        assert encoder.position_of(first.superset_id, "B") == 1
        assert encoder.position_of(first.superset_id, "C") == 2

    def test_disjoint_sets_get_fresh_supersets(self):
        encoder = SupersetEncoder()
        first = encoder.decode(encoder.encode(frozenset({"A"}), "A"))
        second = encoder.decode(encoder.encode(frozenset({"Z"}), "Z"))
        assert first.superset_id != second.superset_id

    def test_wide_member_set_spills_to_fallback(self):
        encoder = SupersetEncoder()
        members = frozenset(f"p{i}" for i in range(ss.POSITION_BITS + 1))
        vmac = encoder.encode(members, "p0")
        assert encoder.decode(vmac) is None
        assert not encoder.is_superset_vmac(vmac)
        assert encoder.spills == 1

    def test_serial_exhaustion_spills(self):
        encoder = SupersetEncoder()
        vmacs = [encoder.encode(frozenset({"B"}), "B") for _ in range(ss.MAX_SERIALS)]
        assert all(encoder.is_superset_vmac(v) for v in vmacs)
        assert len(set(int(v) for v in vmacs)) == ss.MAX_SERIALS
        spilled = encoder.encode(frozenset({"B"}), "B")
        assert not encoder.is_superset_vmac(spilled)
        assert encoder.spills == 1

    def test_id_space_overflow_triggers_recompute(self, monkeypatch):
        monkeypatch.setattr(ss, "MAX_SUPERSETS", 2)
        encoder = SupersetEncoder()
        wide = ss.POSITION_BITS  # full rosters: nothing can be absorbed
        encoder.encode(frozenset(f"a{i}" for i in range(wide)), None)
        encoder.encode(frozenset(f"b{i}" for i in range(wide)), None)
        assert encoder.superset_count == 2 and encoder.epoch == 0
        vmac = encoder.encode(frozenset(f"c{i}" for i in range(wide)), None)
        assert encoder.epoch == 1
        assert encoder.recomputes == 1
        assert encoder.superset_count == 1
        assert encoder.is_superset_vmac(vmac)

    def test_nexthop_ids_survive_recompute(self):
        encoder = SupersetEncoder()
        encoder.encode(frozenset({"B"}), "B")
        assigned = encoder.nexthop_id("B")
        encoder.recompute()
        assert encoder.nexthop_id("B") == assigned

    def test_policy_match_selects_only_carriers(self):
        encoder = SupersetEncoder()
        both = encoder.encode(frozenset({"B", "C"}), "B")
        only_b = encoder.encode(frozenset({"B"}), "B")
        sid = encoder.decode(both).superset_id
        match_c = encoder.policy_match(sid, encoder.position_of(sid, "C"))
        assert isinstance(match_c, MACMask)
        assert match_c.matches(both)
        assert not match_c.matches(only_b)
        assert not match_c.matches(MACAddress("08:00:27:00:00:11"))

    def test_nexthop_match_ignores_reserved_zero(self):
        encoder = SupersetEncoder()
        routeless = encoder.encode(frozenset({"B"}), None)
        via_b = encoder.encode(frozenset({"B"}), "B")
        mask = encoder.nexthop_match("B")
        assert mask.matches(via_b)
        assert not mask.matches(routeless)
        assert encoder.nexthop_match("unseen") is None

    def test_encoding_inputs_from_fingerprint(self):
        fingerprint = (
            ("B", 0xAC000001, None),
            ("C", 0xAC000002, frozenset({"A"})),
        )
        members, nexthop = encoding_inputs(fingerprint)
        assert members == frozenset({"B", "C"})
        assert nexthop == "B"
        assert encoding_inputs(()) == (frozenset(), None)


class TestVmacifySuperset:
    def reachable(self, target):
        return {"B": frozenset({P1, P2})}.get(target, frozenset())

    def test_one_masked_rule_covers_the_superset(self):
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B"}, "B")
        g1 = encoded_group(encoder, 1, {P2}, {"B", "C"}, "B")
        table = FECTable([g0, g1])
        classifier = (match(dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound_superset(
            classifier, PARTICIPANTS, self.reachable, table, encoder
        )
        assert len(rewritten) == 1
        matcher = rewritten[0].match.constraints["dstmac"]
        assert isinstance(matcher, MACMask)
        assert matcher.matches(g0.vnh.hardware)
        assert matcher.matches(g1.vnh.hardware)

    def test_partial_eligibility_falls_back_to_exact(self):
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B"}, "B")
        g1 = encoded_group(encoder, 1, {P2}, {"B", "C"}, "B")
        g2 = encoded_group(encoder, 2, {P3}, {"B", "C"}, "C")
        table = FECTable([g0, g1, g2])  # g2 carries B's bit but is ineligible
        classifier = (match(dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound_superset(
            classifier, PARTICIPANTS, self.reachable, table, encoder
        )
        matchers = [rule.match.constraints["dstmac"] for rule in rewritten.rules]
        assert matchers == [g0.vnh.hardware, g1.vnh.hardware]

    def test_spilled_group_gets_exact_rule(self):
        encoder = SupersetEncoder()
        wide = frozenset(f"p{i}" for i in range(ss.POSITION_BITS + 1)) | {"B"}
        g0 = encoded_group(encoder, 0, {P1, P2}, wide, "B")
        table = FECTable([g0])
        classifier = (match(dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound_superset(
            classifier, PARTICIPANTS, self.reachable, table, encoder
        )
        (rule,) = rewritten.rules
        assert rule.match.constraints["dstmac"] == g0.vnh.hardware

    def test_finer_dstip_constraint_survives_masked_rule(self):
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1, P2}, {"B"}, "B")
        table = FECTable([g0])
        narrow = IPv4Prefix("10.1.7.0/24")
        classifier = (match(dstip=narrow, dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound_superset(
            classifier,
            PARTICIPANTS,
            lambda t: frozenset({P1, P2}) if t == "B" else frozenset(),
            table,
            encoder,
        )
        (rule,) = rewritten.rules
        assert rule.match.constraints["dstip"] == narrow
        assert isinstance(rule.match.constraints["dstmac"], MACMask)


class TestDefaultForwardingSuperset:
    def test_single_masked_rule_per_nexthop(self):
        config = config3()
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B"}, "B")
        g1 = encoded_group(encoder, 1, {P2}, {"B", "C"}, "B")
        table = FECTable([g0, g1])
        ranked = {
            0: (route("B", P1, "172.0.0.11"),),
            1: (route("B", P2, "172.0.0.11"),),
        }
        classifier = default_forwarding_classifier_superset(
            config, table, lambda group: ranked[group.group_id], encoder
        )
        # one masked next-hop rule + 4 physical port rules
        assert len(classifier) == 5
        masked = classifier.rules[0]
        assert isinstance(masked.match.constraints["dstmac"], MACMask)
        assert masked.match.constraints["dstmac"].matches(g0.vnh.hardware)
        assert masked.match.constraints["dstmac"].matches(g1.vnh.hardware)

    def test_stale_nexthop_encoding_stays_exact(self):
        config = config3()
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B", "C"}, "C")  # stale: best is B
        table = FECTable([g0])
        classifier = default_forwarding_classifier_superset(
            config, table, lambda group: (route("B", P1, "172.0.0.11"),), encoder
        )
        exact = classifier.rules[0]
        assert exact.match.constraints["dstmac"] == g0.vnh.hardware
        # the exact rule precedes any masked rule, so exact wins
        masked = [
            rule
            for rule in classifier.rules
            if isinstance(rule.match.constraints.get("dstmac"), MACMask)
        ]
        assert classifier.rules.index(exact) < (
            classifier.rules.index(masked[0]) if masked else len(classifier)
        )

    def test_export_scope_exceptions_precede_masked_rule(self):
        config = config3()
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B", "C"}, "B")
        table = FECTable([g0])
        scoped = route("B", P1, "172.0.0.11", export_to=frozenset({"C"}))
        fallback = route("C", P1, "172.0.0.21", (65003, 65100, 65101))
        classifier = default_forwarding_classifier_superset(
            config, table, lambda group: (scoped, fallback), encoder
        )
        exception = classifier.rules[0]
        assert exception.match.constraints["port"] == "A1"
        assert exception.match.constraints["dstmac"] == g0.vnh.hardware


class TestDeliverySuperset:
    def test_uniform_port_collapses_to_masked_rule(self):
        config = config3()
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B"}, "B")
        g1 = encoded_group(encoder, 1, {P2}, {"B"}, "B")
        table = FECTable([g0, g1])
        classifier = default_delivery_classifier_superset(
            config.participant("B"),
            table,
            lambda group: (route("B", next(iter(group.prefixes)), "172.0.0.11"),),
            encoder,
        )
        # 2 physical-MAC rules + 1 masked delivery rule
        assert len(classifier) == 3
        masked = classifier.rules[-1]
        assert isinstance(masked.match.constraints["dstmac"], MACMask)
        assert masked.match.constraints["dstmac"].matches(g0.vnh.hardware)
        (action,) = masked.actions
        assert action.output_port == "B1"

    def test_split_ports_fall_back_to_exact(self):
        config = config3()
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B"}, "B")
        g1 = encoded_group(encoder, 1, {P2}, {"B"}, "B")
        table = FECTable([g0, g1])
        addresses = {0: "172.0.0.11", 1: "172.0.0.12"}  # B1 vs B2
        classifier = default_delivery_classifier_superset(
            config.participant("B"),
            table,
            lambda group: (
                route("B", next(iter(group.prefixes)), addresses[group.group_id]),
            ),
            encoder,
        )
        assert len(classifier) == 4
        exact = classifier.rules[2:]
        assert {rule.match.constraints["dstmac"] for rule in exact} == {
            g0.vnh.hardware,
            g1.vnh.hardware,
        }

    def test_non_announcer_gets_no_masked_rule(self):
        config = config3()
        encoder = SupersetEncoder()
        g0 = encoded_group(encoder, 0, {P1}, {"B"}, "B")
        table = FECTable([g0])
        classifier = default_delivery_classifier_superset(
            config.participant("C"),
            table,
            lambda group: (route("B", P1, "172.0.0.11"),),
            encoder,
        )
        assert len(classifier) == 1  # C's own physical-MAC rule only
