"""Unit tests for participant-facing API objects."""

from repro.core.participant import SDXPolicySet
from repro.policy import drop, fwd, match


class TestSDXPolicySet:
    def test_empty_detection(self):
        assert SDXPolicySet().is_empty
        assert not SDXPolicySet(outbound=fwd("B")).is_empty
        assert not SDXPolicySet(inbound=fwd("B1")).is_empty

    def test_equality_and_hash(self):
        a = SDXPolicySet(outbound=match(dstport=80) >> fwd("B"))
        b = SDXPolicySet(outbound=match(dstport=80) >> fwd("B"))
        c = SDXPolicySet(outbound=match(dstport=443) >> fwd("B"))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self):
        text = repr(SDXPolicySet(outbound=drop))
        assert "outbound=drop" in text


class TestParticipantHandle:
    def test_properties(self, figure1_controller):
        handle = figure1_controller.register_participant("B")
        assert handle.name == "B" and handle.asn == 65002
        assert handle.spec.port_ids == ("B1", "B2")
        assert "B" in repr(handle)

    def test_set_policies_without_recompile(self, figure1_controller):
        handle = figure1_controller.register_participant("A")
        handle.set_policies(outbound=match(dstport=80) >> fwd("B"), recompile=False)
        assert figure1_controller.last_compilation is None
        assert "A" in figure1_controller.policy.policies()
