"""Unit tests for the emulated IXP deployment builder."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.policy import fwd, match

from tests.conftest import load_figure1_routes, make_figure1_config


@pytest.fixture
def ixp():
    return EmulatedIXP(make_figure1_config())


class TestConstruction:
    def test_routers_built_per_participant(self, ixp):
        assert set(ixp.routers) == {"A", "B", "C"}
        assert ixp.routers["B"].asn == 65002
        assert {i.port for i in ixp.routers["B"].interfaces} == {"B1", "B2"}

    def test_switch_wired_to_router_ports(self, ixp):
        peer = ixp.fabric.peer(("sdx-fabric", "B2"))
        assert peer is not None and peer.node == "router-B"

    def test_remote_participant_gets_no_router(self):
        config = make_figure1_config()
        config.add_participant("D", 64496, [])
        deployment = EmulatedIXP(config)
        assert "D" not in deployment.routers

    def test_add_host_links_to_lan(self, ixp):
        host = ixp.add_host("client", "C", "204.57.0.67")
        assert ixp.hosts["client"] is host
        peer = ixp.fabric.peer(("client", "eth0"))
        assert peer is not None and peer.node == "lan-C"

    def test_duplicate_host_rejected(self, ixp):
        ixp.add_host("client", "C", "204.57.0.67")
        with pytest.raises(ValueError):
            ixp.add_host("client", "C", "204.57.0.68")

    def test_host_macs_unique(self, ixp):
        h1 = ixp.add_host("h1", "A", "1.0.0.1")
        h2 = ixp.add_host("h2", "B", "1.0.0.2")
        assert h1.hardware != h2.hardware

    def test_originate_marks_local_delivery(self, ixp):
        ixp.add_host("server", "B", "54.198.0.10", originate="54.198.0.0/17")
        assert any(
            str(p) == "54.198.0.0/17" for p in ixp.routers["B"].local_prefixes()
        )


class TestEndToEnd:
    def build(self, ixp):
        controller = ixp.controller
        load_figure1_routes(controller)
        ixp.add_host("client", "A", "50.0.0.1")
        a = controller.register_participant("A")
        a.set_policies(
            outbound=(match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")),
            recompile=False,
        )
        controller.compile()
        return controller

    def test_host_traffic_crosses_fabric(self, ixp):
        self.build(ixp)
        hops = ixp.send("client", dstip="10.1.2.3", dstport=80, srcport=5)
        assert hops > 0
        # HTTP to p1 diverts via B; B's router carries it upstream.
        assert ixp.carried_upstream_by("B") == 1
        assert ixp.carried_upstream_by("C") == 0

    def test_default_traffic_follows_best_route(self, ixp):
        self.build(ixp)
        ixp.send("client", dstip="10.1.2.3", dstport=22, srcport=5)
        assert ixp.carried_upstream_by("C") == 1

    def test_reset_traffic_counters(self, ixp):
        self.build(ixp)
        ixp.send("client", dstip="10.1.2.3", dstport=22, srcport=5)
        ixp.reset_traffic_counters()
        assert ixp.carried_upstream_by("C") == 0
        assert ixp.delivered_to("client") == 0

    def test_routers_receive_advertised_routes(self, ixp):
        controller = self.build(ixp)
        snapshot = ixp.routers["A"].rib_snapshot()
        advertised = {a.prefix for a in controller.advertisements("A")}
        assert set(snapshot) == advertised
