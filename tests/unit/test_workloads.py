"""Unit tests for the synthetic workload generators."""

import pytest

from repro.bgp.route_server import RouteServer
from repro.bgp.updates import trace_stats
from repro.netutils.ip import IPv4Prefix
from repro.workloads.policy_gen import generate_policies
from repro.workloads.prefixes import (
    allocate_prefix_pool,
    announcement_counts,
    skew_summary,
)
from repro.workloads.topology_gen import ASCategory, generate_ixp
from repro.workloads.update_gen import generate_update_trace

import random


class TestPrefixPool:
    def test_pool_is_disjoint(self):
        pool = allocate_prefix_pool(100)
        assert len(pool) == 100
        assert len(set(pool)) == 100
        for i in range(len(pool) - 1):
            assert not pool[i].overlaps(pool[i + 1])

    def test_pool_capacity_enforced(self):
        with pytest.raises(ValueError):
            allocate_prefix_pool(1 << 20)
        with pytest.raises(ValueError):
            allocate_prefix_pool(-1)

    def test_all_are_slash_24(self):
        assert all(p.length == 24 for p in allocate_prefix_pool(10))


class TestAnnouncementCounts:
    def test_sums_to_total(self):
        counts = announcement_counts(50, 1000, random.Random(1))
        assert sum(counts) == 1000
        assert len(counts) == 50

    def test_everyone_announces_at_least_one(self):
        counts = announcement_counts(100, 120, random.Random(1))
        assert min(counts) >= 1

    def test_requires_enough_prefixes(self):
        with pytest.raises(ValueError):
            announcement_counts(10, 5, random.Random(1))

    def test_skew_matches_paper_shape(self):
        counts = announcement_counts(300, 20000, random.Random(1))
        summary = skew_summary(counts)
        # ~1% of ASes announce a large share; bottom 90% a small share.
        assert summary["top_1pct_share"] > 0.3
        assert summary["bottom_90pct_share"] < 0.35

    def test_empty(self):
        assert announcement_counts(0, 0, random.Random(1)) == []
        assert skew_summary([]) == {"top_1pct_share": 0.0, "bottom_90pct_share": 0.0}


class TestTopologyGen:
    def test_deterministic_for_seed(self):
        a = generate_ixp(30, 500, seed=7)
        b = generate_ixp(30, 500, seed=7)
        assert a.participant_names == b.participant_names
        assert a.announced == b.announced
        assert a.categories == b.categories

    def test_counts(self):
        ixp = generate_ixp(40, 800, seed=1)
        assert len(ixp.participant_names) == 40
        assert sum(len(p) for p in ixp.announced.values()) == 800

    def test_categories_cover_all(self):
        ixp = generate_ixp(60, 600, seed=2)
        assert set(ixp.categories.values()) <= set(ASCategory.ALL)
        assert set(ixp.categories) == set(ixp.participant_names)

    def test_participants_in_sorted_by_prefix_count(self):
        ixp = generate_ixp(60, 600, seed=2)
        eyeballs = ixp.participants_in(ASCategory.EYEBALL)
        counts = [len(ixp.announced[name]) for name in eyeballs]
        assert counts == sorted(counts, reverse=True)

    def test_routes_load_into_route_server(self):
        ixp = generate_ixp(20, 200, seed=3)
        server = RouteServer()
        for name in ixp.participant_names:
            server.add_peer(name)
        server.load(ixp.updates)
        assert len(server.all_prefixes()) == 200

    def test_multihoming_creates_alternate_routes(self):
        ixp = generate_ixp(20, 200, seed=3, multihoming_fraction=1.0)
        server = RouteServer()
        for name in ixp.participant_names:
            server.add_peer(name)
        server.load(ixp.updates)
        multi = sum(
            1 for p in server.all_prefixes() if len(server.ranked_routes(p)) > 1
        )
        assert multi > 100

    def test_port_fraction(self):
        ixp = generate_ixp(100, 1000, seed=4, multi_port_fraction=1.0)
        assert all(len(ixp.config.participant(n).ports) == 2 for n in ixp.participant_names)


class TestPolicyGen:
    def test_deterministic(self):
        ixp = generate_ixp(50, 800, seed=5)
        a = generate_policies(ixp, seed=6)
        b = generate_policies(ixp, seed=6)
        assert a.policies == b.policies

    def test_only_head_participants_install(self):
        ixp = generate_ixp(60, 900, seed=5)
        workload = generate_policies(ixp, seed=6)
        assert 0 < len(workload.policies) < len(ixp.participant_names)
        assert workload.policy_count > 0

    def test_eyeballs_have_inbound_only(self):
        ixp = generate_ixp(60, 900, seed=5)
        workload = generate_policies(ixp, seed=6)
        for name in workload.policy_participants["eyeball"]:
            policy_set = workload.policies[name]
            assert policy_set.inbound is not None
            assert policy_set.outbound is None

    def test_policies_compile(self):
        ixp = generate_ixp(40, 600, seed=5)
        workload = generate_policies(ixp, seed=6)
        for policy_set in workload.policies.values():
            if policy_set.outbound is not None:
                assert len(policy_set.outbound.compile()) > 0
            if policy_set.inbound is not None:
                assert len(policy_set.inbound.compile()) > 0


class TestUpdateGen:
    def test_trace_is_time_ordered(self):
        ixp = generate_ixp(20, 300, seed=7)
        trace = generate_update_trace(ixp, bursts=30, seed=8)
        times = [u.time for u in trace.updates]
        assert times == sorted(times)

    def test_updates_reference_known_prefixes_and_owners(self):
        ixp = generate_ixp(20, 300, seed=7)
        trace = generate_update_trace(ixp, bursts=30, seed=8)
        owners = {
            prefix: name for name, prefixes in ixp.announced.items() for prefix in prefixes
        }
        for update in trace.updates:
            for prefix in update.prefixes:
                assert owners[prefix] == update.peer

    def test_active_fraction_bounds_touched_prefixes(self):
        ixp = generate_ixp(20, 500, seed=7)
        trace = generate_update_trace(ixp, bursts=200, seed=8, active_fraction=0.1)
        stats = trace_stats(trace.updates, ixp.all_prefixes())
        assert stats.fraction_prefixes_updated <= 0.1 + 1e-9

    def test_burst_size_distribution(self):
        ixp = generate_ixp(30, 3000, seed=7)
        trace = generate_update_trace(ixp, bursts=300, seed=9)
        stats = trace_stats(trace.updates, ixp.all_prefixes(), gap_threshold=2.0)
        small = sum(1 for size in stats.burst_sizes if size <= 3)
        assert small / stats.bursts > 0.6  # 75% target with sampling noise

    def test_trace_applies_to_route_server(self):
        ixp = generate_ixp(20, 300, seed=7)
        server = RouteServer()
        for name in ixp.participant_names:
            server.add_peer(name)
        server.load(ixp.updates)
        trace = generate_update_trace(ixp, bursts=20, seed=8)
        server.load(trace.updates)  # must not raise

    def test_requires_prefixes(self):
        ixp = generate_ixp(3, 3, seed=7)
        ixp = ixp._replace(announced={name: () for name in ixp.participant_names})
        with pytest.raises(ValueError):
            generate_update_trace(ixp, bursts=5)
