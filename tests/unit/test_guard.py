"""Unit tests for the guarded-commit engine and the admission plane.

Covers the :mod:`repro.guard` package in isolation plus its contact
points with the rest of the controller: the token bucket's refill
arithmetic, typed admission rejections with escalating backoff, the
deterministic probe sampler, the transaction checkpoint digest, the
guard's fail-open / fail-closed split, and the bounded incident log.
All clocks are injected so every timing assertion is deterministic.
"""

import pytest

from repro.core.controller import SDXController
from repro.core.participant import SDXPolicySet
from repro.guard import (
    AdmissionConfig,
    AnnouncementRateExceeded,
    GuardConfig,
    GuardIncident,
    PolicyEditRateExceeded,
    RuleBudgetExceeded,
    TokenBucket,
    changed_prefixes,
    probe_seed,
)
from repro.guard.commits import RollbackFailure
from repro.netutils.ip import IPv4Prefix
from repro.policy.language import fwd, match
from repro.resilience import FaultInjector

from tests.conftest import (
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)


class FakeClock:
    """A hand-cranked time source for the telemetry registry."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def make_controller(clock=None, **kwargs) -> SDXController:
    controller = SDXController(make_figure1_config(), **kwargs)
    if clock is not None:
        controller.telemetry.set_time_source(clock)
    return controller


# -- token bucket ------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, capacity=3, now=0.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True] * 3 + [False]

    def test_refills_at_rate_up_to_capacity(self):
        bucket = TokenBucket(rate=2.0, capacity=4, now=0.0)
        for _ in range(4):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.25)  # only 0.5 tokens accrued so far
        assert bucket.try_take(1.0, cost=2.0)  # 0.5 + 0.75s * 2/s = 2.0
        # after a long quiet period the bucket caps at capacity, not more
        assert bucket.try_take(100.0, cost=4.0)
        assert not bucket.try_take(100.0, cost=0.5)

    def test_deficit_delay_is_honest(self):
        bucket = TokenBucket(rate=2.0, capacity=2, now=0.0)
        bucket.try_take(0.0, cost=2.0)
        assert bucket.deficit_delay(0.0, cost=1.0) == pytest.approx(0.5)
        assert bucket.deficit_delay(0.5, cost=1.0) == pytest.approx(0.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0)

    def test_rewound_clock_does_not_freeze_refill(self):
        bucket = TokenBucket(rate=1.0, capacity=2, now=100.0)
        assert bucket.try_take(100.0, cost=2.0)
        # The sim clock resets to zero: negative elapsed is clamped (no
        # token windfall), and refill resumes on the new timeline
        # instead of waiting for t to climb back past 100.
        assert not bucket.try_take(0.0)
        assert bucket.deficit_delay(0.0, cost=1.0) == pytest.approx(1.0)
        assert bucket.try_take(2.0, cost=2.0)


# -- deterministic sampling --------------------------------------------------


class TestSampling:
    def test_probe_seed_is_deterministic_and_distinct(self):
        assert probe_seed(7, 3) == probe_seed(7, 3)
        seeds = {probe_seed(base, seq) for base in range(4) for seq in range(50)}
        assert len(seeds) == 4 * 50

    def test_changed_prefixes_empty_for_identical_tables(self):
        controller = make_controller()
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        fec = controller._last_result.fec_table
        assert changed_prefixes(fec, fec) == frozenset()

    def test_changed_prefixes_covers_everything_from_nothing(self):
        controller = make_controller()
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        fec = controller._last_result.fec_table
        touched = changed_prefixes(None, fec)
        every = set()
        for group in fec.groups:
            every.update(group.prefixes)
        assert touched == frozenset(every)

    def test_changed_prefixes_localizes_a_policy_edit(self):
        controller = make_controller()
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        before = controller._last_result.fec_table
        controller.policy.set_policies(
            "A",
            SDXPolicySet(outbound=(match(dstport=22) >> fwd("B"))),
            recompile=True,
        )
        after = controller._last_result.fec_table
        delta = changed_prefixes(before, after)
        unchanged_groups = {
            (g.prefixes, g.vnh) for g in before.groups
        } & {(g.prefixes, g.vnh) for g in after.groups}
        for prefixes, _ in unchanged_groups:
            assert not delta.intersection(prefixes)


# -- checkpoint digest -------------------------------------------------------


class TestCheckpointDigest:
    def test_digest_matches_content_hash_after_rollback(self):
        controller = make_controller()
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        table = controller.switch.table
        before = table.content_hash()
        try:
            with table.transaction() as txn:
                victim = next(iter(table))
                table.remove(victim)
                assert txn.checkpoint_digest() == before
                raise RuntimeError("force rollback")
        except RuntimeError:
            pass
        assert table.content_hash() == before

    def test_digest_diverges_when_commit_mutates(self):
        controller = make_controller()
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        table = controller.switch.table
        with table.transaction() as txn:
            table.remove(next(iter(table)))
            assert table.content_hash() != txn.checkpoint_digest()


# -- admission plane ---------------------------------------------------------


class TestAdmission:
    def test_unlimited_by_default(self):
        clock = FakeClock()
        controller = make_controller(clock, admission=AdmissionConfig())
        assert not controller.admission.config.enforcing
        load_figure1_routes(controller)
        policy = SDXPolicySet(outbound=(match(dstport=80) >> fwd("B")))
        for _ in range(50):
            controller.policy.set_policies("A", policy, recompile=False)
        assert controller.admission.snapshot() == {}

    def test_policy_edit_rate_rejection_is_typed(self):
        clock = FakeClock()
        controller = make_controller(
            clock,
            admission=AdmissionConfig(policy_edits_per_sec=1.0, policy_edit_burst=2),
        )
        load_figure1_routes(controller)
        policy = SDXPolicySet(outbound=(match(dstport=80) >> fwd("B")))
        controller.policy.set_policies("A", policy, recompile=False)
        controller.policy.set_policies("A", policy, recompile=False)
        with pytest.raises(PolicyEditRateExceeded) as excinfo:
            controller.policy.set_policies("A", policy, recompile=False)
        assert excinfo.value.participant == "A"
        assert excinfo.value.retry_after > 0

    def test_rejection_leaves_policy_state_untouched(self):
        clock = FakeClock()
        controller = make_controller(
            clock,
            admission=AdmissionConfig(policy_edits_per_sec=1.0, policy_edit_burst=1),
        )
        load_figure1_routes(controller)
        first = SDXPolicySet(outbound=(match(dstport=80) >> fwd("B")))
        controller.policy.set_policies("A", first, recompile=False)
        with pytest.raises(PolicyEditRateExceeded):
            controller.policy.set_policies(
                "A",
                SDXPolicySet(outbound=(match(dstport=22) >> fwd("C"))),
                recompile=False,
            )
        assert controller.policy.policies()["A"] is first

    def test_backoff_escalates_then_forgives(self):
        clock = FakeClock()
        config = AdmissionConfig(
            policy_edits_per_sec=1.0,
            policy_edit_burst=1,
            backoff_initial=0.5,
            backoff_factor=2.0,
            backoff_max=4.0,
        )
        controller = make_controller(clock, admission=config)
        load_figure1_routes(controller)
        policy = SDXPolicySet(outbound=(match(dstport=80) >> fwd("B")))
        admission = controller.admission

        controller.policy.set_policies("A", policy, recompile=False)
        with pytest.raises(PolicyEditRateExceeded):
            controller.policy.set_policies("A", policy, recompile=False)
        state = admission._tenants["A"]
        assert state.penalty == pytest.approx(0.5)
        assert state.rejected == 1

        # Hammering inside the window doubles the penalty each time,
        # capped at backoff_max.
        penalties = []
        for _ in range(5):
            with pytest.raises(PolicyEditRateExceeded):
                controller.policy.set_policies("A", policy, recompile=False)
            penalties.append(state.penalty)
        assert penalties == [pytest.approx(p) for p in (1.0, 2.0, 4.0, 4.0, 4.0)]
        assert admission.snapshot()["A"]["in_backoff"]

        # A full quiet penalty window after the backoff expires forgives.
        clock.advance(state.backoff_until + state.penalty + 1.0)
        controller.policy.set_policies("A", policy, recompile=False)
        assert state.penalty == 0.0

    def test_rewound_clock_shortens_stale_backoff(self):
        clock = FakeClock(start=100.0)
        controller = make_controller(
            clock,
            admission=AdmissionConfig(policy_edits_per_sec=1.0, policy_edit_burst=1),
        )
        load_figure1_routes(controller)
        policy = SDXPolicySet(outbound=(match(dstport=80) >> fwd("B")))
        controller.policy.set_policies("A", policy, recompile=False)
        with pytest.raises(PolicyEditRateExceeded):
            controller.policy.set_policies("A", policy, recompile=False)
        # The sim clock resets to zero.  The stale deadline (t=100.5)
        # must not lock the tenant out for the next hundred seconds of
        # the new timeline: at most the intended penalty is re-imposed.
        clock.now = 0.0
        with pytest.raises(PolicyEditRateExceeded) as excinfo:
            controller.policy.set_policies("A", policy, recompile=False)
        assert excinfo.value.retry_after < 2.0
        # One more touch re-anchors the rewound token bucket ...
        clock.now = 2.0
        with pytest.raises(PolicyEditRateExceeded):
            controller.policy.set_policies("A", policy, recompile=False)
        # ... after which tokens accrue on the new timeline as usual.
        clock.now = 10.0
        controller.policy.set_policies("A", policy, recompile=False)

    def test_announcement_cost_counts_prefixes(self):
        from repro.bgp.attributes import RouteAttributes

        clock = FakeClock()
        controller = make_controller(
            clock,
            admission=AdmissionConfig(
                announcements_per_sec=1.0, announcement_burst=4
            ),
        )
        attrs = RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        for i in range(4):
            controller.routing.announce("B", f"10.{i}.0.0/16", attrs)
        with pytest.raises(AnnouncementRateExceeded) as excinfo:
            controller.routing.announce("B", "10.9.0.0/16", attrs)
        assert excinfo.value.kind == "announcement"
        # other participants are unaffected by B's backoff
        controller.routing.announce(
            "C", "10.0.0.0/16", RouteAttributes(as_path=[65003], next_hop="172.0.0.21")
        )

    def test_rule_budget_rejects_wide_policies_without_backoff(self):
        from repro.policy.language import parallel

        clock = FakeClock()
        controller = make_controller(
            clock, admission=AdmissionConfig(compiled_rule_budget=2)
        )
        load_figure1_routes(controller)
        wide = SDXPolicySet(
            outbound=parallel(
                *(match(dstport=port) >> fwd("B") for port in (80, 443, 22, 8080))
            )
        )
        with pytest.raises(RuleBudgetExceeded):
            controller.policy.set_policies("A", wide, recompile=False)
        # A size cap is not a pacing problem: no backoff window opened,
        # and a narrow policy is admitted immediately.
        controller.policy.set_policies(
            "A",
            SDXPolicySet(outbound=(match(dstport=80) >> fwd("B"))),
            recompile=False,
        )

    def test_metrics_and_snapshot(self):
        clock = FakeClock()
        controller = make_controller(
            clock,
            admission=AdmissionConfig(policy_edits_per_sec=1.0, policy_edit_burst=1),
        )
        load_figure1_routes(controller)
        policy = SDXPolicySet(outbound=(match(dstport=80) >> fwd("B")))
        controller.policy.set_policies("A", policy, recompile=False)
        with pytest.raises(PolicyEditRateExceeded):
            controller.policy.set_policies("A", policy, recompile=False)
        registry = controller.telemetry
        assert registry.get("sdx_admission_allowed_total").total() >= 1
        assert (
            registry.get("sdx_admission_rejections_total").value(
                participant="A", kind="policy_edit"
            )
            == 1
        )
        assert registry.get("sdx_admission_throttled_participants").value() == 1
        snap = controller.admission.snapshot()["A"]
        assert snap["rejected"] == 1 and snap["in_backoff"]


# -- guarded commits ---------------------------------------------------------


# Seed 3 is pinned: with a 16-probe budget it deterministically samples
# a probe that traverses the corrupted rule in the fault-injection tests
# below (detection is sampled, so the seed is part of the test vector).
def guarded_controller(**config) -> SDXController:
    controller = make_controller(
        guard=GuardConfig(probe_budget=16, seed=3, **config)
    )
    load_figure1_routes(controller)
    return controller


class TestCommitGuard:
    def test_clean_commit_reports_verified(self):
        controller = guarded_controller()
        install_figure1_policies(controller)
        report = controller.guard.last_report
        assert report is not None and report.ok
        assert report.probes == 16
        assert report.seed == probe_seed(3, report.commit_seq)
        assert controller.guard.incidents == ()

    def test_noop_background_tick_skips_the_check(self):
        controller = guarded_controller()
        install_figure1_policies(controller)
        seq = controller.guard._commit_seq
        report = controller.run_background_recompilation()
        assert report is not None and report.verified is None
        assert controller.guard._commit_seq == seq

    def test_commit_report_carries_guard_report(self):
        controller = guarded_controller()
        install_figure1_policies(controller, recompile=False)
        report = controller.compile()
        assert report.verified is not None and report.verified.ok

    def test_disabled_guard_is_inert(self):
        controller = make_controller(guard=GuardConfig(enabled=False))
        load_figure1_routes(controller)
        install_figure1_policies(controller)
        assert controller.guard.last_report is None

    def test_probe_failure_fails_open(self):
        controller = guarded_controller()
        install_figure1_policies(controller)
        FaultInjector(seed=1).fail_probe(controller)
        before = controller.switch.table.content_hash()
        controller.policy.set_policies(
            "A",
            SDXPolicySet(outbound=(match(dstport=22) >> fwd("C"))),
            recompile=True,
        )
        # the commit stood (fail open) and the incident is on the record
        assert controller.switch.table.content_hash() != before
        incident = controller.guard.incidents[-1]
        assert incident.action == "probe-failure"
        assert "ProbeFailure" in incident.detail
        assert controller.ops.health().incidents[-1] is incident

    def test_rollback_fault_fails_closed(self):
        controller = guarded_controller()
        install_figure1_policies(controller)
        injector = FaultInjector(seed=1)
        injector.corrupt_commit(controller, participant="A")
        injector.fail_rollback(controller)
        with pytest.raises(RollbackFailure):
            controller.policy.set_policies(
                "A",
                SDXPolicySet(outbound=(match(dstport=22) >> fwd("C"))),
                recompile=True,
            )
        incident = controller.guard.incidents[-1]
        assert incident.action == "rollback-failure"
        # fail-closed: no quarantine claim was made
        assert "A" not in controller.ops.health().quarantined

    def test_incident_log_is_bounded(self):
        controller = guarded_controller(max_incidents=3)
        guard = controller.guard
        for seq in range(10):
            guard._record_incident(
                GuardIncident(
                    commit_seq=seq,
                    action="probe-failure",
                    participant=None,
                    detail="synthetic",
                    counterexample="",
                    seed=seq,
                )
            )
        assert len(guard.incidents) == 3
        assert [i.commit_seq for i in guard.incidents] == [7, 8, 9]

    def test_health_summary_mentions_guard_incidents(self):
        controller = guarded_controller()
        install_figure1_policies(controller)
        FaultInjector(seed=1).fail_probe(controller)
        controller.policy.set_policies(
            "A",
            SDXPolicySet(outbound=(match(dstport=22) >> fwd("C"))),
            recompile=True,
        )
        assert "guard incident" in controller.ops.health().summary()

    def test_ops_verify_accepts_budget_and_replays_guard_seed(self):
        controller = guarded_controller()
        install_figure1_policies(controller)
        report = controller.guard.last_report
        replay = controller.ops.verify(budget=16, seed=report.seed)
        assert replay.ok
        assert replay.probes == 16
