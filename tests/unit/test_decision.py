"""Unit tests for the BGP decision process."""

from repro.bgp.attributes import Origin, RouteAttributes
from repro.bgp.decision import best_path, rank_routes
from repro.bgp.messages import Route


def route(
    peer,
    as_path=(65001, 65100),
    next_hop="172.0.0.1",
    local_pref=100,
    med=0,
    origin=Origin.IGP,
):
    return Route(
        "10.0.0.0/8",
        RouteAttributes(
            as_path=list(as_path),
            next_hop=next_hop,
            local_pref=local_pref,
            med=med,
            origin=origin,
        ),
        learned_from=peer,
    )


class TestBestPath:
    def test_empty(self):
        assert best_path([]) is None

    def test_single(self):
        only = route("B")
        assert best_path([only]) is only

    def test_local_pref_dominates_path_length(self):
        long_but_preferred = route("B", as_path=(1, 2, 3, 4), local_pref=200)
        short = route("C", as_path=(1,), local_pref=100)
        assert best_path([short, long_but_preferred]) is long_but_preferred

    def test_shorter_as_path_wins(self):
        short = route("B", as_path=(65002, 65100))
        long = route("C", as_path=(65003, 65007, 65100))
        assert best_path([long, short]) is short

    def test_origin_breaks_path_tie(self):
        igp = route("B", origin=Origin.IGP)
        egp = route("C", origin=Origin.EGP)
        assert best_path([egp, igp]) is igp

    def test_med_compared_same_neighbor_as(self):
        low = route("B", as_path=(65002, 65100), med=5, next_hop="172.0.0.9")
        high = route("C", as_path=(65002, 65100), med=50, next_hop="172.0.0.1")
        # same first AS -> MED applies, lower wins despite higher next-hop
        assert best_path([high, low]) is low

    def test_med_ignored_across_neighbor_ases(self):
        b = route("B", as_path=(65002, 65100), med=50, next_hop="172.0.0.1")
        c = route("C", as_path=(65003, 65100), med=5, next_hop="172.0.0.2")
        # different neighbor AS -> MED skipped, lower next-hop wins
        assert best_path([c, b]) is b

    def test_always_compare_med(self):
        b = route("B", as_path=(65002, 65100), med=50, next_hop="172.0.0.1")
        c = route("C", as_path=(65003, 65100), med=5, next_hop="172.0.0.2")
        assert best_path([b, c], always_compare_med=True) is c

    def test_next_hop_tiebreak(self):
        low_nh = route("B", next_hop="172.0.0.1")
        high_nh = route("C", next_hop="172.0.0.2")
        assert best_path([high_nh, low_nh]) is low_nh

    def test_peer_name_final_tiebreak(self):
        a = route("A")
        b = route("B")
        assert best_path([b, a]) is a


class TestRankRoutes:
    def test_total_order_is_deterministic(self):
        routes = [
            route("C", as_path=(1, 2, 3)),
            route("A", local_pref=200),
            route("B", as_path=(1, 2)),
        ]
        ranked = rank_routes(routes)
        assert [r.learned_from for r in ranked] == ["A", "B", "C"]
        # permutation invariance
        ranked2 = rank_routes(list(reversed(routes)))
        assert [r.learned_from for r in ranked2] == ["A", "B", "C"]

    def test_rank_includes_all(self):
        routes = [route(chr(ord("A") + i)) for i in range(5)]
        assert len(rank_routes(routes)) == 5

    def test_best_is_rank_zero(self):
        routes = [route("B", as_path=(1, 2)), route("C", as_path=(1,))]
        assert rank_routes(routes)[0] is best_path(routes)
