"""Unit tests for HeaderMatch, Action, Rule, and Classifier composition."""

import pytest

from repro.netutils.ip import IPv4Prefix
from repro.policy.classifier import (
    Action,
    Classifier,
    HeaderMatch,
    Rule,
    sequence_rule,
)
from repro.policy.packet import Packet


class TestHeaderMatch:
    def test_universal_matches_everything(self):
        assert HeaderMatch.ANY.matches(Packet())
        assert HeaderMatch.ANY.matches(Packet(dstport=80))
        assert HeaderMatch.ANY.is_universal

    def test_field_constraint(self):
        m = HeaderMatch(dstport=80)
        assert m.matches(Packet(dstport=80))
        assert not m.matches(Packet(dstport=443))
        assert not m.matches(Packet())  # missing field fails

    def test_prefix_constraint(self):
        m = HeaderMatch(dstip="10.0.0.0/8")
        assert m.matches(Packet(dstip="10.1.2.3"))
        assert not m.matches(Packet(dstip="11.0.0.1"))

    def test_intersect_disjoint_ports(self):
        assert HeaderMatch(dstport=80).intersect(HeaderMatch(dstport=443)) is None

    def test_intersect_merges_fields(self):
        merged = HeaderMatch(dstport=80).intersect(HeaderMatch(srcport=1))
        assert merged == HeaderMatch(dstport=80, srcport=1)

    def test_intersect_prefixes_takes_longer(self):
        merged = HeaderMatch(dstip="10.0.0.0/8").intersect(HeaderMatch(dstip="10.1.0.0/16"))
        assert merged.constraints["dstip"] == IPv4Prefix("10.1.0.0/16")

    def test_covers(self):
        general = HeaderMatch(dstip="10.0.0.0/8")
        specific = HeaderMatch(dstip="10.1.0.0/16", dstport=80)
        assert general.covers(specific)
        assert not specific.covers(general)
        assert HeaderMatch.ANY.covers(general)

    def test_covers_requires_field_presence(self):
        assert not HeaderMatch(dstport=80).covers(HeaderMatch(srcport=80))

    def test_disjoint_from(self):
        assert HeaderMatch(dstport=80).disjoint_from(HeaderMatch(dstport=443))
        assert not HeaderMatch(dstport=80).disjoint_from(HeaderMatch(srcport=1))

    def test_restrict_and_without(self):
        m = HeaderMatch(dstport=80)
        assert m.restrict("port", "A1") == HeaderMatch(dstport=80, port="A1")
        assert m.restrict("dstport", 443) is None
        assert HeaderMatch(dstport=80, port="A1").without("port") == m

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderMatch(bogus=1)

    def test_hash_equality(self):
        assert len({HeaderMatch(dstport=80), HeaderMatch(dstport=80)}) == 1


class TestAction:
    def test_identity(self):
        pkt = Packet(dstport=80)
        assert Action.IDENTITY.apply(pkt) is pkt
        assert Action.IDENTITY.is_identity

    def test_apply_rewrites(self):
        out = Action(port="B", dstip="1.2.3.4").apply(Packet(dstport=80, port="A1"))
        assert out["port"] == "B" and str(out["dstip"]) == "1.2.3.4"

    def test_output_port(self):
        assert Action(port="B").output_port == "B"
        assert Action(dstip="1.2.3.4").output_port is None

    def test_then_later_wins(self):
        combined = Action(port="B", tos=1).then(Action(port="C"))
        assert combined.output_port == "C"
        assert combined.get("tos") == 1

    def test_commute_match_constraint_satisfied(self):
        # action sets dstip to a value inside the match's prefix
        action = Action(dstip="10.1.1.1")
        pre = action.commute_match(HeaderMatch(dstip="10.0.0.0/8", dstport=80))
        assert pre == HeaderMatch(dstport=80)

    def test_commute_match_constraint_violated(self):
        action = Action(dstip="11.0.0.1")
        assert action.commute_match(HeaderMatch(dstip="10.0.0.0/8")) is None

    def test_commute_match_untouched_fields_survive(self):
        pre = Action(port="B").commute_match(HeaderMatch(dstport=80))
        assert pre == HeaderMatch(dstport=80)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            Action(bogus=1)


class TestRule:
    def test_drop_rule(self):
        rule = Rule(HeaderMatch.ANY, ())
        assert rule.is_drop
        assert rule.eval(Packet(dstport=80)) == frozenset()

    def test_multicast_rule(self):
        rule = Rule(HeaderMatch.ANY, (Action(port="B"), Action(port="C")))
        outputs = rule.eval(Packet(dstport=80))
        assert {p["port"] for p in outputs} == {"B", "C"}

    def test_equality(self):
        a = Rule(HeaderMatch(dstport=80), (Action(port="B"),))
        b = Rule(HeaderMatch(dstport=80), (Action(port="B"),))
        assert a == b and hash(a) == hash(b)


def classify(*rules):
    return Classifier(rules)


FWD_B = Action(port="B")
FWD_C = Action(port="C")


class TestClassifier:
    def test_first_match_wins(self):
        c = classify(
            Rule(HeaderMatch(dstport=80), (FWD_B,)),
            Rule(HeaderMatch.ANY, (FWD_C,)),
        )
        assert c.eval(Packet(dstport=80)) == frozenset({Packet(dstport=80, port="B")})
        assert c.eval(Packet(dstport=22)) == frozenset({Packet(dstport=22, port="C")})

    def test_no_match_drops(self):
        c = classify(Rule(HeaderMatch(dstport=80), (FWD_B,)))
        assert c.eval(Packet(dstport=22)) == frozenset()

    def test_parallel_union_of_outputs(self):
        c1 = classify(Rule(HeaderMatch(dstport=80), (FWD_B,)))
        c2 = classify(Rule(HeaderMatch(srcport=9), (FWD_C,)))
        combined = c1 + c2
        both = Packet(dstport=80, srcport=9)
        assert {p["port"] for p in combined.eval(both)} == {"B", "C"}
        only_b = Packet(dstport=80, srcport=1)
        assert {p["port"] for p in combined.eval(only_b)} == {"B"}
        only_c = Packet(dstport=22, srcport=9)
        assert {p["port"] for p in combined.eval(only_c)} == {"C"}
        neither = Packet(dstport=22, srcport=1)
        assert combined.eval(neither) == frozenset()

    def test_sequential_feeds_outputs(self):
        c1 = classify(Rule(HeaderMatch(dstport=80), (Action(port="mid"),)))
        c2 = classify(Rule(HeaderMatch(port="mid"), (Action(port="out"),)))
        composed = c1 >> c2
        assert composed.eval(Packet(dstport=80, port="in")) == frozenset(
            {Packet(dstport=80, port="out")}
        )
        # a packet c1 drops must not reach c2
        assert composed.eval(Packet(dstport=22, port="mid")) == frozenset()

    def test_sequential_seals_upstream_region(self):
        # c1's first rule matches dstport=80; if c2 drops those packets they
        # must NOT fall through to c1's second rule.
        c1 = classify(
            Rule(HeaderMatch(dstport=80), (Action(port="x"),)),
            Rule(HeaderMatch.ANY, (Action(port="y"),)),
        )
        c2 = classify(Rule(HeaderMatch(port="y"), (Action.IDENTITY,)))
        composed = c1 >> c2
        assert composed.eval(Packet(dstport=80)) == frozenset()
        assert composed.eval(Packet(dstport=22)) == frozenset({Packet(dstport=22, port="y")})

    def test_sequential_action_rewrite_enables_downstream_match(self):
        c1 = classify(Rule(HeaderMatch.ANY, (Action(dstip="10.1.1.1"),)))
        c2 = classify(Rule(HeaderMatch(dstip="10.0.0.0/8"), (FWD_B,)))
        composed = c1 >> c2
        out = composed.eval(Packet(dstip="99.0.0.1"))
        assert out == frozenset({Packet(dstip="10.1.1.1", port="B")})

    def test_sequential_multicast(self):
        c1 = classify(Rule(HeaderMatch.ANY, (FWD_B, FWD_C)))
        c2 = classify(
            Rule(HeaderMatch(port="B"), (Action(port="B1"),)),
            Rule(HeaderMatch(port="C"), (Action(port="C1"),)),
        )
        out = (c1 >> c2).eval(Packet(dstport=80))
        assert {p["port"] for p in out} == {"B1", "C1"}

    def test_optimized_removes_shadowed(self):
        c = classify(
            Rule(HeaderMatch(dstport=80), (FWD_B,)),
            Rule(HeaderMatch(dstport=80), (FWD_C,)),  # exact shadow
            Rule(HeaderMatch(dstport=80, srcport=1), (FWD_C,)),  # covered
            Rule(HeaderMatch(srcport=2), (FWD_C,)),  # live
        ).optimized()
        assert len(c) == 2

    def test_optimized_drops_trailing_universal_drop(self):
        c = classify(
            Rule(HeaderMatch(dstport=80), (FWD_B,)),
            Rule(HeaderMatch.ANY, ()),
        ).optimized()
        assert len(c) == 1

    def test_optimized_large_classifier_dedupes_only(self):
        rules = [Rule(HeaderMatch(dstport=port % 100), (FWD_B,)) for port in range(5000)]
        c = Classifier(rules)
        assert len(c.optimized()) == 100

    def test_first_match_and_counters_free(self):
        c = classify(Rule(HeaderMatch(dstport=80), (FWD_B,)))
        assert c.first_match(Packet(dstport=80)) is c.rules[0]
        assert c.first_match(Packet(dstport=22)) is None

    def test_sequence_rule_with_resolver(self):
        rule = Rule(HeaderMatch(dstport=80), (Action(port="B"), Action(port="C")))
        b_block = classify(Rule(HeaderMatch(port="B"), (Action(port="B1"),)))
        resolved = sequence_rule(
            rule, lambda action: b_block if action.output_port == "B" else None
        )
        composed = Classifier(resolved)
        out = composed.eval(Packet(dstport=80))
        # B's branch resolves; C's branch has no downstream -> dropped.
        assert {p["port"] for p in out} == {"B1"}

    def test_len_iter_getitem(self):
        rules = [Rule(HeaderMatch(dstport=80), (FWD_B,)), Rule(HeaderMatch.ANY, ())]
        c = Classifier(rules)
        assert len(c) == 2 and list(c) == rules and c[0] == rules[0]
