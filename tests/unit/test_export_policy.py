"""Unit tests for community-based export control."""

import pytest

from repro.bgp.attributes import Community, RouteAttributes
from repro.bgp.export_policy import NO_EXPORT, export_scope_from_communities
from repro.bgp.route_server import RouteServer

PEERS = ["A", "B", "C"]
ASNS = {"A": 65001, "B": 65002, "C": 65003}
RS_ASN = 64512


def scope(communities):
    return export_scope_from_communities(
        [Community(*c) for c in communities], PEERS, ASNS, RS_ASN
    )


class TestTranslation:
    def test_no_communities_means_everyone(self):
        assert scope([]) is None

    def test_block_one_peer(self):
        assert scope([(0, 65001)]) == frozenset({"B", "C"})

    def test_block_several(self):
        assert scope([(0, 65001), (0, 65002)]) == frozenset({"C"})

    def test_allow_list(self):
        assert scope([(RS_ASN, 65003)]) == frozenset({"C"})

    def test_allow_list_with_block(self):
        assert scope([(RS_ASN, 65002), (RS_ASN, 65003), (0, 65002)]) == frozenset({"C"})

    def test_block_everyone(self):
        assert scope([(0, 0)]) == frozenset()

    def test_no_export_well_known(self):
        assert export_scope_from_communities([NO_EXPORT], PEERS, ASNS, RS_ASN) == frozenset()

    def test_unknown_asn_in_community_ignored(self):
        # blocking a non-peer ASN is a no-op: unrestricted export
        assert scope([(0, 60000)]) is None

    def test_irrelevant_communities_ignored(self):
        assert scope([(65001, 120)]) is None


class TestRouteServerIntegration:
    def make_server(self):
        server = RouteServer(asn=RS_ASN)
        for peer in PEERS:
            server.add_peer(peer, asn=ASNS[peer])
        return server

    def test_community_hides_route_from_peer(self):
        server = self.make_server()
        server.announce(
            "B",
            "10.0.0.0/8",
            RouteAttributes(
                as_path=[65002, 65100],
                next_hop="172.0.0.11",
                communities=[f"0:{ASNS['A']}"],
            ),
        )
        assert server.best_route("A", "10.0.0.0/8") is None
        assert server.best_route("C", "10.0.0.0/8") is not None

    def test_allow_list_community(self):
        server = self.make_server()
        server.announce(
            "B",
            "10.0.0.0/8",
            RouteAttributes(
                as_path=[65002, 65100],
                next_hop="172.0.0.11",
                communities=[f"{RS_ASN}:{ASNS['C']}"],
            ),
        )
        assert server.best_route("A", "10.0.0.0/8") is None
        assert server.best_route("C", "10.0.0.0/8") is not None

    def test_explicit_export_to_takes_precedence(self):
        server = self.make_server()
        server.announce(
            "B",
            "10.0.0.0/8",
            RouteAttributes(
                as_path=[65002, 65100],
                next_hop="172.0.0.11",
                communities=[f"0:{ASNS['A']}"],
            ),
            export_to=["A"],
        )
        # the explicit scope wins over the community
        assert server.best_route("A", "10.0.0.0/8") is not None

    def test_without_rs_asn_communities_inert(self):
        server = RouteServer()
        for peer in PEERS:
            server.add_peer(peer, asn=ASNS[peer])
        server.announce(
            "B",
            "10.0.0.0/8",
            RouteAttributes(
                as_path=[65002, 65100],
                next_hop="172.0.0.11",
                communities=[f"0:{ASNS['A']}"],
            ),
        )
        assert server.best_route("A", "10.0.0.0/8") is not None
