"""Unit tests for BGP messages and routes."""

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Route, Withdrawal
from repro.netutils.ip import IPv4Prefix


def attrs(next_hop="172.0.0.1"):
    return RouteAttributes(as_path=[65001, 65100], next_hop=next_hop)


class TestAnnouncement:
    def test_prefix_coercion(self):
        announcement = Announcement("10.0.0.0/8", attrs())
        assert announcement.prefix == IPv4Prefix("10.0.0.0/8")

    def test_export_to_everyone_by_default(self):
        announcement = Announcement("10.0.0.0/8", attrs())
        assert announcement.export_to is None
        assert announcement.exported_to("anyone")

    def test_export_scoping(self):
        announcement = Announcement("10.0.0.0/8", attrs(), export_to=["C"])
        assert announcement.exported_to("C")
        assert not announcement.exported_to("A")

    def test_equality(self):
        assert Announcement("10.0.0.0/8", attrs()) == Announcement("10.0.0.0/8", attrs())
        assert Announcement("10.0.0.0/8", attrs()) != Announcement(
            "10.0.0.0/8", attrs(), export_to=["C"]
        )


class TestWithdrawal:
    def test_equality_and_hash(self):
        assert Withdrawal("10.0.0.0/8") == Withdrawal("10.0.0.0/8")
        assert len({Withdrawal("10.0.0.0/8"), Withdrawal("10.0.0.0/8")}) == 1


class TestBGPUpdate:
    def test_prefixes_union(self):
        update = BGPUpdate(
            "B",
            announced=[Announcement("10.0.0.0/8", attrs())],
            withdrawn=[Withdrawal("11.0.0.0/8")],
            time=12.5,
        )
        assert update.prefixes == {IPv4Prefix("10.0.0.0/8"), IPv4Prefix("11.0.0.0/8")}
        assert update.time == 12.5

    def test_empty_update(self):
        update = BGPUpdate("B")
        assert update.prefixes == frozenset()


class TestRoute:
    def test_fields(self):
        route = Route("10.0.0.0/8", attrs(), learned_from="B")
        assert route.prefix == IPv4Prefix("10.0.0.0/8")
        assert route.learned_from == "B"
        assert route.next_hop == attrs().next_hop

    def test_export_scope(self):
        route = Route("10.0.0.0/8", attrs(), learned_from="B", export_to=frozenset({"C"}))
        assert route.exported_to("C") and not route.exported_to("A")
        open_route = Route("10.0.0.0/8", attrs(), learned_from="B")
        assert open_route.exported_to("A")

    def test_equality_hash(self):
        a = Route("10.0.0.0/8", attrs(), learned_from="B")
        b = Route("10.0.0.0/8", attrs(), learned_from="B")
        c = Route("10.0.0.0/8", attrs(), learned_from="C")
        assert a == b and a != c
        assert len({a, b, c}) == 2
