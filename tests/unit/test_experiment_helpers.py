"""Unit tests for experiment-support helpers."""

import pytest

from repro.experiments.common import (
    Scenario,
    build_scenario,
    format_table,
    scaling_policies,
)
from repro.experiments.figure5 import Figure5aResult
from repro.experiments.scaling import ScalingPoint, ScalingResult


class TestBuildScenario:
    def test_scenario_components_consistent(self):
        scenario = build_scenario(participants=15, prefixes=200, seed=9)
        assert len(scenario.ixp.participant_names) == 15
        assert len(scenario.route_server.all_prefixes()) == 200
        assert scenario.workload.policies  # §6.1 mix installed something

    def test_without_policies(self):
        scenario = build_scenario(participants=10, prefixes=100, with_policies=False)
        assert scenario.workload.policies == {}

    def test_controller_factory_loads_routes_and_policies(self):
        scenario = build_scenario(participants=10, prefixes=100, seed=9)
        controller = scenario.controller()
        assert len(controller.route_server.all_prefixes()) == 100
        assert controller.policy.policies().keys() == scenario.workload.policies.keys()

    def test_compiler_factory_defaults_headless(self):
        scenario = build_scenario(participants=10, prefixes=100, seed=9)
        compiler = scenario.compiler()
        assert compiler.options.build_advertisements is False


class TestScalingPolicies:
    def test_policy_prefix_budget_respected(self):
        scenario = build_scenario(participants=12, prefixes=300, with_policies=False)
        policies = scaling_policies(scenario.ixp, policy_prefixes=40, chunk_size=5)
        # every clause names at most chunk_size prefixes
        total = 0
        for policy_set in policies.values():
            classifier = policy_set.outbound.compile()
            for rule in classifier.rules:
                constraint = rule.match.constraints.get("dstip")
                if constraint is not None:
                    total += 1
        assert total > 0

    def test_deterministic(self):
        scenario = build_scenario(participants=12, prefixes=300, with_policies=False)
        a = scaling_policies(scenario.ixp, policy_prefixes=40, seed=3)
        b = scaling_policies(scenario.ixp, policy_prefixes=40, seed=3)
        assert a == b


class TestResultHelpers:
    def test_scaling_result_series_filter(self):
        points = [
            ScalingPoint(100, 10, 12, 100, 1.0, 0.1),
            ScalingPoint(200, 10, 15, 150, 2.0, 0.2),
            ScalingPoint(100, 20, 25, 220, 3.0, 0.3),
        ]
        result = ScalingResult(points)
        assert [p.prefix_groups for p in result.series(100)] == [12, 25]
        assert [p.prefix_groups for p in result.series(200)] == [15]

    def test_figure5a_rates_at_steps(self):
        series = {
            "via-A": [(1.0, 3.0), (2.0, 2.0)],
            "via-B": [(1.0, 0.0), (2.0, 1.0)],
        }
        result = Figure5aResult(series, policy_time=1.5, withdrawal_time=3.0)
        assert result.rates_at(1.2) == {"via-A": 3.0, "via-B": 0.0}
        assert result.rates_at(2.5) == {"via-A": 2.0, "via-B": 1.0}
        assert result.rates_at(0.5) == {"via-A": 0.0, "via-B": 0.0}

    def test_format_table_handles_mixed_types(self):
        text = format_table(["name", "value"], [("x", 1), ("longer-name", 2.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer-name" in lines[3]
