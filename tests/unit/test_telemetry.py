"""Unit tests for the telemetry registry (counters, gauges, histograms,
spans, exposition, and the injectable time source)."""

import pytest

from repro.telemetry import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("sdx_things_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("sdx_updates_total", labels=("kind",))
        counter.inc(kind="announce")
        counter.inc(3, kind="withdraw")
        assert counter.value(kind="announce") == 1
        assert counter.value(kind="withdraw") == 3
        assert counter.total() == 4

    def test_cannot_decrease(self):
        counter = Counter("sdx_things_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_schema_enforced(self):
        counter = Counter("sdx_updates_total", labels=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(kind="announce", extra="nope")

    def test_bound_handle_updates_parent_series(self):
        counter = Counter("sdx_updates_total", labels=("kind",))
        bound = counter.bind(kind="announce")
        bound.inc()
        bound.inc(4)
        assert counter.value(kind="announce") == 5
        with pytest.raises(ValueError):
            bound.inc(-1)
        with pytest.raises(ValueError):
            counter.bind(wrong="label")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("sdx_rules")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_unset_series_reads_zero(self):
        assert Gauge("sdx_rules").value() == 0.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram("sdx_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.total() == pytest.approx(55.55)
        ((labels, series),) = list(histogram.series())
        assert labels == {}
        assert series.bucket_counts == [1, 1, 1, 1]

    def test_boundary_lands_in_its_own_bucket(self):
        # le-semantics: an observation equal to a boundary counts in it.
        histogram = Histogram("sdx_seconds", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        ((_, series),) = list(histogram.series())
        assert series.bucket_counts == [1, 0, 0]

    def test_percentile_exact_with_sample_window(self):
        histogram = Histogram("sdx_seconds", buckets=(1.0,), sample_window=100)
        for value in range(1, 101):
            histogram.observe(value / 100)
        assert histogram.percentile(50) == pytest.approx(0.51)
        assert histogram.percentile(99) == pytest.approx(1.0)

    def test_percentile_interpolates_without_samples(self):
        histogram = Histogram("sdx_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.6, 1.7):
            histogram.observe(value)
        p50 = histogram.percentile(50)
        assert 1.0 <= p50 <= 2.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("sdx_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("sdx_seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("sdx_seconds", buckets=(1.0, 1.0))

    def test_default_bucket_sets(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("sdx_c_total", "help")
        second = registry.counter("sdx_c_total")
        assert first is second

    def test_schema_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("sdx_c_total")
        with pytest.raises(ValueError):
            registry.gauge("sdx_c_total")
        registry.counter("sdx_l_total", labels=("kind",))
        with pytest.raises(ValueError):
            registry.counter("sdx_l_total", labels=("other",))

    def test_invalid_metric_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("has space")

    def test_time_source_is_injectable(self):
        ticks = iter([10.0, 25.0])
        registry = MetricsRegistry()
        registry.set_time_source(lambda: next(ticks))
        with registry.span("sdx_op_seconds") as span:
            pass
        assert span.seconds == pytest.approx(15.0)
        assert registry.histogram("sdx_op_seconds").total() == pytest.approx(15.0)

    def test_spans_are_recorded(self):
        registry = MetricsRegistry()
        with registry.span("sdx_op_seconds", phase="ast"):
            pass
        (record,) = registry.recent_spans()
        assert record.name == "sdx_op_seconds"
        assert ("phase", "ast") in record.labels


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter(
            "sdx_updates_total", "Updates applied", labels=("kind",)
        ).inc(3, kind="announce")
        registry.gauge("sdx_rules", "Installed rules").set(42)
        histogram = registry.histogram(
            "sdx_compile_seconds", "Compile time", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        return registry

    def test_prometheus_text_format(self):
        text = self.build().exposition()
        lines = text.splitlines()
        assert "# TYPE sdx_updates_total counter" in lines
        assert 'sdx_updates_total{kind="announce"} 3' in lines
        assert "# TYPE sdx_rules gauge" in lines
        assert "sdx_rules 42" in lines
        assert "# TYPE sdx_compile_seconds histogram" in lines
        assert 'sdx_compile_seconds_bucket{le="0.1"} 1' in lines
        assert 'sdx_compile_seconds_bucket{le="1"} 2' in lines
        assert 'sdx_compile_seconds_bucket{le="+Inf"} 2' in lines
        assert "sdx_compile_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_metrics_without_samples_are_skipped(self):
        registry = MetricsRegistry()
        registry.counter("sdx_never_incremented_total", "quiet")
        assert registry.exposition() == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("sdx_c_total", labels=("who",)).inc(who='pe"er\\x')
        text = registry.exposition()
        assert 'who="pe\\"er\\\\x"' in text

    def test_snapshot_round_trips_structure(self):
        snapshot = self.build().snapshot()
        assert snapshot["sdx_updates_total"]["type"] == "counter"
        (series,) = snapshot["sdx_updates_total"]["series"]
        assert series == {"labels": {"kind": "announce"}, "value": 3.0}
        (hist_series,) = snapshot["sdx_compile_seconds"]["series"]
        assert hist_series["count"] == 2
        assert hist_series["buckets"]["0.1"] == 1
        assert hist_series["buckets"]["+Inf"] == 2
