"""Unit tests for the delta fabric reconciliation engine
(``repro.dataplane.reconcile``)."""

from repro.dataplane.flowtable import FlowRule, FlowTable
from repro.dataplane.reconcile import (
    BASE_COOKIE,
    BASE_PRIORITY,
    CommitReport,
    RuleSpec,
    TablePatch,
    diff,
    is_base_cookie,
    target_specs,
)
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule


def spec(priority, cookie=(BASE_COOKIE, "t"), actions=(Action(port="out"),), **c):
    return RuleSpec(priority, HeaderMatch(**c), frozenset(actions), cookie)


def installed(priority, cookie=(BASE_COOKIE, "t"), actions=(Action(port="out"),), **c):
    return FlowRule(priority, HeaderMatch(**c), actions, cookie=cookie)


class TestIdentity:
    def test_rule_and_spec_identities_align(self):
        rule = installed(7, dstport=80)
        assert rule.identity == spec(3, dstport=80).identity

    def test_priority_excluded_from_identity(self):
        assert spec(1, dstport=80).identity == spec(99, dstport=80).identity

    def test_distinct_match_distinct_identity(self):
        assert spec(1, dstport=80).identity != spec(1, dstport=22).identity

    def test_distinct_cookie_distinct_identity(self):
        a = spec(1, cookie=(BASE_COOKIE, "policy", "A"), dstport=80)
        b = spec(1, cookie=(BASE_COOKIE, "policy", "B"), dstport=80)
        assert a.identity != b.identity

    def test_is_base_cookie(self):
        assert is_base_cookie((BASE_COOKIE, "policy", "A"))
        assert is_base_cookie((BASE_COOKIE,))
        assert not is_base_cookie(("fastpath", "10.0.0.0/8"))
        assert not is_base_cookie(BASE_COOKIE)  # bare string is not tagged
        assert not is_base_cookie(None)


class TestDiff:
    def test_empty_to_target_is_all_adds(self):
        patch = diff([], [spec(1, dstport=80), spec(2, dstport=22)])
        assert len(patch.adds) == 2
        assert not patch.removes and not patch.moves and patch.retained == 0

    def test_current_to_empty_is_all_removes(self):
        patch = diff([installed(1, dstport=80)], [])
        assert len(patch.removes) == 1
        assert not patch.adds and not patch.moves

    def test_identical_tables_are_noop(self):
        rules = [installed(5, dstport=80), installed(4, dstport=22)]
        specs = [spec(5, dstport=80), spec(4, dstport=22)]
        patch = diff(rules, specs)
        assert patch.is_noop
        assert patch.retained == 2
        assert patch.churn == 0

    def test_priority_shift_becomes_move_not_churn(self):
        rule = installed(5, dstport=80)
        patch = diff([rule], [spec(9, dstport=80)])
        assert patch.moves == [(rule, 9)]
        assert patch.churn == 0 and patch.retained == 0

    def test_changed_actions_are_remove_plus_add(self):
        rule = installed(5, actions=(Action(port="x"),), dstport=80)
        patch = diff([rule], [spec(5, actions=(Action(port="y"),), dstport=80)])
        assert patch.removes == [rule]
        assert len(patch.adds) == 1
        assert not patch.moves

    def test_duplicate_identities_pair_by_priority_order(self):
        # Two identical rules at different priorities, target shifts both:
        # they must pair 1:1 in priority order, producing two moves.
        low, high = installed(3, dstport=80), installed(8, dstport=80)
        patch = diff([high, low], [spec(4, dstport=80), spec(9, dstport=80)])
        assert sorted(patch.moves, key=lambda m: m[1]) == [(low, 4), (high, 9)]
        assert patch.churn == 0

    def test_duplicate_identity_surplus_is_removed(self):
        low, high = installed(3, dstport=80), installed(8, dstport=80)
        patch = diff([high, low], [spec(8, dstport=80)])
        assert patch.retained == 1
        assert patch.removes == [low]


class TestTargetSpecs:
    def _segments(self):
        seg_a = Classifier(
            [
                Rule(HeaderMatch(dstport=80), (Action(port="B1"),)),
                Rule(HeaderMatch(dstport=443), (Action(port="B2"),)),
            ]
        )
        seg_b = Classifier([Rule(HeaderMatch.ANY, (Action(port="C1"),))])
        return ((("policy", "A"), seg_a), (("default",), seg_b))

    def test_priorities_tile_contiguously(self):
        specs = target_specs(self._segments())
        assert sorted(s.priority for s in specs) == [
            BASE_PRIORITY + 1,
            BASE_PRIORITY + 2,
            BASE_PRIORITY + 3,
        ]

    def test_earlier_segments_sit_above_later_ones(self):
        specs = target_specs(self._segments())
        a = [s.priority for s in specs if s.cookie == (BASE_COOKIE, "policy", "A")]
        b = [s.priority for s in specs if s.cookie == (BASE_COOKIE, "default")]
        assert min(a) > max(b)

    def test_matches_install_classifier_layout(self):
        """The specs must reproduce the historical wipe-and-reinstall
        layout bit for bit (same priorities, same cookies)."""
        reference = FlowTable()
        remaining = 3
        for label, block in self._segments():
            base = BASE_PRIORITY + remaining - len(block.rules)
            reference.install_classifier(
                block, base_priority=base, cookie=(BASE_COOKIE, *label)
            )
            remaining -= len(block.rules)
        fresh = FlowTable()
        TablePatch(
            target_specs(self._segments()), [], [], 0
        ).apply(fresh)
        assert fresh.content_hash() == reference.content_hash()


class TestPatchApply:
    def test_apply_reaches_target_digest(self):
        table = FlowTable()
        rule_kept = table.install(installed(BASE_PRIORITY + 2, dstport=80))
        table.install(installed(BASE_PRIORITY + 1, dstport=22))
        target = [
            spec(BASE_PRIORITY + 3, dstport=80),  # moved
            spec(BASE_PRIORITY + 2, dstport=443),  # added
            # dstport=22 removed
        ]
        diff(list(table), target).apply(table)
        fresh = FlowTable()
        TablePatch(target, [], [], 0).apply(fresh)
        assert table.content_hash() == fresh.content_hash()
        assert rule_kept in list(table)

    def test_move_preserves_counters(self):
        table = FlowTable()
        rule = table.install(installed(BASE_PRIORITY + 1, dstport=80))
        rule.count(100)
        diff(list(table), [spec(BASE_PRIORITY + 9, dstport=80)]).apply(table)
        assert rule.packets == 1 and rule.bytes == 100
        assert rule.priority == BASE_PRIORITY + 9

    def test_rollback_restores_moved_priorities(self):
        table = FlowTable()
        rule = table.install(installed(BASE_PRIORITY + 1, dstport=80))
        before = table.content_hash()
        transaction = table.transaction()
        diff(list(table), [spec(BASE_PRIORITY + 9, dstport=80)]).apply(table)
        assert table.content_hash() != before
        transaction.rollback()
        assert rule.priority == BASE_PRIORITY + 1
        assert table.content_hash() == before


class TestCommitReport:
    def _report(self, **overrides):
        class _Result:
            segments = ("seg",)
            stats = {"x": 1}

        fields = dict(
            added=2, removed=1, retained=5, reprioritized=3, seconds=0.25
        )
        fields.update(overrides)
        return CommitReport(result=_Result(), **fields)

    def test_churn_counts_adds_and_removes_only(self):
        assert self._report().churn == 3

    def test_unknown_attributes_delegate_to_result(self):
        report = self._report()
        assert report.segments == ("seg",)
        assert report.stats == {"x": 1}

    def test_own_fields_do_not_delegate(self):
        assert self._report(added=0).added == 0


class TestPlacements:
    def segments(self):
        s1 = Classifier(
            [Rule(HeaderMatch(dstport=80), (Action(tos=1),))]
        )
        s2 = Classifier([Rule(HeaderMatch(tos=1), (Action(port="out"),))])
        return [(("policy", "a"), s1), (("vmac",), s2)]

    def test_target_specs_applies_placements(self):
        segments = self.segments()
        specs = target_specs(
            segments,
            placements={("policy", "a"): (0, 1), ("vmac",): (1, None)},
        )
        assert [(s.table, s.goto) for s in specs] == [(0, 1), (1, None)]
        # Global priority tiling is unchanged by placement.
        assert [s.priority for s in specs] == [
            s.priority for s in target_specs(segments)
        ]

    def test_placement_default_is_single_table(self):
        specs = target_specs(self.segments())
        assert all((s.table, s.goto) == (0, None) for s in specs)

    def test_placement_change_is_churn_not_retain(self):
        segments = self.segments()
        table = FlowTable()
        diff(
            (), target_specs(segments)
        ).apply(table)
        patch = diff(
            (rule for rule in table if is_base_cookie(rule.cookie)),
            target_specs(
                segments,
                placements={("policy", "a"): (0, 1), ("vmac",): (1, None)},
            ),
        )
        # Moving a segment to a new stage changes its rules' identity:
        # everything is re-installed, nothing silently "retained" in the
        # wrong stage.
        assert patch.retained == 0
        assert len(patch.adds) == 2 and len(patch.removes) == 2

    def test_patch_apply_installs_placed_rules(self):
        segments = self.segments()
        table = FlowTable()
        patch = diff(
            (),
            target_specs(
                segments,
                placements={("policy", "a"): (0, 1), ("vmac",): (1, None)},
            ),
        )
        patch.apply(table)
        from repro.policy.packet import Packet

        out = table.process(Packet(dstport=80))
        assert {p["port"] for p in out} == {"out"}
        assert table.table_ids() == (0, 1)
