"""Unit tests for the service-chaining building blocks."""

import pytest

from repro.core.chaining import (
    ServiceChain,
    chain_continuation_rules,
    chain_entry_block,
    validate_chains,
)
from repro.dataplane.appliance import MiddleboxAppliance
from repro.policy import Packet
from repro.policy.classifier import Action

from tests.conftest import make_figure1_config


class TestServiceChain:
    def test_equality_and_hash(self):
        a = ServiceChain("x", ["A1", "B1"])
        b = ServiceChain("x", ["A1", "B1"])
        c = ServiceChain("x", ["A1", "B1"], exit="C1")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_usable_as_forwarding_target(self):
        chain = ServiceChain("x", ["A1"])
        action = Action(port=chain)
        assert action.output_port is chain

    def test_repr(self):
        assert "exit='C1'" in repr(ServiceChain("x", ["A1"], exit="C1"))


class TestValidation:
    def test_hops_must_exist(self):
        config = make_figure1_config()
        with pytest.raises(ValueError):
            validate_chains([ServiceChain("x", ["NOPE"])], config)

    def test_valid_chain_passes(self):
        config = make_figure1_config()
        validate_chains([ServiceChain("x", ["C1", "C2"])], config)

    def test_cross_chain_port_reuse_rejected(self):
        config = make_figure1_config()
        with pytest.raises(ValueError):
            validate_chains(
                [ServiceChain("x", ["C1"]), ServiceChain("y", ["C1"])], config
            )


class TestRuleGeneration:
    def test_continuation_rules_link_hops(self):
        rules = chain_continuation_rules([ServiceChain("x", ["A1", "B1", "C1"])])
        assert len(rules) == 2
        assert rules[0].match.constraints["port"] == "A1"
        assert {a.output_port for a in rules[0].actions} == {"B1"}
        assert rules[1].match.constraints["port"] == "B1"
        assert {a.output_port for a in rules[1].actions} == {"C1"}

    def test_exit_rule_appended(self):
        rules = chain_continuation_rules([ServiceChain("x", ["A1"], exit="B")])
        assert len(rules) == 1
        assert rules[0].match.constraints["port"] == "A1"
        assert {a.output_port for a in rules[0].actions} == {"B"}

    def test_single_hop_no_exit_needs_no_rules(self):
        assert chain_continuation_rules([ServiceChain("x", ["A1"])]) == []

    def test_entry_block_moves_to_first_hop(self):
        block = chain_entry_block(ServiceChain("x", ["B1", "C1"]))
        out = block.eval(Packet(dstport=80))
        assert {p["port"] for p in out} == {"B1"}
        # no MAC rewrite on the way in
        (packet,) = out
        assert "dstmac" not in packet


class TestMiddleboxAppliance:
    def test_passes_through_by_default(self):
        box = MiddleboxAppliance("fw")
        packet = Packet(dstport=80)
        assert box.receive(packet, "wire") == [("wire", packet)]
        assert box.seen == [packet]

    def test_transform_applies(self):
        box = MiddleboxAppliance("fw", transform=lambda p: p.modify(tos=10))
        ((_, out),) = box.receive(Packet(dstport=80), "wire")
        assert out["tos"] == 10

    def test_transform_can_drop(self):
        box = MiddleboxAppliance("fw", transform=lambda p: None)
        assert box.receive(Packet(dstport=80), "wire") == []
        assert box.dropped == 1
        assert len(box.seen) == 1
