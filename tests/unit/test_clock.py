"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.clock import Simulator


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_runs_events_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(9.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 9.0
        assert sim.events_run == 3

    def test_ties_run_in_scheduling_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(1.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2]

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == [1]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert seen == [1, 5]

    def test_schedule_in_relative(self):
        sim = Simulator(start=100.0)
        seen = []
        sim.schedule_in(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_past_events_run_now(self):
        sim = Simulator(start=10.0)
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_in(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_schedule_every(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now), until=7.0)
        sim.run()
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_schedule_every_with_start(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), start=3.0, until=5.0)
        sim.run()
        assert ticks == [3.0, 4.0, 5.0]

    def test_schedule_every_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0, lambda: None)


class TestTimerHandles:
    def test_schedule_returns_active_handle(self):
        sim = Simulator()
        handle = sim.schedule(5.0, lambda: None)
        assert handle.active
        assert not handle.fired
        assert handle.at == 5.0

    def test_cancel_prevents_callback(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule_in(2.0, lambda: seen.append("x"))
        assert handle.cancel()
        sim.run()
        assert seen == []
        assert handle.cancelled and not handle.fired

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()

    def test_double_cancel_returns_false(self):
        handle = Simulator().schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_cancelled_events_do_not_count_as_run(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_run == 1

    def test_cancel_mid_run_skips_peer_event(self):
        sim = Simulator()
        seen = []
        later = sim.schedule(5.0, lambda: seen.append("later"))
        sim.schedule(1.0, lambda: later.cancel())
        sim.run()
        assert seen == []
        assert sim.now == 1.0

    def test_run_until_respects_cancelled_head(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1)).cancel()
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == []
        assert sim.now == 3.0
        sim.run_until(6.0)
        assert seen == [5]

    def test_schedule_every_handle_cancels_repetition(self):
        sim = Simulator()
        ticks = []
        handle = sim.schedule_every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, handle.cancel)
        sim.run()
        assert ticks == [0.0, 1.0, 2.0]

    def test_rearming_pattern(self):
        # The hold-timer idiom: each heartbeat cancels and re-arms.
        sim = Simulator()
        expiries = []
        state = {}

        def arm():
            if "timer" in state:
                state["timer"].cancel()
            state["timer"] = sim.schedule_in(3.0, lambda: expiries.append(sim.now))

        arm()
        sim.schedule(2.0, arm)
        sim.schedule(4.0, arm)
        sim.run()
        assert expiries == [7.0]
