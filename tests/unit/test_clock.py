"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.clock import Simulator


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_runs_events_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(9.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 9.0
        assert sim.events_run == 3

    def test_ties_run_in_scheduling_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(1.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2]

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run_until(3.0)
        assert seen == [1]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert seen == [1, 5]

    def test_schedule_in_relative(self):
        sim = Simulator(start=100.0)
        seen = []
        sim.schedule_in(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_past_events_run_now(self):
        sim = Simulator(start=10.0)
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_in(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_schedule_every(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(2.0, lambda: ticks.append(sim.now), until=7.0)
        sim.run()
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_schedule_every_with_start(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(1.0, lambda: ticks.append(sim.now), start=3.0, until=5.0)
        sim.run()
        assert ticks == [3.0, 4.0, 5.0]

    def test_schedule_every_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0, lambda: None)
