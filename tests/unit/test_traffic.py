"""Unit tests for traffic generation and rate metering."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.ixp.deployment import EmulatedIXP
from repro.ixp.traffic import PACKET_BYTES, RateMeter, UDPFlow
from repro.sim.clock import Simulator

from tests.conftest import load_figure1_routes, make_figure1_config


@pytest.fixture
def ixp():
    deployment = EmulatedIXP(make_figure1_config())
    load_figure1_routes(deployment.controller)
    deployment.add_host("client", "A", "50.0.0.1")
    deployment.controller.compile()
    return deployment


class TestUDPFlow:
    def test_packets_per_second_matches_rate(self, ixp):
        flow = UDPFlow(ixp, "client", rate_mbps=1.0, dstip="10.1.2.3", dstport=80)
        assert flow.packets_per_second == int(1_000_000 / 8 / PACKET_BYTES)

    def test_flow_sends_on_schedule(self, ixp):
        sim = Simulator()
        flow = UDPFlow(ixp, "client", rate_mbps=1.0, dstip="10.1.2.3", dstport=80, srcport=5)
        flow.start(sim, until=3.0)
        sim.run_until(3.0)
        assert flow.packets_sent == 3 * flow.packets_per_second

    def test_stop_halts_sending(self, ixp):
        sim = Simulator()
        flow = UDPFlow(ixp, "client", rate_mbps=1.0, dstip="10.1.2.3", dstport=80, srcport=5)
        flow.start(sim, until=10.0)
        sim.run_until(2.0)
        sent = flow.packets_sent
        flow.stop()
        sim.run_until(10.0)
        assert flow.packets_sent == sent


class TestRateMeter:
    def test_measures_mbps(self, ixp):
        sim = Simulator()
        flow = UDPFlow(ixp, "client", rate_mbps=2.0, dstip="10.1.2.3", dstport=22, srcport=5)
        meter = RateMeter(sim)
        meter.watch_upstream("via-C", ixp, "C")
        flow.start(sim, until=10.0)
        meter.start(until=10.0)
        sim.run_until(10.0)
        rate = meter.rates_at(8.0)["via-C"]
        assert abs(rate - 2.0) < 0.2

    def test_idle_counter_reads_zero(self, ixp):
        sim = Simulator()
        meter = RateMeter(sim)
        meter.watch_upstream("via-B", ixp, "B")
        meter.start(until=5.0)
        sim.run_until(5.0)
        assert meter.rates_at(4.0)["via-B"] == 0.0

    def test_watch_host(self, ixp):
        sim = Simulator()
        meter = RateMeter(sim)
        meter.watch_host("client-rx", ixp, "client")
        meter.start(until=2.0)
        sim.run_until(2.0)
        assert "client-rx" in meter.series

    def test_rates_at_before_any_sample(self, ixp):
        sim = Simulator()
        meter = RateMeter(sim)
        meter.watch_upstream("x", ixp, "B")
        assert meter.rates_at(0.0) == {"x": 0.0}
