"""Unit tests for the churn-replay scenario suite."""

import pytest

from repro.core.config import SDXConfig
from repro.core.controller import SDXController
from repro.guard import GuardConfig
from repro.runtime import RuntimeConfig
from repro.workloads.providers import load_fixture
from repro.workloads.scenarios import (
    SCENARIO_KINDS,
    ScenarioSpec,
    build_scenario_trace,
    correlated_withdrawal,
    failover_storm,
    replay,
    segment_bursts,
    stuck_routes,
)
from repro.workloads.serialization import dumps_trace
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import validate_trace


@pytest.fixture(scope="module")
def small_ixp():
    return load_fixture("ixp_small").build()


def _live_keys(updates, initial=frozenset()):
    live = set(initial)
    for update in updates:
        for announcement in update.announced:
            live.add((update.peer, announcement.prefix))
        for withdrawal in update.withdrawn:
            live.discard((update.peer, withdrawal.prefix))
    return live


class TestFailoverStorm:
    def test_valid_and_restores_the_table(self, small_ixp):
        spec = ScenarioSpec("t", "failover-storm", seed=9)
        trace = build_scenario_trace(small_ixp, spec)
        validate_trace(small_ixp, trace.updates)
        # After all waves the victim's session is back: the set of live
        # (peer, prefix) routes equals the starting table.
        initial = _live_keys(small_ixp.updates)
        assert _live_keys(trace.updates, initial) == initial

    def test_victim_withdraws_its_whole_table(self, small_ixp):
        victim = max(
            small_ixp.announced, key=lambda n: len(small_ixp.announced[n])
        )
        spec = ScenarioSpec("t", "failover-storm", seed=9, params={"waves": 1})
        trace = build_scenario_trace(small_ixp, spec)
        withdrawn = {
            w.prefix
            for u in trace.updates
            if u.peer == victim
            for w in u.withdrawn
        }
        initial = _live_keys(small_ixp.updates)
        assert withdrawn == {p for n, p in initial if n == victim}

    def test_background_churn_comes_from_other_peers(self, small_ixp):
        victim = max(
            small_ixp.announced, key=lambda n: len(small_ixp.announced[n])
        )
        spec = ScenarioSpec("t", "failover-storm", seed=9)
        trace = build_scenario_trace(small_ixp, spec)
        others = {u.peer for u in trace.updates if u.peer != victim}
        assert others  # churn_per_burst > 0 by default


class TestStuckRoutes:
    def test_valid_and_leak_fully_drains(self, small_ixp):
        spec = ScenarioSpec("t", "stuck-routes", seed=4)
        trace = build_scenario_trace(small_ixp, spec)
        validate_trace(small_ixp, trace.updates)
        hijacker = sorted(
            small_ixp.announced,
            key=lambda n: (-len(small_ixp.announced[n]), n),
        )[1]
        leaked = [
            a.prefix
            for u in trace.updates
            if u.peer == hijacker
            for a in u.announced
        ]
        assert leaked
        withdrawn = [
            w.prefix
            for u in trace.updates
            if u.peer == hijacker
            for w in u.withdrawn
        ]
        assert sorted(leaked, key=str) == sorted(withdrawn, key=str)

    def test_cleanup_arrives_after_victim_flaps(self, small_ixp):
        spec = ScenarioSpec("t", "stuck-routes", seed=4)
        trace = build_scenario_trace(small_ixp, spec)
        hijacker = sorted(
            small_ixp.announced,
            key=lambda n: (-len(small_ixp.announced[n]), n),
        )[1]
        last_victim_event = max(
            u.time for u in trace.updates if u.peer != hijacker
        )
        first_cleanup = min(
            u.time for u in trace.updates if u.peer == hijacker and u.withdrawn
        )
        assert first_cleanup > last_victim_event


class TestCorrelatedWithdrawal:
    def test_valid_and_waves_share_a_burst(self, small_ixp):
        spec = ScenarioSpec(
            "t", "correlated-withdrawal", seed=2, params={"members": 4}
        )
        trace = build_scenario_trace(small_ixp, spec)
        validate_trace(small_ixp, trace.updates)
        bursts = segment_bursts(trace.updates)
        withdrawal_bursts = [
            b for b in bursts if any(u.withdrawn for u in b)
        ]
        assert withdrawal_bursts
        for burst in withdrawal_bursts:
            # The shared upstream failed for everyone at once.
            assert len({u.peer for u in burst}) > 1

    def test_recovery_staggers_one_member_per_burst(self, small_ixp):
        spec = ScenarioSpec(
            "t", "correlated-withdrawal", seed=2, params={"members": 4}
        )
        trace = build_scenario_trace(small_ixp, spec)
        for burst in segment_bursts(trace.updates):
            if all(u.announced for u in burst):
                assert len({u.peer for u in burst}) == 1


class TestSpecHandling:
    def test_unknown_kind_rejected(self, small_ixp):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            build_scenario_trace(small_ixp, ScenarioSpec("t", "meteor-strike"))

    def test_builders_are_deterministic(self, small_ixp):
        for kind in SCENARIO_KINDS:
            spec = ScenarioSpec("t", kind, seed=13)
            first = dumps_trace(build_scenario_trace(small_ixp, spec))
            second = dumps_trace(build_scenario_trace(small_ixp, spec))
            assert first == second, kind

    def test_seed_changes_the_trace(self, small_ixp):
        a = dumps_trace(
            build_scenario_trace(small_ixp, ScenarioSpec("t", "stuck-routes", seed=1))
        )
        b = dumps_trace(
            build_scenario_trace(small_ixp, ScenarioSpec("t", "stuck-routes", seed=2))
        )
        assert a != b

    def test_params_reach_the_builder(self, small_ixp):
        spec = ScenarioSpec(
            "t", "failover-storm", seed=9, params={"waves": 1, "burst_size": 10}
        )
        one_wave = build_scenario_trace(small_ixp, spec)
        two_waves = build_scenario_trace(
            small_ixp, spec._replace(params={"waves": 2, "burst_size": 10})
        )
        assert len(two_waves.updates) > len(one_wave.updates)

    def test_builders_accessible_directly(self, small_ixp):
        spec = ScenarioSpec("t", "ignored", seed=5)
        for builder in (failover_storm, stuck_routes, correlated_withdrawal):
            trace = builder(small_ixp, spec)
            validate_trace(small_ixp, trace.updates)


class TestSegmentBursts:
    def test_splits_on_gap(self, small_ixp):
        trace = build_scenario_trace(
            small_ixp, ScenarioSpec("t", "failover-storm", seed=9)
        )
        bursts = segment_bursts(trace.updates)
        assert sum(len(b) for b in bursts) == len(trace.updates)
        for left, right in zip(bursts, bursts[1:]):
            assert right[0].time - left[-1].time > 1.0
        for burst in bursts:
            for a, b in zip(burst, burst[1:]):
                assert b.time - a.time <= 1.0


class TestReplay:
    def _controller(self, ixp, runtime_mode="inline", coalesce=True):
        controller = SDXController(
            ixp.config,
            sdx=SDXConfig(
                runtime_mode=runtime_mode,
                runtime_config=(
                    RuntimeConfig(coalesce=coalesce)
                    if runtime_mode == "eventloop"
                    else None
                ),
                guard=GuardConfig(probe_budget=8, seed=1),
            ),
        )
        controller.route_server.load(ixp.updates)
        controller.compile()
        return controller

    def test_inline_replay_is_clean(self, small_ixp):
        trace = build_scenario_trace(
            small_ixp, ScenarioSpec("t", "stuck-routes", seed=4)
        )
        controller = self._controller(small_ixp)
        report = replay(
            controller, trace.updates, scenario="t", verify_every=3, probes=16
        )
        assert report.ok
        assert report.events == len(trace.updates)
        assert report.bursts == len(segment_bursts(trace.updates))
        assert report.verify_passes == len(segment_bursts(trace.updates)) // 3 + 1
        assert report.probes_checked > 0

    def test_recompile_every_forces_commits(self, small_ixp):
        trace = build_scenario_trace(
            small_ixp, ScenarioSpec("t", "stuck-routes", seed=4)
        )
        controller = self._controller(small_ixp)
        report = replay(
            controller,
            trace.updates,
            verify_every=0,
            recompile_every=2,
        )
        assert report.ok
        assert report.commits >= report.bursts // 2

    def test_eventloop_replay_matches_inline(self, small_ixp):
        trace = build_scenario_trace(
            small_ixp, ScenarioSpec("t", "correlated-withdrawal", seed=2)
        )
        inline = self._controller(small_ixp)
        # Burst coalescing is only forwarding-equivalent; byte-identity
        # of the flow tables is guaranteed with it off.
        eventloop = self._controller(
            small_ixp, runtime_mode="eventloop", coalesce=False
        )
        replay(inline, trace.updates, verify_every=0, recompile_every=3)
        replay(eventloop, trace.updates, verify_every=0, recompile_every=3)
        assert (
            inline.switch.table.content_hash()
            == eventloop.switch.table.content_hash()
        )
