"""Unit tests for BGP wire encoding/decoding."""

import pytest

from repro.bgp.attributes import Community, Origin, RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.bgp.wire import (
    HEADER_LENGTH,
    MARKER,
    KeepaliveMessage,
    MessageType,
    NotificationMessage,
    OpenMessage,
    WireError,
    decode_message,
    encode_keepalive,
    encode_notification,
    encode_open,
    encode_update,
)
from repro.netutils.ip import IPv4Address, IPv4Prefix


def attrs(**overrides):
    values = dict(
        as_path=[65002, 65100],
        next_hop="172.0.0.11",
        origin=Origin.IGP,
        med=0,
        local_pref=100,
        communities=(),
    )
    values.update(overrides)
    return RouteAttributes(**values)


class TestFraming:
    def test_keepalive_round_trip(self):
        wire = encode_keepalive()
        assert len(wire) == HEADER_LENGTH
        assert wire[:16] == MARKER
        message, rest = decode_message(wire)
        assert isinstance(message, KeepaliveMessage)
        assert rest == b""

    def test_two_messages_back_to_back(self):
        wire = encode_keepalive() + encode_keepalive()
        _, rest = decode_message(wire)
        assert len(rest) == HEADER_LENGTH
        message, rest = decode_message(rest)
        assert isinstance(message, KeepaliveMessage) and rest == b""

    def test_bad_marker_rejected(self):
        wire = bytearray(encode_keepalive())
        wire[0] = 0
        with pytest.raises(WireError):
            decode_message(bytes(wire))

    def test_short_read_rejected(self):
        with pytest.raises(WireError):
            decode_message(encode_keepalive()[:10])

    def test_unknown_type_rejected(self):
        wire = bytearray(encode_keepalive())
        wire[18] = 99
        with pytest.raises(WireError):
            decode_message(bytes(wire))


class TestOpen:
    def test_round_trip(self):
        wire = encode_open(65002, "10.0.0.2", hold_time=180)
        message, _ = decode_message(wire)
        assert isinstance(message, OpenMessage)
        assert message.version == 4
        assert message.asn == 65002
        assert message.hold_time == 180
        assert message.bgp_identifier == IPv4Address("10.0.0.2")

    def test_four_octet_asn_uses_as_trans(self):
        wire = encode_open(4200000001, "10.0.0.2")
        message, _ = decode_message(wire)
        assert message.asn == 23456  # AS_TRANS


class TestNotification:
    def test_round_trip(self):
        wire = encode_notification(6, 2, b"shutdown")
        message, _ = decode_message(wire)
        assert isinstance(message, NotificationMessage)
        assert (message.code, message.subcode, message.data) == (6, 2, b"shutdown")


class TestUpdate:
    def test_announcement_round_trip(self):
        update = BGPUpdate(
            "B", announced=[Announcement("10.1.0.0/16", attrs())]
        )
        (wire,) = encode_update(update)
        decoded, rest = decode_message(wire, peer="B")
        assert rest == b""
        assert decoded.peer == "B"
        (announcement,) = decoded.announced
        assert announcement.prefix == IPv4Prefix("10.1.0.0/16")
        assert announcement.attributes == attrs()

    def test_withdrawal_round_trip(self):
        update = BGPUpdate("B", withdrawn=[Withdrawal("10.1.0.0/16")])
        (wire,) = encode_update(update)
        decoded, _ = decode_message(wire, peer="B")
        assert decoded.announced == ()
        assert decoded.withdrawn == (Withdrawal("10.1.0.0/16"),)

    def test_mixed_update(self):
        update = BGPUpdate(
            "B",
            announced=[Announcement("10.1.0.0/16", attrs())],
            withdrawn=[Withdrawal("10.2.0.0/16")],
        )
        (wire,) = encode_update(update)
        decoded, _ = decode_message(wire, peer="B")
        assert len(decoded.announced) == 1 and len(decoded.withdrawn) == 1

    def test_shared_attributes_pack_into_one_message(self):
        update = BGPUpdate(
            "B",
            announced=[
                Announcement("10.1.0.0/16", attrs()),
                Announcement("10.2.0.0/16", attrs()),
            ],
        )
        messages = encode_update(update)
        assert len(messages) == 1
        decoded, _ = decode_message(messages[0], peer="B")
        assert len(decoded.announced) == 2

    def test_distinct_attributes_split_messages(self):
        update = BGPUpdate(
            "B",
            announced=[
                Announcement("10.1.0.0/16", attrs()),
                Announcement("10.2.0.0/16", attrs(med=9)),
            ],
        )
        messages = encode_update(update)
        assert len(messages) == 2

    def test_communities_round_trip(self):
        update = BGPUpdate(
            "B",
            announced=[
                Announcement(
                    "10.1.0.0/16", attrs(communities=["0:65001", "64512:65003"])
                )
            ],
        )
        (wire,) = encode_update(update)
        decoded, _ = decode_message(wire, peer="B")
        (announcement,) = decoded.announced
        assert announcement.attributes.communities == frozenset(
            {Community(0, 65001), Community(64512, 65003)}
        )

    def test_odd_prefix_lengths(self):
        for text in ("0.0.0.0/0", "128.0.0.0/1", "10.0.0.0/9", "10.1.2.3/32", "10.1.2.0/23"):
            update = BGPUpdate("B", announced=[Announcement(text, attrs())])
            (wire,) = encode_update(update)
            decoded, _ = decode_message(wire, peer="B")
            assert decoded.announced[0].prefix == IPv4Prefix(text)

    def test_long_as_path_segments(self):
        path = list(range(64512, 64512 + 300))  # forces two AS_SEQUENCE segments
        update = BGPUpdate(
            "B", announced=[Announcement("10.1.0.0/16", attrs(as_path=path))]
        )
        (wire,) = encode_update(update)
        decoded, _ = decode_message(wire, peer="B")
        assert list(decoded.announced[0].attributes.as_path) == path

    def test_decoded_update_feeds_route_server(self):
        from repro.bgp.route_server import RouteServer

        server = RouteServer()
        server.add_peer("B")
        server.add_peer("A")
        update = BGPUpdate("B", announced=[Announcement("10.1.0.0/16", attrs())])
        (wire,) = encode_update(update)
        decoded, _ = decode_message(wire, peer="B")
        server.process_update(decoded)
        assert server.best_route("A", "10.1.0.0/16") is not None

    def test_empty_update(self):
        (wire,) = encode_update(BGPUpdate("B"))
        decoded, _ = decode_message(wire, peer="B")
        assert decoded.announced == () and decoded.withdrawn == ()
