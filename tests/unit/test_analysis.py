"""Unit tests for flow-space analysis (claimed space, fallback, disjointness)."""

from repro.policy import (
    Packet,
    claimed_matches,
    classifiers_disjoint,
    forwarding_ports,
    fwd,
    match,
    with_fallback,
)
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule


def test_claimed_matches_excludes_drops():
    classifier = Classifier(
        [
            Rule(HeaderMatch(dstport=80), (Action(port="B"),)),
            Rule(HeaderMatch(dstport=443), ()),
        ]
    )
    assert claimed_matches(classifier) == [HeaderMatch(dstport=80)]


def test_forwarding_ports():
    classifier = Classifier(
        [
            Rule(HeaderMatch(dstport=80), (Action(port="B"),)),
            Rule(HeaderMatch(dstport=443), (Action(port="C"), Action(dstip="1.1.1.1"))),
        ]
    )
    assert forwarding_ports(classifier) == frozenset({"B", "C"})


def test_classifiers_disjoint_by_port_isolation():
    left = (match(port="A1") >> fwd("B")).compile()
    right = (match(port="B1") >> fwd("C")).compile()
    assert classifiers_disjoint(left, right)


def test_classifiers_not_disjoint_on_overlap():
    left = (match(dstport=80) >> fwd("B")).compile()
    right = (match(srcport=9) >> fwd("C")).compile()
    assert not classifiers_disjoint(left, right)


def test_with_fallback_unclaimed_goes_to_fallback():
    primary = (match(dstport=80) >> fwd("B")).compile()
    fallback = (match(dstmac="02:00:00:00:00:01") >> fwd("C")).compile()
    combined = with_fallback(primary, fallback)
    web = Packet(dstport=80, dstmac="02:00:00:00:00:01")
    other = Packet(dstport=22, dstmac="02:00:00:00:00:01")
    assert {p["port"] for p in combined.eval(web)} == {"B"}
    assert {p["port"] for p in combined.eval(other)} == {"C"}


def test_with_fallback_preserves_claimed_drops():
    """Traffic the policy claims but drops (BGP filter) must NOT fall back."""
    # policy: dstip 10/8 AND dstport 80 forwarded; other 10/8 traffic is
    # sealed by an interior drop from the nested sequential composition.
    policy = match(dstip="10.0.0.0/8") >> (match(dstport=80) >> fwd("B"))
    primary = policy.compile()
    # sanity: the compiled classifier really contains an interior drop
    assert any(rule.is_drop for rule in primary.rules)
    fallback = (match(dstmac="02:00:00:00:00:01") >> fwd("C")).compile()
    combined = with_fallback(primary, fallback)
    claimed_and_dropped = Packet(dstip="10.1.1.1", dstport=22, dstmac="02:00:00:00:00:01")
    # 10/8 non-web traffic is NOT claimed (no non-drop rule matches it), so
    # it goes to the fallback rather than being dropped.
    assert {p["port"] for p in combined.eval(claimed_and_dropped)} == {"C"}
    web = Packet(dstip="10.1.1.1", dstport=80, dstmac="02:00:00:00:00:01")
    assert {p["port"] for p in combined.eval(web)} == {"B"}


def test_with_fallback_interior_drop_shadowing_later_rule():
    """A drop rule shadowing a later non-drop rule keeps dropping the overlap."""
    primary = Classifier(
        [
            Rule(HeaderMatch(dstport=80, srcport=9), ()),  # drop web from srcport 9
            Rule(HeaderMatch(dstport=80), (Action(port="B"),)),
        ]
    )
    fallback = Classifier([Rule(HeaderMatch.ANY, (Action(port="D"),))])
    combined = with_fallback(primary, fallback)
    shadowed = Packet(dstport=80, srcport=9)
    normal = Packet(dstport=80, srcport=1)
    unclaimed = Packet(dstport=22, srcport=9)
    assert combined.eval(shadowed) == frozenset()  # claimed and dropped
    assert {p["port"] for p in combined.eval(normal)} == {"B"}
    assert {p["port"] for p in combined.eval(unclaimed)} == {"D"}


def test_with_fallback_empty_primary_is_fallback():
    fallback = (match(dstport=80) >> fwd("C")).compile()
    combined = with_fallback(Classifier(), fallback)
    web = Packet(dstport=80)
    assert {p["port"] for p in combined.eval(web)} == {"C"}


def test_with_fallback_empty_fallback_keeps_policy():
    primary = (match(dstport=80) >> fwd("B")).compile()
    combined = with_fallback(primary, Classifier())
    assert {p["port"] for p in combined.eval(Packet(dstport=80))} == {"B"}
    assert combined.eval(Packet(dstport=22)) == frozenset()
