"""Unit tests for FEC computation and the MDS algorithms."""

import pytest

from repro.core.fec import (
    FECTable,
    PrefixGroup,
    compute_fec_table,
    minimum_disjoint_subsets,
    minimum_disjoint_subsets_naive,
)
from repro.core.vmac import VirtualNextHopAllocator
from repro.netutils.ip import IPv4Prefix

P1, P2, P3, P4, P5 = (IPv4Prefix(f"10.{i}.0.0/16") for i in range(1, 6))


class TestMDS:
    def test_paper_worked_example(self):
        """Section 4.2: C = {{p1,p2,p3},{p1,p2,p3,p4},{p1,p2,p4},{p3}}
        yields C' = {{p1,p2},{p3},{p4}}."""
        collection = [
            frozenset({P1, P2, P3}),
            frozenset({P1, P2, P3, P4}),
            frozenset({P1, P2, P4}),
            frozenset({P3}),
        ]
        groups = {frozenset(g) for g in minimum_disjoint_subsets(collection)}
        assert groups == {
            frozenset({P1, P2}),
            frozenset({P3}),
            frozenset({P4}),
        }

    def test_empty_collection(self):
        assert minimum_disjoint_subsets([]) == []
        assert minimum_disjoint_subsets_naive([]) == []

    def test_disjoint_inputs_pass_through(self):
        collection = [frozenset({P1}), frozenset({P2, P3})]
        groups = {frozenset(g) for g in minimum_disjoint_subsets(collection)}
        assert groups == {frozenset({P1}), frozenset({P2, P3})}

    def test_identical_sets_collapse(self):
        collection = [frozenset({P1, P2}), frozenset({P1, P2})]
        groups = minimum_disjoint_subsets(collection)
        assert len(groups) == 1

    def test_output_is_partition_of_union(self):
        collection = [frozenset({P1, P2, P3}), frozenset({P2, P4}), frozenset({P5})]
        groups = minimum_disjoint_subsets(collection)
        union = set().union(*groups)
        assert union == {P1, P2, P3, P4, P5}
        total = sum(len(g) for g in groups)
        assert total == len(union)  # pairwise disjoint

    def test_naive_agrees_with_signature(self):
        collection = [
            frozenset({P1, P2, P3}),
            frozenset({P1, P2, P3, P4}),
            frozenset({P1, P2, P4}),
            frozenset({P3}),
            frozenset({P5, P1}),
        ]
        fast = {frozenset(g) for g in minimum_disjoint_subsets(collection)}
        slow = {frozenset(g) for g in minimum_disjoint_subsets_naive(collection)}
        assert fast == slow


class TestComputeFECTable:
    def fingerprint_all_same(self, prefix):
        return "same"

    def test_groups_by_policy_signature(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        table = compute_fec_table(
            [frozenset({P1, P2, P3}), frozenset({P1, P2, P4})],
            self.fingerprint_all_same,
            allocator,
        )
        groups = {frozenset(g.prefixes) for g in table.groups}
        assert groups == {frozenset({P1, P2}), frozenset({P3}), frozenset({P4})}

    def test_fingerprint_splits_groups(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        table = compute_fec_table(
            [frozenset({P1, P2})],
            lambda prefix: str(prefix),  # every prefix distinct
            allocator,
        )
        assert len(table.groups) == 2

    def test_unaffected_prefixes_absent(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        table = compute_fec_table([frozenset({P1})], self.fingerprint_all_same, allocator)
        assert table.group_for(P5) is None
        assert table.vnh_for(P5) is None

    def test_every_group_gets_unique_vnh(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        table = compute_fec_table(
            [frozenset({P1}), frozenset({P2}), frozenset({P3})],
            self.fingerprint_all_same,
            allocator,
        )
        vnhs = {g.vnh.address for g in table.groups}
        assert len(vnhs) == 3
        assert all(g.is_affected for g in table.groups)

    def test_deterministic_group_ids(self):
        def build():
            allocator = VirtualNextHopAllocator("172.16.0.0/24")
            table = compute_fec_table(
                [frozenset({P1, P2}), frozenset({P3})],
                self.fingerprint_all_same,
                allocator,
            )
            return [(g.group_id, frozenset(g.prefixes)) for g in table.groups]

        assert build() == build()


class TestFECTable:
    def build(self):
        allocator = VirtualNextHopAllocator("172.16.0.0/24")
        return compute_fec_table(
            [frozenset({P1, P2}), frozenset({P3})],
            lambda prefix: "x",
            allocator,
        )

    def test_group_for_lookup(self):
        table = self.build()
        assert table.group_for(P1) is table.group_for(P2)
        assert table.group_for(P3) is not table.group_for(P1)
        assert table.group_for("10.1.0.0/16") is table.group_for(P1)

    def test_vnh_for(self):
        table = self.build()
        assert table.vnh_for(P1) == table.group_for(P1).vnh

    def test_groups_covering_dedupes(self):
        table = self.build()
        covering = table.groups_covering([P1, P2, P3])
        assert len(covering) == 2

    def test_len_iter_repr(self):
        table = self.build()
        assert len(table) == 2
        assert len(list(table)) == 2
        assert "groups=2" in repr(table)

    def test_affected_groups(self):
        table = self.build()
        assert len(table.affected_groups) == 2
