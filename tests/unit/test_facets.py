"""Unit tests for the faceted controller API (``repro.core.facets``).

Two things are pinned here: the facets are *views* (same state, same
behaviour as the historical flat methods), and the flat methods are
*gone* — the deprecation shims were retired after one release cycle,
so a controller instance no longer carries them at all.
"""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.facets import OpsFacet, PolicyFacet, RoutingFacet
from repro.core.participant import SDXPolicySet
from repro.dataplane.reconcile import ChurnStats, CommitReport
from repro.policy import fwd, match

from tests.conftest import install_figure1_policies, load_figure1_routes


@pytest.fixture
def controller(figure1_controller):
    load_figure1_routes(figure1_controller)
    return figure1_controller


class TestFacetWiring:
    def test_facets_exist_and_are_typed(self, controller):
        assert isinstance(controller.routing, RoutingFacet)
        assert isinstance(controller.policy, PolicyFacet)
        assert isinstance(controller.ops, OpsFacet)

    def test_facets_are_views_not_copies(self, controller):
        install_figure1_policies(controller, recompile=False)
        # The same state is visible through the facet and internally.
        assert set(controller.policy.policies()) == set(controller._policies)


class TestRoutingFacet:
    def test_announce_and_withdraw(self, controller):
        changes = controller.routing.announce(
            "B", "99.0.0.0/24", RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        )
        assert changes
        assert controller.routing.withdraw("B", "99.0.0.0/24")

    def test_originate_tracks_prefixes(self, controller):
        controller.routing.originate("A", "100.64.0.0/24")
        assert "100.64.0.0/24" in {
            str(p) for p in controller.routing.originated()["A"]
        }
        controller.routing.withdraw_origination("A", "100.64.0.0/24")
        assert not controller.routing.originated()["A"]

    def test_batched_updates_coalesces(self, controller):
        controller.compile()
        attributes = RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
        with controller.routing.batched_updates():
            controller.routing.withdraw("B", "10.1.0.0/16")
            controller.routing.announce("B", "10.1.0.0/16", attributes)
        # one coalesced fast-path pass, not two
        assert len(controller.ops.fast_path_log) == 1


class TestPolicyFacet:
    def test_set_and_clear_policies(self, controller):
        controller.policy.set_policies(
            "A", SDXPolicySet(outbound=match(dstport=80) >> fwd("B")), recompile=False
        )
        assert "A" in controller.policy.policies()
        controller.policy.set_policies("A", SDXPolicySet(), recompile=False)
        assert "A" not in controller.policy.policies()

    def test_chain_views(self, controller):
        assert controller.policy.chains() == {}
        assert controller.policy.chain_hop_ports() == frozenset()


class TestOpsFacet:
    def test_health_snapshot(self, controller):
        report = controller.ops.health()
        assert set(report.sessions) == {"A", "B", "C"}

    def test_metrics_round_trip(self, controller):
        controller.compile()
        assert "sdx_compile_seconds" in controller.ops.metrics()
        assert "sdx_compile_seconds" in controller.ops.metrics_text()

    def test_churn_accumulates_across_commits(self, controller):
        assert controller.ops.churn() == ChurnStats(0, 0, 0, 0, 0, None)
        report = controller.compile()
        assert isinstance(report, CommitReport)
        stats = controller.ops.churn()
        assert stats.commits == 1
        assert stats.added == report.added > 0
        assert controller.ops.last_commit() is report
        noop = controller.run_background_recompilation()
        after = controller.ops.churn()
        assert after.commits == 2
        assert after.added == stats.added  # no-op pass adds nothing
        assert after.retained == stats.retained + noop.retained

    def test_commit_hooks(self, controller):
        seen = []
        hook = seen.append
        controller.ops.add_commit_hook(hook)
        controller.compile()
        assert len(seen) == 1
        controller.ops.remove_commit_hook(hook)
        controller.compile()
        assert len(seen) == 1

    def test_quarantine_view_empty_by_default(self, controller):
        assert controller.ops.quarantined() == {}
        assert controller.ops.release_quarantine("A") is False


FLAT_NAMES = [
    "set_policies",
    "policies",
    "quarantined",
    "release_quarantine",
    "define_chain",
    "remove_chain",
    "chains",
    "chain_hop_ports",
    "process_update",
    "batched_updates",
    "announce",
    "withdraw",
    "originate",
    "withdraw_origination",
    "originated",
    "health",
    "metrics",
    "metrics_text",
    "add_commit_hook",
    "remove_commit_hook",
    "fast_path_log",
]


class TestFlatShimsRetired:
    """The PR-4 deprecation shims are gone: facets are the only surface."""

    @pytest.mark.parametrize("name", FLAT_NAMES)
    def test_flat_method_is_gone(self, controller, name):
        assert not hasattr(controller, name), (
            f"SDXController.{name} was retired; use the facet equivalent"
        )

    def test_facets_still_cover_the_surface(self, controller):
        controller.policy.set_policies(
            "A",
            SDXPolicySet(outbound=match(dstport=80) >> fwd("B")),
            recompile=False,
        )
        assert "A" in controller.policy.policies()
