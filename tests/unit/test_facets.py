"""Unit tests for the faceted controller API (``repro.core.facets``).

Two things are pinned here: the facets are *views* (same state, same
behaviour as the historical flat methods), and every flat method is a
shim that still works but emits ``DeprecationWarning`` naming its facet
replacement.
"""

import warnings

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.facets import OpsFacet, PolicyFacet, RoutingFacet
from repro.core.participant import SDXPolicySet
from repro.dataplane.reconcile import ChurnStats, CommitReport
from repro.policy import fwd, match

from tests.conftest import install_figure1_policies, load_figure1_routes


@pytest.fixture
def controller(figure1_controller):
    load_figure1_routes(figure1_controller)
    return figure1_controller


class TestFacetWiring:
    def test_facets_exist_and_are_typed(self, controller):
        assert isinstance(controller.routing, RoutingFacet)
        assert isinstance(controller.policy, PolicyFacet)
        assert isinstance(controller.ops, OpsFacet)

    def test_facets_are_views_not_copies(self, controller):
        install_figure1_policies(controller, recompile=False)
        # The same state is visible through the facet and internally.
        assert set(controller.policy.policies()) == set(controller._policies)


class TestRoutingFacet:
    def test_announce_and_withdraw(self, controller):
        changes = controller.routing.announce(
            "B", "99.0.0.0/24", RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        )
        assert changes
        assert controller.routing.withdraw("B", "99.0.0.0/24")

    def test_originate_tracks_prefixes(self, controller):
        controller.routing.originate("A", "100.64.0.0/24")
        assert "100.64.0.0/24" in {
            str(p) for p in controller.routing.originated()["A"]
        }
        controller.routing.withdraw_origination("A", "100.64.0.0/24")
        assert not controller.routing.originated()["A"]

    def test_batched_updates_coalesces(self, controller):
        controller.compile()
        attributes = RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
        with controller.routing.batched_updates():
            controller.routing.withdraw("B", "10.1.0.0/16")
            controller.routing.announce("B", "10.1.0.0/16", attributes)
        # one coalesced fast-path pass, not two
        assert len(controller.ops.fast_path_log) == 1


class TestPolicyFacet:
    def test_set_and_clear_policies(self, controller):
        controller.policy.set_policies(
            "A", SDXPolicySet(outbound=match(dstport=80) >> fwd("B")), recompile=False
        )
        assert "A" in controller.policy.policies()
        controller.policy.set_policies("A", SDXPolicySet(), recompile=False)
        assert "A" not in controller.policy.policies()

    def test_chain_views(self, controller):
        assert controller.policy.chains() == {}
        assert controller.policy.chain_hop_ports() == frozenset()


class TestOpsFacet:
    def test_health_snapshot(self, controller):
        report = controller.ops.health()
        assert set(report.sessions) == {"A", "B", "C"}

    def test_metrics_round_trip(self, controller):
        controller.compile()
        assert "sdx_compile_seconds" in controller.ops.metrics()
        assert "sdx_compile_seconds" in controller.ops.metrics_text()

    def test_churn_accumulates_across_commits(self, controller):
        assert controller.ops.churn() == ChurnStats(0, 0, 0, 0, 0, None)
        report = controller.compile()
        assert isinstance(report, CommitReport)
        stats = controller.ops.churn()
        assert stats.commits == 1
        assert stats.added == report.added > 0
        assert controller.ops.last_commit() is report
        noop = controller.run_background_recompilation()
        after = controller.ops.churn()
        assert after.commits == 2
        assert after.added == stats.added  # no-op pass adds nothing
        assert after.retained == stats.retained + noop.retained

    def test_commit_hooks(self, controller):
        seen = []
        hook = seen.append
        controller.ops.add_commit_hook(hook)
        controller.compile()
        assert len(seen) == 1
        controller.ops.remove_commit_hook(hook)
        controller.compile()
        assert len(seen) == 1

    def test_quarantine_view_empty_by_default(self, controller):
        assert controller.ops.quarantined() == {}
        assert controller.ops.release_quarantine("A") is False


FLAT_CALLS = [
    ("set_policies", lambda c: c.set_policies("A", SDXPolicySet(), recompile=False)),
    ("policies", lambda c: c.policies()),
    ("quarantined", lambda c: c.quarantined()),
    ("release_quarantine", lambda c: c.release_quarantine("A", recompile=False)),
    ("chains", lambda c: c.chains()),
    ("chain_hop_ports", lambda c: c.chain_hop_ports()),
    ("batched_updates", lambda c: c.batched_updates()),
    (
        "announce",
        lambda c: c.announce(
            "B", "99.0.0.0/24", RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        ),
    ),
    ("withdraw", lambda c: c.withdraw("B", "99.0.0.0/24")),
    ("originate", lambda c: c.originate("A", "100.64.0.0/24")),
    ("withdraw_origination", lambda c: c.withdraw_origination("A", "100.64.0.0/24")),
    ("originated", lambda c: c.originated()),
    ("health", lambda c: c.health()),
    ("metrics", lambda c: c.metrics()),
    ("metrics_text", lambda c: c.metrics_text()),
    ("add_commit_hook", lambda c: c.add_commit_hook(lambda result: None)),
    ("remove_commit_hook", lambda c: c.remove_commit_hook(lambda result: None)),
    ("fast_path_log", lambda c: c.fast_path_log),
]


class TestFlatShimsDeprecated:
    @pytest.mark.parametrize("name,call", FLAT_CALLS, ids=[n for n, _ in FLAT_CALLS])
    def test_flat_method_warns_and_names_replacement(self, controller, name, call):
        with pytest.warns(DeprecationWarning, match=f"SDXController.{name}"):
            call(controller)

    def test_shim_still_delegates(self, controller):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            controller.set_policies(
                "A",
                SDXPolicySet(outbound=match(dstport=80) >> fwd("B")),
                recompile=False,
            )
        assert "A" in controller.policy.policies()

    def test_warning_attributed_to_caller(self, controller):
        """stacklevel must point at the *calling* module, so the tier-1
        ``error::DeprecationWarning:repro`` filter bites in-repo callers
        and nobody else."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            controller.policies()
        (warning,) = [w for w in caught if w.category is DeprecationWarning]
        assert warning.filename == __file__
