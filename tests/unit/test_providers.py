"""Unit tests for data-driven topology providers and fixture ingestion."""

import pytest

from repro.bgp.route_server import RouteServer
from repro.workloads.providers import (
    ASRelationshipProvider,
    GMLProvider,
    MemberRecord,
    SyntheticProvider,
    _parse_asrel,
    _parse_members,
    available_fixtures,
    fixture_path,
    load_fixture,
)
from repro.workloads.serialization import dumps_topology
from repro.workloads.topology_gen import ASCategory, generate_ixp


# -- parsers ------------------------------------------------------------------


class TestMembersParser:
    def _write(self, tmp_path, text):
        path = tmp_path / "census.members"
        path.write_text(text)
        return str(path)

    def test_parses_rows_and_skips_comments(self, tmp_path):
        path = self._write(tmp_path, "# header\n\n100|40|2\n200|7|1\n")
        assert _parse_members(path) == [
            MemberRecord(100, 40, 2),
            MemberRecord(200, 7, 1),
        ]

    def test_duplicate_asn_rejected(self, tmp_path):
        path = self._write(tmp_path, "100|40|2\n100|7|1\n")
        with pytest.raises(ValueError, match="duplicate ASN"):
            _parse_members(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = self._write(tmp_path, "100|40\n")
        with pytest.raises(ValueError, match="expected"):
            _parse_members(path)

    def test_port_range_enforced(self, tmp_path):
        path = self._write(tmp_path, "100|40|9\n")
        with pytest.raises(ValueError, match="invalid census row"):
            _parse_members(path)

    def test_empty_census_rejected(self, tmp_path):
        path = self._write(tmp_path, "# nothing\n")
        with pytest.raises(ValueError, match="empty"):
            _parse_members(path)


class TestASRelParser:
    def test_parses_serial1_rows(self, tmp_path):
        path = tmp_path / "rel.asrel"
        path.write_text("# comment\n1|2|-1\n2|3|0\n")
        assert _parse_asrel(str(path)) == [(1, 2, -1), (2, 3, 0)]

    def test_rejects_unknown_relationship(self, tmp_path):
        path = tmp_path / "rel.asrel"
        path.write_text("1|2|5\n")
        with pytest.raises(ValueError, match="relationship"):
            _parse_asrel(str(path))


class TestGMLErrors:
    def test_node_without_asn_rejected(self, tmp_path):
        path = tmp_path / "bad.gml"
        path.write_text('graph [ node [ id 0 label "X" prefixes 3 ] ]')
        with pytest.raises(ValueError, match="needs 'asn'"):
            GMLProvider(str(path))

    def test_unknown_edge_rel_rejected(self, tmp_path):
        path = tmp_path / "bad.gml"
        path.write_text(
            "graph [ node [ id 0 asn 1 prefixes 1 ] "
            "node [ id 1 asn 2 prefixes 1 ] "
            'edge [ source 0 target 1 rel "sibling" ] ]'
        )
        with pytest.raises(ValueError, match="unknown edge rel"):
            GMLProvider(str(path))

    def test_empty_graph_rejected(self, tmp_path):
        path = tmp_path / "bad.gml"
        path.write_text("graph [ directed 0 ]")
        with pytest.raises(ValueError, match="no nodes"):
            GMLProvider(str(path))


# -- provider protocol --------------------------------------------------------


class TestSyntheticProvider:
    def test_matches_direct_generator_output(self):
        provider = SyntheticProvider(8, 40, seed=3)
        direct = generate_ixp(8, 40, seed=3)
        assert dumps_topology(provider.build()) == dumps_topology(direct)

    def test_knobs_pass_through(self):
        provider = SyntheticProvider(6, 30, seed=1, multi_port_fraction=1.0)
        ixp = provider.build()
        assert all(
            len(ixp.config.participant(name).ports) == 2
            for name in ixp.participant_names
        )


class TestFixtureRegistry:
    def test_both_fixtures_listed(self):
        names = available_fixtures()
        assert "amsix2014" in names
        assert "ixp_small" in names

    def test_unknown_fixture_raises(self):
        with pytest.raises(FileNotFoundError, match="available"):
            load_fixture("atlantis")
        with pytest.raises(FileNotFoundError):
            fixture_path("atlantis.gml")


# -- the small GML fixture ----------------------------------------------------


class TestIxpSmall:
    @pytest.fixture(scope="class")
    def ixp(self):
        return load_fixture("ixp_small").build()

    def test_shape(self, ixp):
        assert len(ixp.config) == 24
        assert sum(len(v) for v in ixp.announced.values()) == 433

    def test_categories_derive_from_edges(self, ixp):
        # The three transits are exactly the nodes with p2c edges.
        transits = {n for n, c in ixp.categories.items() if c == ASCategory.TRANSIT}
        assert transits == {"AS64601", "AS64602", "AS64603"}
        # Stubs split into content (heavy quartile) and eyeball.
        assert ASCategory.CONTENT in ixp.categories.values()
        assert ASCategory.EYEBALL in ixp.categories.values()

    def test_peering_matrix_is_symmetric(self, ixp):
        assert ixp.peering is not None
        for name, peers in ixp.peering.items():
            for peer in peers:
                assert name in ixp.peering[peer]
            assert name not in peers

    def test_multihoming_from_relationships(self, ixp):
        # Every member provider of an AS re-announces its prefixes with
        # the provider ASN prepended — alternates for deflection policies.
        sets = ixp.announcement_sets()
        backup_carriers = {
            name
            for name, prefixes in sets.items()
            if prefixes - set(ixp.announced[name])
        }
        assert backup_carriers  # the fixture has p2c edges between members
        assert backup_carriers <= {
            n for n, c in ixp.categories.items() if c == ASCategory.TRANSIT
        }
        for update in ixp.updates:
            for announcement in update.announced:
                path = announcement.attributes.as_path.asns
                first = ixp.config.participant(update.peer).asn
                assert path[0] == first

    def test_loads_into_route_server(self, ixp):
        server = RouteServer()
        for name in ixp.participant_names:
            server.add_peer(name)
        assert server.load(ixp.updates) == len(ixp.updates)
        carried = {
            name: server.prefixes_from(name) for name in ixp.participant_names
        }
        assert carried == {
            name: frozenset(prefixes)
            for name, prefixes in ixp.announcement_sets().items()
        }

    def test_build_is_deterministic(self):
        provider = load_fixture("ixp_small")
        assert dumps_topology(provider.build()) == dumps_topology(provider.build())


# -- the large CAIDA-style fixture --------------------------------------------


class TestAmsix2014:
    @pytest.fixture(scope="class")
    def provider(self):
        return load_fixture("amsix2014")

    @pytest.fixture(scope="class")
    def ixp(self, provider):
        return provider.build()

    def test_is_asrel_provider(self, provider):
        assert isinstance(provider, ASRelationshipProvider)

    def test_acceptance_scale(self, ixp):
        assert len(ixp.config) >= 100
        assert sum(len(v) for v in ixp.announced.values()) >= 100_000

    def test_skew_comes_from_fixture_not_knobs(self, provider):
        # Table 1: the top ~1% of members announce more than half of the
        # prefixes, the bottom 90% almost none.  These numbers are read
        # straight out of the census file.
        skew = provider.skew()
        assert skew["top_1pct_share"] > 0.5
        assert skew["bottom_90pct_share"] < 0.05

    def test_ports_come_from_census(self, ixp):
        assert len(ixp.config.participant("AS2914").ports) == 4
        assert len(ixp.config.participant("AS1299").ports) == 4
