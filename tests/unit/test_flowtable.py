"""Unit tests for flow tables and rules."""

from repro.dataplane.flowtable import FlowRule, FlowTable
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule
from repro.policy.packet import Packet


def rule(priority, actions=(Action(port="out"),), cookie=None, **constraints):
    return FlowRule(priority, HeaderMatch(**constraints), actions, cookie=cookie)


class TestFlowRule:
    def test_counters(self):
        entry = rule(1)
        entry.count(100)
        entry.count(50)
        assert entry.packets == 2 and entry.bytes == 150

    def test_drop_detection(self):
        assert FlowRule(1, HeaderMatch.ANY, ()).is_drop
        assert not rule(1).is_drop

    def test_rule_ids_unique(self):
        assert rule(1).rule_id != rule(1).rule_id


class TestFlowTable:
    def test_priority_order(self):
        table = FlowTable()
        low = table.install(rule(1, dstport=80))
        high = table.install(rule(10, dstport=80))
        assert table.lookup(Packet(dstport=80)) is high
        table.remove(high)
        assert table.lookup(Packet(dstport=80)) is low

    def test_equal_priority_insertion_order(self):
        table = FlowTable()
        first = table.install(rule(5, dstport=80))
        table.install(rule(5, dstport=80))
        assert table.lookup(Packet(dstport=80)) is first

    def test_miss_counted(self):
        table = FlowTable()
        table.install(rule(1, dstport=80))
        assert table.process(Packet(dstport=22)) == frozenset()
        assert table.misses == 1

    def test_process_applies_actions_and_counts(self):
        table = FlowTable()
        entry = table.install(rule(1, dstport=80))
        out = table.process(Packet(dstport=80), packet_bytes=64)
        assert {p["port"] for p in out} == {"out"}
        assert entry.packets == 1 and entry.bytes == 64

    def test_drop_rule_matches_and_counts(self):
        table = FlowTable()
        drop_rule = table.install(FlowRule(10, HeaderMatch(dstport=80), ()))
        table.install(rule(1, dstport=80))
        assert table.process(Packet(dstport=80)) == frozenset()
        assert drop_rule.packets == 1
        assert table.misses == 0

    def test_install_classifier_preserves_order(self):
        classifier = Classifier(
            [
                Rule(HeaderMatch(dstport=80), (Action(port="B"),)),
                Rule(HeaderMatch.ANY, (Action(port="C"),)),
            ]
        )
        table = FlowTable()
        table.install_classifier(classifier, base_priority=100)
        assert {p["port"] for p in table.process(Packet(dstport=80))} == {"B"}
        assert {p["port"] for p in table.process(Packet(dstport=22))} == {"C"}
        priorities = [entry.priority for entry in table]
        assert priorities == sorted(priorities, reverse=True)
        assert min(priorities) > 100

    def test_classifier_blocks_stack_by_priority(self):
        base = Classifier([Rule(HeaderMatch.ANY, (Action(port="old"),))])
        override = Classifier([Rule(HeaderMatch(dstport=80), (Action(port="new"),))])
        table = FlowTable()
        table.install_classifier(base, base_priority=100, cookie="base")
        table.install_classifier(override, base_priority=1000, cookie="fast")
        assert {p["port"] for p in table.process(Packet(dstport=80))} == {"new"}
        assert {p["port"] for p in table.process(Packet(dstport=22))} == {"old"}

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.install(rule(1, cookie="a", dstport=80))
        table.install(rule(2, cookie="a", dstport=443))
        table.install(rule(3, cookie="b", dstport=22))
        assert table.remove_by_cookie("a") == 2
        assert len(table) == 1

    def test_rules_for_cookie(self):
        table = FlowTable()
        low = table.install(rule(1, cookie="a", dstport=80))
        high = table.install(rule(9, cookie="a", dstport=443))
        table.install(rule(5, cookie="b", dstport=22))
        assert table.rules_for_cookie("a") == (high, low)
        assert table.rules_for_cookie("missing") == ()

    def test_counters_by_cookie(self):
        table = FlowTable()
        table.install(rule(2, cookie="x", dstport=80))
        table.install(rule(1, cookie="y", dstport=443))
        table.process(Packet(dstport=80), packet_bytes=10)
        table.process(Packet(dstport=443), packet_bytes=20)
        totals = table.counters_by_cookie()
        assert totals["x"] == (1, 10) and totals["y"] == (1, 20)

    def test_clear(self):
        table = FlowTable()
        table.install(rule(1))
        table.clear()
        assert len(table) == 0


class TestReprioritize:
    def test_moves_rule_and_keeps_counters(self):
        table = FlowTable()
        moved = table.install(rule(1, dstport=80))
        blocker = table.install(rule(5, dstport=80))
        moved.count(64)
        table.reprioritize(moved, 9)
        assert table.lookup(Packet(dstport=80)) is moved
        assert moved.packets == 1 and moved.bytes == 64
        assert blocker in table.rules()

    def test_not_counted_as_churn(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        table = FlowTable()
        table.attach_telemetry(registry)
        entry = table.install(rule(1, dstport=80))
        installs = registry.get("sdx_flowtable_installs_total").total()
        table.reprioritize(entry, 7)
        assert registry.get("sdx_flowtable_installs_total").total() == installs
        assert registry.get("sdx_flowtable_removes_total").total() == 0


class TestTransactionPrioritySnapshot:
    def test_rollback_restores_in_place_priority_changes(self):
        table = FlowTable()
        entry = table.install(rule(3, dstport=80))
        before = table.content_hash()
        transaction = table.transaction()
        table.reprioritize(entry, 42)
        table.install(rule(50, dstport=22))
        transaction.rollback()
        assert entry.priority == 3
        assert table.content_hash() == before

    def test_commit_keeps_priority_changes(self):
        table = FlowTable()
        entry = table.install(rule(3, dstport=80))
        with table.transaction():
            table.reprioritize(entry, 42)
        assert entry.priority == 42


class TestMultiTable:
    def chained(self):
        table = FlowTable()
        stage1 = table.install(
            FlowRule(
                10,
                HeaderMatch(dstport=80),
                (Action(tos=1),),
                cookie="s1",
                table=0,
                goto=1,
            )
        )
        stage2 = table.install(
            FlowRule(
                5,
                HeaderMatch(tos=1),
                (Action(port="out"),),
                cookie="s2",
                table=1,
            )
        )
        return table, stage1, stage2

    def test_goto_must_point_forward(self):
        import pytest

        with pytest.raises(ValueError):
            FlowRule(1, HeaderMatch.ANY, (), table=1, goto=1)
        with pytest.raises(ValueError):
            FlowRule(1, HeaderMatch.ANY, (), table=2, goto=0)

    def test_lookup_is_per_table(self):
        table, stage1, stage2 = self.chained()
        assert table.lookup(Packet(dstport=80)) is stage1
        assert table.lookup(Packet(tos=1), table=1) is stage2
        assert table.lookup(Packet(tos=1)) is None

    def test_process_follows_goto_and_counts_both_stages(self):
        table, stage1, stage2 = self.chained()
        out = table.process(Packet(dstport=80), packet_bytes=64)
        assert {p["port"] for p in out} == {"out"}
        assert {p["tos"] for p in out} == {1}
        assert stage1.packets == 1 and stage1.bytes == 64
        assert stage2.packets == 1 and stage2.bytes == 64

    def test_miss_in_next_table_drops(self):
        table = FlowTable()
        table.install(
            FlowRule(10, HeaderMatch(dstport=80), (Action(tos=2),), table=0, goto=1)
        )
        table.install(FlowRule(5, HeaderMatch(tos=1), (Action(port="out"),), table=1))
        assert table.process(Packet(dstport=80)) == frozenset()

    def test_resolve_returns_first_stage_rule_without_counting(self):
        table, stage1, stage2 = self.chained()
        resolved = table.resolve(Packet(dstport=80))
        assert resolved is not None
        first, outputs = resolved
        assert first is stage1
        assert {p["port"] for p in outputs} == {"out"}
        assert stage1.packets == 0 and stage2.packets == 0
        assert table.resolve(Packet(dstport=22)) is None

    def test_multistage_fanout(self):
        table = FlowTable()
        table.install(
            FlowRule(
                10,
                HeaderMatch(dstport=80),
                (Action(tos=1), Action(tos=2)),
                table=0,
                goto=1,
            )
        )
        table.install(FlowRule(5, HeaderMatch(tos=1), (Action(port="a"),), table=1))
        table.install(FlowRule(5, HeaderMatch(tos=2), (Action(port="b"),), table=1))
        out = table.process(Packet(dstport=80))
        assert {p["port"] for p in out} == {"a", "b"}

    def test_identity_includes_table_and_goto(self):
        base = FlowRule(1, HeaderMatch(dstport=80), (Action(port="x"),), cookie="c")
        other_table = FlowRule(
            1, HeaderMatch(dstport=80), (Action(port="x"),), cookie="c", table=1
        )
        with_goto = FlowRule(
            1, HeaderMatch(dstport=80), (Action(port="x"),), cookie="c", goto=1
        )
        assert base.identity != other_table.identity
        assert base.identity != with_goto.identity

    def test_content_hash_distinguishes_placement(self):
        plain = FlowTable()
        plain.install(rule(1, dstport=80))
        staged = FlowTable()
        staged.install(
            FlowRule(1, HeaderMatch(dstport=80), (Action(port="out"),), table=1)
        )
        assert plain.content_hash() != staged.content_hash()

    def test_table_ids_and_rules_in(self):
        table, stage1, stage2 = self.chained()
        assert table.table_ids() == (0, 1)
        assert table.rules_in(0) == (stage1,)
        assert table.rules_in(1) == (stage2,)
