"""Unit tests for ARP resolution."""

from repro.dataplane.arp import ARPService, ARPTable
from repro.netutils.ip import IPv4Address
from repro.netutils.mac import MACAddress


class TestARPTable:
    def test_learn_resolve_forget(self):
        table = ARPTable()
        table.learn("172.0.0.1", "08:00:27:00:00:01")
        assert table.resolve(IPv4Address("172.0.0.1")) == MACAddress("08:00:27:00:00:01")
        assert "172.0.0.1" in table and len(table) == 1
        table.forget("172.0.0.1")
        assert table.resolve(IPv4Address("172.0.0.1")) is None

    def test_learn_overwrites(self):
        table = ARPTable()
        table.learn("172.0.0.1", "08:00:27:00:00:01")
        table.learn("172.0.0.1", "08:00:27:00:00:02")
        assert table.resolve(IPv4Address("172.0.0.1")) == MACAddress("08:00:27:00:00:02")


class TestARPService:
    def test_static_resolution(self):
        service = ARPService()
        service.static_table.learn("172.0.0.1", "08:00:27:00:00:01")
        assert service.resolve("172.0.0.1") == MACAddress("08:00:27:00:00:01")
        assert service.queries == 1 and service.failures == 0

    def test_dynamic_resolver_chain(self):
        service = ARPService()
        vmac = MACAddress("02:a5:00:00:00:00")
        service.register(
            lambda address: vmac if address == IPv4Address("172.16.0.1") else None
        )
        assert service.resolve("172.16.0.1") == vmac

    def test_static_wins_over_dynamic(self):
        service = ARPService()
        service.static_table.learn("172.0.0.1", "08:00:27:00:00:01")
        service.register(lambda address: MACAddress("02:a5:00:00:00:00"))
        assert service.resolve("172.0.0.1") == MACAddress("08:00:27:00:00:01")

    def test_failure_counted(self):
        service = ARPService()
        assert service.resolve("9.9.9.9") is None
        assert service.failures == 1

    def test_resolver_order(self):
        service = ARPService()
        first = MACAddress("02:a5:00:00:00:01")
        second = MACAddress("02:a5:00:00:00:02")
        service.register(lambda a: first)
        service.register(lambda a: second)
        assert service.resolve("1.2.3.4") == first
