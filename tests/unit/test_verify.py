"""Unit tests for the verification oracle (repro.verify)."""

import pytest

from repro.core.controller import BASE_COOKIE
from repro.dataplane.flowtable import FlowRule
from repro.policy.classifier import Action, HeaderMatch
from repro.policy.packet import Packet
from repro.verify import (
    DifferentialChecker,
    ReferenceInterpreter,
    check_all_invariants,
    check_bgp_consistency,
    check_isolation,
    check_vnh_state,
)
from repro.verify.checker import Probe

from tests.conftest import P1, P3, P5


class TestReferenceInterpreter:
    def test_outbound_policy_decides_egress_owner(self, figure1_compiled):
        """A's dstport=80 policy sends p1 traffic to B despite C's shorter path."""
        interp = ReferenceInterpreter(figure1_compiled)
        tag = interp.tag("A", P1)
        packet = Packet(dstip="10.1.0.9", dstmac=tag, dstport=80, srcip="50.0.0.1")
        deliveries = interp.expected_deliveries("A", P1, packet)
        ports = {port for port, _ in deliveries}
        assert ports == {"B1"}  # B's inbound TE: srcip 50/8 -> B1

    def test_inbound_te_splits_on_source(self, figure1_compiled):
        interp = ReferenceInterpreter(figure1_compiled)
        tag = interp.tag("A", P1)
        packet = Packet(dstip="10.1.0.9", dstmac=tag, dstport=80, srcip="130.5.5.5")
        deliveries = interp.expected_deliveries("A", P1, packet)
        assert {port for port, _ in deliveries} == {"B2"}

    def test_default_forwarding_follows_best_path(self, figure1_compiled):
        """Unclaimed traffic (dstport 22) follows BGP best: C wins p1."""
        interp = ReferenceInterpreter(figure1_compiled)
        tag = interp.tag("A", P1)
        packet = Packet(dstip="10.1.0.9", dstmac=tag, dstport=22)
        deliveries = interp.expected_deliveries("A", P1, packet)
        assert {port for port, _ in deliveries} == {"C1"}

    def test_announcer_cannot_probe_own_prefix(self, figure1_compiled):
        interp = ReferenceInterpreter(figure1_compiled)
        assert not interp.can_probe("A", P5)
        assert interp.can_probe("A", P1)

    def test_selective_export_hides_route(self, figure1_compiled):
        """p4 is exported by B only to C; A still reaches it via C."""
        interp = ReferenceInterpreter(figure1_compiled)
        assert interp.can_probe("A", "10.4.0.0/16")
        tag = interp.tag("A", "10.4.0.0/16")
        packet = Packet(dstip="10.4.0.9", dstmac=tag, dstport=22)
        deliveries = interp.expected_deliveries("A", "10.4.0.0/16", packet)
        assert {port for port, _ in deliveries} == {"C2"}


class TestDifferentialChecker:
    def test_compiled_tables_match_reference(self, figure1_compiled):
        report = figure1_compiled.ops.verify(probes=64, seed=3)
        assert report.ok, report.summary()
        assert report.checked > 0
        assert report.mismatches == () and report.violations == ()

    def test_survives_fastpath_and_recompile(self, figure1_compiled):
        from repro.bgp.attributes import RouteAttributes

        # A best-path flip routed through the fast path, then folded in.
        figure1_compiled.routing.announce(
            "B", P3, RouteAttributes(as_path=[65002], next_hop="172.0.0.12")
        )
        assert figure1_compiled.ops.verify(seed=5).ok
        figure1_compiled.run_background_recompilation()
        assert figure1_compiled.ops.verify(seed=7).ok

    def test_bogus_rule_caught_and_minimized(self, figure1_compiled):
        """A misdirected high-priority rule produces a minimized repro."""
        interp = ReferenceInterpreter(figure1_compiled)
        tag = interp.tag("A", P1)
        figure1_compiled.switch.table.install(
            FlowRule(
                10**9,
                HeaderMatch(port="A1", dstmac=tag, dstport=80, srcport=1024),
                [Action(port="C1")],
                cookie="test-injected",
            )
        )
        checker = DifferentialChecker(figure1_compiled)
        probe = Probe(
            "A",
            "A1",
            P1,
            Packet(
                dstip="10.1.0.9",
                dstmac=tag,
                dstport=80,
                srcport=1024,
                srcip="50.0.0.1",
            ),
        )
        mismatch = checker.check_probe(probe)
        assert mismatch is not None
        shrunk = checker.minimize(mismatch)
        # srcip is irrelevant to the injected bug; minimization drops it.
        assert shrunk.probe.packet.get("srcip") is None
        assert shrunk.probe.packet.get("dstport") == 80
        text = shrunk.explain()
        assert "counterexample" in text and "A1" in text

    def test_metrics_reported(self, figure1_compiled):
        figure1_compiled.ops.verify(probes=16, seed=1)
        metrics = figure1_compiled.ops.metrics()
        runs = metrics["sdx_verify_runs_total"]["series"]
        assert any(
            sample["labels"] == {"outcome": "ok"} and sample["value"] >= 1
            for sample in runs
        )


class TestInvariants:
    def test_clean_controller_has_no_violations(self, figure1_compiled):
        assert check_all_invariants(figure1_compiled) == []

    def test_foreign_port_policy_rule_breaks_isolation(self, figure1_compiled):
        figure1_compiled.switch.table.install(
            FlowRule(
                10**9,
                HeaderMatch(port="C1", dstport=80),
                [Action(port="B1")],
                cookie=(BASE_COOKIE, "policy", "A"),
            )
        )
        violations = check_isolation(figure1_compiled)
        assert any("foreign port" in v.detail for v in violations)

    def test_unknown_tag_breaks_bgp_consistency(self, figure1_compiled):
        figure1_compiled.switch.table.install(
            FlowRule(
                10**9,
                HeaderMatch(dstmac="02:ff:ff:ff:ff:ff"),
                [Action(port="B1")],
                cookie="test-stale",
            )
        )
        violations = check_bgp_consistency(figure1_compiled)
        assert any("unknown tag" in v.detail for v in violations)

    def test_leaked_vnh_detected(self, figure1_compiled):
        leaked = figure1_compiled.allocator.allocate()
        violations = check_vnh_state(figure1_compiled)
        assert any(
            v.detail.endswith("(leak)") and v.subject == str(leaked.address)
            for v in violations
        )
        figure1_compiled.allocator.release(leaked.address)
        assert check_vnh_state(figure1_compiled) == []

    def test_violations_fold_into_report(self, figure1_compiled):
        figure1_compiled.allocator.allocate()
        report = figure1_compiled.ops.verify(probes=8, seed=2)
        assert not report.ok
        assert any(v.invariant == "vnh-state" for v in report.violations)
        assert "vnh-state" in report.summary()
