"""Unit tests for update-trace JSON persistence."""

import io

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.workloads.serialization import (
    dump_updates,
    dumps_updates,
    load_updates,
    loads_updates,
)
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace


def sample_updates():
    attrs = RouteAttributes(
        as_path=[65002, 65100],
        next_hop="172.0.0.11",
        med=5,
        local_pref=120,
        communities=["0:65001", "64512:7"],
    )
    return [
        BGPUpdate(
            "B",
            announced=[Announcement("10.1.0.0/16", attrs, export_to=["C", "A"])],
            time=1.5,
        ),
        BGPUpdate("C", withdrawn=[Withdrawal("10.2.0.0/16")], time=3.25),
    ]


class TestRoundTrip:
    def test_string_round_trip(self):
        original = sample_updates()
        restored = loads_updates(dumps_updates(original))
        assert len(restored) == 2
        assert restored[0].peer == "B" and restored[0].time == 1.5
        (announcement,) = restored[0].announced
        assert announcement == original[0].announced[0]
        assert restored[1].withdrawn == original[1].withdrawn

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        dump_updates(sample_updates(), buffer)
        buffer.seek(0)
        assert len(load_updates(buffer)) == 2

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        dump_updates(sample_updates(), path)
        restored = load_updates(path)
        assert restored[0].announced[0].export_to == frozenset({"A", "C"})

    def test_generated_trace_round_trips(self):
        ixp = generate_ixp(10, 100, seed=3)
        trace = generate_update_trace(ixp, bursts=10, seed=4)
        restored = loads_updates(dumps_updates(trace.updates))
        assert len(restored) == len(trace.updates)
        for left, right in zip(restored, trace.updates):
            assert left.peer == right.peer
            assert left.time == right.time
            assert left.announced == right.announced
            assert left.withdrawn == right.withdrawn

    def test_trace_replays_into_route_server(self):
        from repro.bgp.route_server import RouteServer

        ixp = generate_ixp(10, 100, seed=3)
        trace = generate_update_trace(ixp, bursts=10, seed=4)
        restored = loads_updates(dumps_updates(trace.updates))
        server = RouteServer()
        for name in ixp.participant_names:
            server.add_peer(name)
        server.load(ixp.updates)
        server.load(restored)  # must apply cleanly


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            loads_updates('{"format": "something-else", "version": 1, "updates": []}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            loads_updates('{"format": "repro-sdx-updates", "version": 99, "updates": []}')


# -- topology / trace / scenario documents -----------------------------------


from repro.workloads.providers import load_fixture
from repro.workloads.scenarios import ScenarioSpec, build_scenario_trace, replay
from repro.workloads.serialization import (
    dump_topology,
    dump_trace,
    dumps_scenario,
    dumps_topology,
    dumps_trace,
    load_topology,
    load_trace,
    loads_scenario,
    loads_topology,
    loads_trace,
)


class TestTopologyDocuments:
    def test_round_trip_preserves_everything(self):
        ixp = generate_ixp(8, 40, seed=6)
        restored = loads_topology(dumps_topology(ixp))
        assert restored.categories == ixp.categories
        assert restored.announced == ixp.announced
        assert list(restored.announced) == list(ixp.announced)  # order
        assert restored.seed == ixp.seed
        assert restored.peering == ixp.peering
        assert len(restored.updates) == len(ixp.updates)
        assert restored.config.participant_names() == ixp.config.participant_names()
        for name in ixp.participant_names:
            assert (
                restored.config.participant(name).ports
                == ixp.config.participant(name).ports
            )

    def test_provider_topology_round_trips(self):
        ixp = load_fixture("ixp_small").build()
        restored = loads_topology(dumps_topology(ixp))
        assert dumps_topology(restored) == dumps_topology(ixp)
        assert restored.peering == ixp.peering
        assert restored.config.name == "ixp_small"

    def test_file_round_trip(self, tmp_path):
        ixp = generate_ixp(5, 25, seed=2)
        path = str(tmp_path / "topology.json")
        dump_topology(ixp, path)
        assert dumps_topology(load_topology(path)) == dumps_topology(ixp)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-sdx-topology"):
            loads_topology(dumps_updates(sample_updates()))


class TestTraceDocuments:
    def test_round_trip_with_ground_truth(self):
        ixp = generate_ixp(6, 30, seed=1)
        trace = generate_update_trace(ixp, bursts=25, seed=4)
        restored = loads_trace(dumps_trace(trace))
        assert restored.active_prefixes == trace.active_prefixes
        assert restored.burst_count == trace.burst_count
        assert restored.duration == trace.duration
        assert dumps_trace(restored) == dumps_trace(trace)

    def test_file_round_trip(self, tmp_path):
        ixp = generate_ixp(6, 30, seed=1)
        trace = generate_update_trace(ixp, bursts=10, seed=4)
        path = str(tmp_path / "trace.json")
        dump_trace(trace, path)
        assert dumps_trace(load_trace(path)) == dumps_trace(trace)

    def test_wrong_format_rejected(self):
        ixp = generate_ixp(4, 12, seed=1)
        with pytest.raises(ValueError, match="not a repro-sdx-trace"):
            loads_trace(dumps_topology(ixp))


class TestScenarioDocuments:
    def test_round_trip(self):
        ixp = load_fixture("ixp_small").build()
        spec = ScenarioSpec(
            "episode-1", "stuck-routes", seed=5, params={"leak_count": 12}
        )
        trace = build_scenario_trace(ixp, spec)
        restored_spec, restored_trace = loads_scenario(dumps_scenario(spec, trace))
        assert restored_spec == spec
        assert dumps_trace(restored_trace) == dumps_trace(trace)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-sdx-scenario"):
            loads_scenario(dumps_updates(sample_updates()))


class TestReplayEquivalence:
    def test_reloaded_documents_replay_to_identical_fabric(self):
        """topology + trace → JSON → reload → replay: same fabric bytes."""
        from repro.core.controller import SDXController

        ixp = load_fixture("ixp_small").build()
        spec = ScenarioSpec("episode-2", "correlated-withdrawal", seed=6)
        trace = build_scenario_trace(ixp, spec)
        reloaded_ixp = loads_topology(dumps_topology(ixp))
        reloaded_trace = loads_trace(dumps_trace(trace))

        def fabric_hash(topology, updates):
            controller = SDXController(topology.config)
            controller.route_server.load(topology.updates)
            controller.compile()
            replay(controller, updates, verify_every=0, recompile_every=4)
            return controller.switch.table.content_hash()

        assert fabric_hash(ixp, trace.updates) == fabric_hash(
            reloaded_ixp, reloaded_trace.updates
        )
