"""Unit tests for update-trace JSON persistence."""

import io

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.workloads.serialization import (
    dump_updates,
    dumps_updates,
    load_updates,
    loads_updates,
)
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace


def sample_updates():
    attrs = RouteAttributes(
        as_path=[65002, 65100],
        next_hop="172.0.0.11",
        med=5,
        local_pref=120,
        communities=["0:65001", "64512:7"],
    )
    return [
        BGPUpdate(
            "B",
            announced=[Announcement("10.1.0.0/16", attrs, export_to=["C", "A"])],
            time=1.5,
        ),
        BGPUpdate("C", withdrawn=[Withdrawal("10.2.0.0/16")], time=3.25),
    ]


class TestRoundTrip:
    def test_string_round_trip(self):
        original = sample_updates()
        restored = loads_updates(dumps_updates(original))
        assert len(restored) == 2
        assert restored[0].peer == "B" and restored[0].time == 1.5
        (announcement,) = restored[0].announced
        assert announcement == original[0].announced[0]
        assert restored[1].withdrawn == original[1].withdrawn

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        dump_updates(sample_updates(), buffer)
        buffer.seek(0)
        assert len(load_updates(buffer)) == 2

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        dump_updates(sample_updates(), path)
        restored = load_updates(path)
        assert restored[0].announced[0].export_to == frozenset({"A", "C"})

    def test_generated_trace_round_trips(self):
        ixp = generate_ixp(10, 100, seed=3)
        trace = generate_update_trace(ixp, bursts=10, seed=4)
        restored = loads_updates(dumps_updates(trace.updates))
        assert len(restored) == len(trace.updates)
        for left, right in zip(restored, trace.updates):
            assert left.peer == right.peer
            assert left.time == right.time
            assert left.announced == right.announced
            assert left.withdrawn == right.withdrawn

    def test_trace_replays_into_route_server(self):
        from repro.bgp.route_server import RouteServer

        ixp = generate_ixp(10, 100, seed=3)
        trace = generate_update_trace(ixp, bursts=10, seed=4)
        restored = loads_updates(dumps_updates(trace.updates))
        server = RouteServer()
        for name in ixp.participant_names:
            server.add_peer(name)
        server.load(ixp.updates)
        server.load(restored)  # must apply cleanly


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            loads_updates('{"format": "something-else", "version": 1, "updates": []}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            loads_updates('{"format": "repro-sdx-updates", "version": 99, "updates": []}')
