"""Unit tests for update-stream burst analysis."""

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.bgp.updates import detect_bursts, trace_stats
from repro.netutils.ip import IPv4Prefix


def update(peer, prefix, at):
    return BGPUpdate(
        peer,
        announced=[
            Announcement(prefix, RouteAttributes(as_path=[65001], next_hop="172.0.0.1"))
        ],
        time=at,
    )


P = [IPv4Prefix(f"10.{i}.0.0/16") for i in range(8)]


class TestDetectBursts:
    def test_empty(self):
        assert detect_bursts([]) == []

    def test_single_update_single_burst(self):
        bursts = detect_bursts([update("B", P[0], 5.0)])
        assert len(bursts) == 1
        assert bursts[0].updates == 1 and bursts[0].prefixes == 1

    def test_close_updates_merge(self):
        bursts = detect_bursts(
            [update("B", P[0], 0.0), update("B", P[1], 0.5), update("B", P[2], 1.4)],
            gap_threshold=2.0,
        )
        assert len(bursts) == 1
        assert bursts[0].prefixes == 3

    def test_gap_splits_bursts(self):
        bursts = detect_bursts(
            [update("B", P[0], 0.0), update("B", P[1], 10.0)], gap_threshold=2.0
        )
        assert len(bursts) == 2

    def test_unsorted_input_is_sorted(self):
        bursts = detect_bursts([update("B", P[1], 10.0), update("B", P[0], 0.0)])
        assert len(bursts) == 2
        assert bursts[0].start == 0.0

    def test_duplicate_prefix_counted_once(self):
        bursts = detect_bursts([update("B", P[0], 0.0), update("B", P[0], 0.5)])
        assert bursts[0].updates == 2 and bursts[0].prefixes == 1

    def test_duration(self):
        bursts = detect_bursts([update("B", P[0], 1.0), update("B", P[1], 1.9)])
        assert abs(bursts[0].duration - 0.9) < 1e-9


class TestTraceStats:
    def test_table1_row_shape(self):
        updates = [
            update("B", P[0], 0.0),
            update("B", P[1], 0.5),
            update("C", P[0], 30.0),
        ]
        stats = trace_stats(updates, known_prefixes=P[:4])
        assert stats.peers == 2
        assert stats.prefixes == 4
        assert stats.updates == 3
        assert stats.prefixes_seeing_updates == 2
        assert abs(stats.fraction_prefixes_updated - 0.5) < 1e-9
        assert stats.bursts == 2
        assert stats.burst_sizes == (2, 1)
        assert len(stats.inter_burst_gaps) == 1

    def test_unknown_prefixes_excluded_from_fraction(self):
        updates = [update("B", P[7], 0.0)]
        stats = trace_stats(updates, known_prefixes=P[:4])
        assert stats.prefixes_seeing_updates == 0

    def test_empty_trace(self):
        stats = trace_stats([], known_prefixes=P[:4])
        assert stats.updates == 0
        assert stats.fraction_prefixes_updated == 0.0
