"""Unit tests for the Section 4.1/4.2 classifier transformations."""

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Route
from repro.core.fec import FECTable, PrefixGroup
from repro.core.transforms import (
    concat_disjoint,
    default_delivery_classifier,
    default_forwarding_classifier,
    default_rules_for_group,
    delivery_rules_for_group,
    extract_policy_groups,
    isolate,
    passthrough_classifier,
    rewrite_inbound_delivery,
    vmacify_outbound,
)
from repro.core.vmac import VirtualNextHop, VirtualNextHopAllocator
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress
from repro.policy import Packet, fwd, match
from repro.policy.classifier import Action, Classifier, HeaderMatch, Rule

P1 = IPv4Prefix("10.1.0.0/16")
P2 = IPv4Prefix("10.2.0.0/16")
P3 = IPv4Prefix("10.3.0.0/16")

PARTICIPANTS = frozenset({"A", "B", "C"})


def config3():
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant(
        "B",
        65002,
        [
            ("B1", "172.0.0.11", "08:00:27:00:00:11"),
            ("B2", "172.0.0.12", "08:00:27:00:00:12"),
        ],
    )
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    return config


def group_of(prefixes, index=0):
    allocator = VirtualNextHopAllocator("172.16.0.0/24")
    for _ in range(index):
        allocator.allocate()
    return PrefixGroup(index, frozenset(prefixes), allocator.allocate())


def route(peer, prefix, next_hop, as_path=(65002, 65100), export_to=None):
    return Route(
        prefix,
        RouteAttributes(as_path=list(as_path), next_hop=next_hop),
        learned_from=peer,
        export_to=export_to,
    )


class TestIsolate:
    def test_pins_rules_to_locations(self):
        classifier = (match(dstport=80) >> fwd("B")).compile()
        isolated = isolate(classifier, ["A1", "A2"])
        assert len(isolated) == 2
        assert isolated.eval(Packet(dstport=80, port="A1"))
        assert isolated.eval(Packet(dstport=80, port="B1")) == frozenset()

    def test_conflicting_port_constraint_vanishes(self):
        classifier = (match(port="B1", dstport=80) >> fwd("B")).compile()
        assert len(isolate(classifier, ["A1"])) == 0


class TestExtractPolicyGroups:
    def reachable(self, target):
        return {"B": frozenset({P1, P2}), "C": frozenset({P1, P3})}.get(
            target, frozenset()
        )

    def test_groups_per_forwarding_action(self):
        classifier = (
            (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))
        ).compile()
        groups = extract_policy_groups(classifier, PARTICIPANTS, self.reachable)
        assert frozenset({P1, P2}) in groups
        assert frozenset({P1, P3}) in groups

    def test_dstip_constraint_narrows_group(self):
        classifier = (match(dstip=P1, dstport=80) >> fwd("B")).compile()
        groups = extract_policy_groups(classifier, PARTICIPANTS, self.reachable)
        assert groups == [frozenset({P1})]

    def test_physical_targets_ignored(self):
        classifier = (match(dstport=80) >> fwd("E1")).compile()
        assert extract_policy_groups(classifier, PARTICIPANTS, self.reachable) == []

    def test_duplicate_groups_deduped(self):
        classifier = (
            (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("B"))
        ).compile()
        groups = extract_policy_groups(classifier, PARTICIPANTS, self.reachable)
        assert groups == [frozenset({P1, P2})]


class TestVmacifyOutbound:
    def reachable(self, target):
        return {"B": frozenset({P1, P2})}.get(target, frozenset())

    def test_rewrites_to_vmac_match(self):
        group = group_of({P1, P2})
        table = FECTable([group])
        classifier = (match(dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound(classifier, PARTICIPANTS, self.reachable, table)
        assert len(rewritten) == 1
        rule = rewritten[0]
        assert rule.match.constraints["dstmac"] == group.vnh.hardware
        assert "dstip" not in rule.match.constraints

    def test_keeps_finer_dstip_constraint(self):
        # policy names a /24 inside an announced /16: the VMAC alone is
        # too coarse, the dstip constraint must survive.
        group = group_of({P1, P2})
        table = FECTable([group])
        narrow = IPv4Prefix("10.1.7.0/24")
        classifier = (match(dstip=narrow, dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound(classifier, PARTICIPANTS, self.reachable, table)
        (rule,) = rewritten.rules
        assert rule.match.constraints["dstip"] == narrow
        assert rule.match.constraints["dstmac"] == group.vnh.hardware

    def test_drops_coarser_dstip_constraint(self):
        group = group_of({P1})
        table = FECTable([group])
        classifier = (match(dstip="10.0.0.0/8", dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound(
            classifier, PARTICIPANTS, lambda t: frozenset({P1}), table
        )
        (rule,) = rewritten.rules
        assert "dstip" not in rule.match.constraints

    def test_unreachable_target_removes_rule(self):
        table = FECTable([])
        classifier = (match(dstport=80) >> fwd("B")).compile()
        rewritten = vmacify_outbound(
            classifier, PARTICIPANTS, lambda t: frozenset(), table
        )
        assert len(rewritten) == 0

    def test_physical_action_passes_through(self):
        table = FECTable([])
        classifier = (match(dstport=80) >> fwd("E1")).compile()
        rewritten = vmacify_outbound(
            classifier, PARTICIPANTS, lambda t: frozenset(), table
        )
        assert len(rewritten) == 1
        assert rewritten[0].actions == frozenset({Action(port="E1")})

    def test_multicast_mixed_targets(self):
        group = group_of({P1, P2})
        table = FECTable([group])
        classifier = Classifier(
            [Rule(HeaderMatch(dstport=80), (Action(port="B"), Action(port="E1")))]
        )
        rewritten = vmacify_outbound(classifier, PARTICIPANTS, self.reachable, table)
        # group rule carries both actions; trailing rule keeps only E1
        assert rewritten[0].actions == frozenset(
            {Action(port="B"), Action(port="E1")}
        )
        assert rewritten[-1].actions == frozenset({Action(port="E1")})


class TestDefaultForwarding:
    def test_group_rule_targets_top_route(self):
        config = config3()
        group = group_of({P1})
        ranked = (route("B", P1, "172.0.0.11"), route("C", P1, "172.0.0.21", (65003, 65100, 65101)))
        rules = default_rules_for_group(config, group, ranked)
        assert len(rules) == 1
        assert rules[0].actions == frozenset({Action(port="B")})
        assert rules[0].match.constraints["dstmac"] == group.vnh.hardware

    def test_export_scoped_top_route_adds_exceptions(self):
        config = config3()
        group = group_of({P1})
        scoped = route("B", P1, "172.0.0.11", export_to=frozenset({"C"}))
        fallback = route("C", P1, "172.0.0.21", (65003, 65100, 65101))
        rules = default_rules_for_group(config, group, (scoped, fallback))
        # A is outside B's export scope: its port gets an exception to C.
        exception = rules[0]
        assert exception.match.constraints["port"] == "A1"
        assert exception.actions == frozenset({Action(port="C")})
        shared = rules[-1]
        assert "port" not in shared.match.constraints
        assert shared.actions == frozenset({Action(port="B")})

    def test_no_routes_no_rules(self):
        config = config3()
        assert default_rules_for_group(config, group_of({P1}), ()) == []

    def test_full_classifier_includes_physical_macs(self):
        config = config3()
        table = FECTable([group_of({P1})])
        classifier = default_forwarding_classifier(
            config, table, lambda group: (route("B", P1, "172.0.0.11"),)
        )
        # 1 group rule + 4 physical port rules
        assert len(classifier) == 5
        phys = classifier.rules[-1]
        assert phys.match.constraints["dstmac"] == MACAddress("08:00:27:00:00:21")
        assert phys.actions == frozenset({Action(port="C")})


class TestDelivery:
    def test_delivery_out_announcing_port(self):
        config = config3()
        group = group_of({P1})
        ranked = (route("B", P1, "172.0.0.12"),)  # announced via B2
        rules = delivery_rules_for_group(config.participant("B"), group, ranked)
        (rule,) = rules
        (action,) = rule.actions
        assert action.output_port == "B2"
        assert action.get("dstmac") == MACAddress("08:00:27:00:00:12")

    def test_non_announcer_gets_no_rules(self):
        config = config3()
        ranked = (route("B", P1, "172.0.0.11"),)
        assert delivery_rules_for_group(config.participant("C"), group_of({P1}), ranked) == []

    def test_full_delivery_classifier(self):
        config = config3()
        table = FECTable([group_of({P1})])
        classifier = default_delivery_classifier(
            config.participant("B"), table, lambda group: (route("B", P1, "172.0.0.11"),)
        )
        # 2 physical-MAC rules (B1, B2) + 1 VMAC delivery rule
        assert len(classifier) == 3

    def test_remote_participant_has_no_delivery(self):
        config = IXPConfig()
        config.add_participant("D", 64496, [])
        table = FECTable([group_of({P1})])
        classifier = default_delivery_classifier(
            config.participant("D"), table, lambda group: ()
        )
        assert len(classifier) == 0


class TestInboundDeliveryRewrite:
    def test_adds_interface_mac(self):
        config = config3()
        classifier = (match(srcip="0.0.0.0/1") >> fwd("B1")).compile()
        rewritten = rewrite_inbound_delivery(classifier, config)
        (rule,) = rewritten.rules
        (action,) = rule.actions
        assert action.get("dstmac") == MACAddress("08:00:27:00:00:11")

    def test_existing_dstmac_untouched(self):
        config = config3()
        classifier = Classifier(
            [
                Rule(
                    HeaderMatch.ANY,
                    (Action(port="B1", dstmac="02:aa:aa:aa:aa:aa"),),
                )
            ]
        )
        rewritten = rewrite_inbound_delivery(classifier, config)
        (action,) = rewritten.rules[0].actions
        assert action.get("dstmac") == MACAddress("02:aa:aa:aa:aa:aa")

    def test_virtual_target_untouched(self):
        config = config3()
        classifier = (match(dstport=80) >> fwd("B")).compile()
        rewritten = rewrite_inbound_delivery(classifier, config)
        (action,) = rewritten.rules[0].actions
        assert action.get("dstmac") is None


class TestCompositionPlumbing:
    def test_concat_disjoint_order_preserved(self):
        a = (match(port="A1") >> fwd("B")).compile()
        b = (match(port="B1") >> fwd("C")).compile()
        combined = concat_disjoint([a, b])
        assert len(combined) == len(a) + len(b)
        assert combined.eval(Packet(port="A1"))
        assert combined.eval(Packet(port="B1"))

    def test_passthrough_emits_with_interface_mac(self):
        config = config3()
        classifier = passthrough_classifier(config)
        out = classifier.eval(Packet(port="B2", dstport=80))
        (packet,) = out
        assert packet["port"] == "B2"
        assert packet["dstmac"] == MACAddress("08:00:27:00:00:12")
