"""SDXConfig: per-knob precedence (argument > env > default) and errors."""

from __future__ import annotations

import dataclasses

import pytest

from repro import IXPConfig, SDXConfig, SDXController
from repro.core.config import KNOBS, knob_table_markdown
from repro.guard import AdmissionConfig, GuardConfig
from repro.pipeline.backend import ParallelBackend, SerialBackend
from repro.runtime import RuntimeConfig


def make_config() -> IXPConfig:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    return config


# Every choice-valued knob: (field, env var, default, the other value).
CHOICE_KNOBS = [
    ("vmac_mode", "REPRO_VMAC", "fec", "superset"),
    ("dataplane_mode", "REPRO_DATAPLANE", "single", "multitable"),
    ("runtime_mode", "REPRO_RUNTIME", "inline", "eventloop"),
]


@pytest.mark.parametrize("field,env,default,other", CHOICE_KNOBS)
class TestChoicePrecedence:
    def test_default_when_nothing_set(self, field, env, default, other):
        assert getattr(SDXConfig().resolved(env={}), field) == default

    def test_env_beats_default(self, field, env, default, other):
        assert getattr(SDXConfig().resolved(env={env: other}), field) == other

    def test_explicit_field_beats_env(self, field, env, default, other):
        config = SDXConfig(**{field: default})
        assert getattr(config.resolved(env={env: other}), field) == default

    def test_legacy_kwarg_beats_sdx_field(self, field, env, default, other):
        overlaid = SDXConfig(**{field: default}).overlay(**{field: other})
        assert getattr(overlaid, field) == other

    def test_unset_kwarg_keeps_sdx_field(self, field, env, default, other):
        overlaid = SDXConfig(**{field: other}).overlay(**{field: None})
        assert getattr(overlaid, field) == other

    def test_invalid_env_value_names_the_variable(self, field, env, default, other):
        with pytest.raises(ValueError) as excinfo:
            SDXConfig().resolved(env={env: "bogus"})
        message = str(excinfo.value)
        assert env in message and "bogus" in message
        assert default in message and other in message  # lists the choices

    def test_invalid_explicit_value_names_the_field(self, field, env, default, other):
        with pytest.raises(ValueError) as excinfo:
            SDXConfig(**{field: "bogus"})
        message = str(excinfo.value)
        assert field in message and "bogus" in message
        assert default in message and other in message


class TestFastPathPrecedence:
    def test_default_is_enabled(self):
        assert SDXConfig().resolved(env={}).fast_path_enabled is True

    @pytest.mark.parametrize("raw,expected", [
        ("0", False), ("false", False), ("no", False), ("off", False),
        ("1", True), ("true", True), ("YES", True), ("On", True),
    ])
    def test_env_parsing(self, raw, expected):
        resolved = SDXConfig().resolved(env={"REPRO_FASTPATH": raw})
        assert resolved.fast_path_enabled is expected

    def test_explicit_beats_env(self):
        resolved = SDXConfig(fast_path_enabled=True).resolved(
            env={"REPRO_FASTPATH": "0"}
        )
        assert resolved.fast_path_enabled is True

    def test_invalid_env_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_FASTPATH"):
            SDXConfig().resolved(env={"REPRO_FASTPATH": "maybe"})

    def test_non_bool_explicit_value_rejected(self):
        with pytest.raises(ValueError, match="fast_path_enabled"):
            SDXConfig(fast_path_enabled="yes")


class TestBackendPrecedence:
    def test_default_is_serial(self):
        assert isinstance(SDXConfig().resolved(env={}).backend, SerialBackend)

    def test_env_selects_parallel(self):
        resolved = SDXConfig().resolved(env={"REPRO_BACKEND": "parallel"})
        assert isinstance(resolved.backend, ParallelBackend)

    def test_explicit_instance_beats_env(self):
        backend = SerialBackend()
        resolved = SDXConfig(backend=backend).resolved(
            env={"REPRO_BACKEND": "parallel"}
        )
        assert resolved.backend is backend

    def test_explicit_name_beats_env(self):
        resolved = SDXConfig(backend="serial").resolved(
            env={"REPRO_BACKEND": "parallel"}
        )
        assert isinstance(resolved.backend, SerialBackend)

    def test_invalid_env_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            SDXConfig().resolved(env={"REPRO_BACKEND": "bogus"})

    def test_invalid_explicit_name_names_the_field(self):
        with pytest.raises(ValueError, match="backend"):
            SDXConfig(backend="bogus")

    def test_invalid_procs_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_BACKEND_PROCS"):
            SDXConfig().resolved(
                env={"REPRO_BACKEND": "parallel", "REPRO_BACKEND_PROCS": "two"}
            )


class TestObjectKnobs:
    @pytest.mark.parametrize("field,good", [
        ("runtime_config", RuntimeConfig()),
        ("guard", GuardConfig()),
        ("admission", AdmissionConfig()),
    ])
    def test_value_carried_through_resolution(self, field, good):
        assert getattr(SDXConfig(**{field: good}).resolved(env={}), field) is good

    @pytest.mark.parametrize("field", ["runtime_config", "guard", "admission"])
    def test_wrong_type_names_the_field(self, field):
        with pytest.raises(ValueError, match=field):
            SDXConfig(**{field: "bogus"})

    def test_overlay_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="probe_budget"):
            SDXConfig().overlay(probe_budget=8)


class TestResolutionMechanics:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SDXConfig().vmac_mode = "superset"

    def test_resolved_is_idempotent(self):
        once = SDXConfig().resolved(env={"REPRO_VMAC": "superset"})
        again = once.resolved(env={"REPRO_VMAC": "fec"})
        assert again.vmac_mode == "superset"
        assert again.backend is once.backend

    def test_from_env_snapshot(self):
        snapshot = SDXConfig.from_env(
            {"REPRO_VMAC": "superset", "REPRO_RUNTIME": "eventloop"}
        )
        assert snapshot.vmac_mode == "superset"
        assert snapshot.runtime_mode == "eventloop"
        assert snapshot.dataplane_mode == "single"
        assert snapshot.fast_path_enabled is True

    def test_repr_shows_only_set_fields(self):
        assert repr(SDXConfig(vmac_mode="superset")) == (
            "SDXConfig(vmac_mode='superset')"
        )

    def test_registry_covers_every_field(self):
        fields = {field.name for field in dataclasses.fields(SDXConfig)}
        assert {knob.field for knob in KNOBS} == fields

    def test_knob_table_lists_every_knob(self):
        table = knob_table_markdown()
        for knob in KNOBS:
            assert f"`{knob.field}`" in table
            if knob.env is not None:
                assert f"`{knob.env}`" in table


class TestControllerPrecedence:
    """End-to-end: the controller resolves through the same path."""

    def test_env_reaches_the_controller(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMAC", "superset")
        controller = SDXController(make_config())
        assert controller.vmac_mode == "superset"
        assert controller.sdx.vmac_mode == "superset"

    def test_sdx_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMAC", "superset")
        controller = SDXController(make_config(), sdx=SDXConfig(vmac_mode="fec"))
        assert controller.vmac_mode == "fec"

    def test_legacy_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATAPLANE", "multitable")
        controller = SDXController(make_config(), dataplane_mode="single")
        assert controller.dataplane_mode == "single"

    def test_legacy_kwarg_beats_sdx_config(self):
        controller = SDXController(
            make_config(),
            vmac_mode="superset",
            sdx=SDXConfig(vmac_mode="fec"),
        )
        assert controller.vmac_mode == "superset"

    def test_guard_and_admission_flow_through_sdx(self):
        controller = SDXController(
            make_config(),
            sdx=SDXConfig(
                guard=GuardConfig(probe_budget=4),
                admission=AdmissionConfig(policy_edits_per_sec=1.0),
            ),
        )
        assert controller.guard is not None
        assert controller.admission is not None

    def test_invalid_env_fails_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMAC", "bogus")
        with pytest.raises(ValueError, match="REPRO_VMAC"):
            SDXController(make_config())
