"""Unit tests for spanning-tree computation on learning-switch fabrics."""

import pytest

from repro.dataplane.fabric import Fabric, Host
from repro.dataplane.stp import compute_spanning_tree
from repro.dataplane.switch import LearningSwitch


def triangle_links():
    return [
        (("s1", "u12"), ("s2", "u21")),
        (("s2", "u23"), ("s3", "u32")),
        (("s3", "u31"), ("s1", "u13")),
    ]


class TestComputation:
    def test_requires_switches(self):
        with pytest.raises(ValueError):
            compute_spanning_tree([], [])

    def test_unknown_switch_in_link_rejected(self):
        with pytest.raises(ValueError):
            compute_spanning_tree(["s1"], [(("s1", "a"), ("sX", "b"))])

    def test_partitioned_graph_rejected(self):
        with pytest.raises(ValueError):
            compute_spanning_tree(["s1", "s2"], [])

    def test_single_switch_trivial(self):
        tree = compute_spanning_tree(["s1"], [])
        assert tree.root == "s1"
        assert tree.blocked == frozenset()

    def test_line_has_no_blocked_ports(self):
        tree = compute_spanning_tree(
            ["s1", "s2", "s3"],
            [(("s1", "u12"), ("s2", "u21")), (("s2", "u23"), ("s3", "u32"))],
        )
        assert tree.blocked == frozenset()
        assert len(tree.forwarding) == 4

    def test_triangle_blocks_exactly_one_link(self):
        tree = compute_spanning_tree(["s1", "s2", "s3"], triangle_links())
        assert tree.root == "s1"
        # one link (two endpoints) must be blocked
        assert len(tree.blocked) == 2
        blocked_switches = {switch for switch, _ in tree.blocked}
        assert blocked_switches == {"s2", "s3"}  # the link far from the root

    def test_deterministic(self):
        a = compute_spanning_tree(["s1", "s2", "s3"], triangle_links())
        b = compute_spanning_tree(["s3", "s2", "s1"], list(reversed(triangle_links())))
        assert a.blocked == b.blocked and a.forwarding == b.forwarding

    def test_edge_ports_never_blocked(self):
        tree = compute_spanning_tree(["s1", "s2", "s3"], triangle_links())
        assert not tree.is_blocked("s1", "edge-port")


class TestAppliedToFabric:
    def build_loop_fabric(self):
        """Three learning switches in a triangle + one host per switch."""
        fabric = Fabric()
        switches = {}
        for index in (1, 2, 3):
            name = f"s{index}"
            switch = LearningSwitch(name, ports=[f"h{index}"])
            switches[name] = fabric.add_node(switch)
        for (a, pa), (b, pb) in triangle_links():
            switches[a].add_port(pa)
            switches[b].add_port(pb)
            fabric.link((a, pa), (b, pb))
        hosts = {}
        for index in (1, 2, 3):
            host = Host(f"host{index}", f"10.0.0.{index}", f"02:de:00:00:00:0{index}")
            fabric.add_node(host)
            fabric.link((host.name, "eth0"), (f"s{index}", f"h{index}"))
            hosts[host.name] = host
        return fabric, switches, hosts

    def test_flood_loops_without_stp(self):
        fabric, switches, hosts = self.build_loop_fabric()
        fabric.send_from(
            "host1",
            "eth0",
            hosts["host1"].build_packet(dstip="10.0.0.2", dstmac="02:de:00:00:00:02"),
        )
        assert fabric.hop_limit_drops > 0  # broadcast storm

    def test_stp_breaks_the_loop_and_preserves_reachability(self):
        fabric, switches, hosts = self.build_loop_fabric()
        tree = compute_spanning_tree(switches.keys(), triangle_links())
        tree.apply(switches)
        packet = hosts["host1"].build_packet(
            dstip="10.0.0.3", dstmac="02:de:00:00:00:03"
        )
        fabric.send_from("host1", "eth0", packet)
        assert fabric.hop_limit_drops == 0
        assert hosts["host3"].received == [packet]

    def test_learning_still_works_over_the_tree(self):
        fabric, switches, hosts = self.build_loop_fabric()
        tree = compute_spanning_tree(switches.keys(), triangle_links())
        tree.apply(switches)
        fabric.send_from(
            "host1",
            "eth0",
            hosts["host1"].build_packet(dstip="10.0.0.3", dstmac="02:de:00:00:00:03"),
        )
        floods_before = sum(s.floods for s in switches.values())
        # reply: MACs are now learned along the tree, no new floods
        fabric.send_from(
            "host3",
            "eth0",
            hosts["host3"].build_packet(dstip="10.0.0.1", dstmac="02:de:00:00:00:01"),
        )
        assert hosts["host1"].received
        assert sum(s.floods for s in switches.values()) == floods_before


class TestBlockedPortBehaviour:
    def test_blocked_port_neither_learns_nor_forwards(self):
        switch = LearningSwitch("s", ports=["p1", "p2", "p3"])
        switch.set_port_blocked("p3")
        from repro.policy.packet import Packet

        out = switch.receive(
            Packet(srcmac="02:de:00:00:00:01", dstmac="02:de:00:00:00:02"), "p1"
        )
        assert {port for port, _ in out} == {"p2"}  # p3 excluded from flood
        assert switch.receive(
            Packet(srcmac="02:de:00:00:00:09", dstmac="02:de:00:00:00:01"), "p3"
        ) == []
        assert switch.blocked_ports() == {"p3"}
        switch.set_port_blocked("p3", False)
        assert switch.blocked_ports() == frozenset()
