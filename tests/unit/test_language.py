"""Unit tests for the policy language: predicates, policies, composition."""

import pytest

from repro.policy import (
    Packet,
    drop,
    false_,
    fwd,
    identity,
    if_,
    match,
    modify,
    parallel,
    sequential,
    true_,
    union_match,
)
from repro.policy.classifier import HeaderMatch
from repro.policy.language import (
    Forward,
    Intersection,
    Match,
    Negation,
    Parallel,
    Sequential,
    Union,
)

WEB = Packet(dstport=80, srcip="10.0.0.1", dstip="8.8.8.8", port="A1")
SSH = Packet(dstport=22, srcip="10.0.0.1", dstip="8.8.8.8", port="A1")


def both_eval(policy, packet):
    """Evaluate through the interpreter and the compiled classifier."""
    ast_out = policy.eval(packet)
    cls_out = policy.compile().eval(packet)
    assert ast_out == cls_out, f"AST/classifier divergence for {policy!r} on {packet!r}"
    return ast_out


class TestPredicates:
    def test_true_false(self):
        assert both_eval(true_, WEB) == {WEB}
        assert both_eval(false_, WEB) == frozenset()

    def test_match_single_field(self):
        assert both_eval(match(dstport=80), WEB) == {WEB}
        assert both_eval(match(dstport=80), SSH) == frozenset()

    def test_match_conjunction_in_kwargs(self):
        predicate = match(dstport=80, srcip="10.0.0.0/8")
        assert predicate.test(WEB)
        assert not predicate.test(WEB.modify(srcip="11.0.0.1"))

    def test_match_set_expands_to_alternatives(self):
        predicate = match(dstport={80, 443})
        assert predicate.test(WEB)
        assert predicate.test(WEB.modify(dstport=443))
        assert not predicate.test(SSH)
        assert len(predicate.header_matches) == 2

    def test_match_empty_set_rejected(self):
        with pytest.raises(ValueError):
            match(dstport=set())

    def test_and_or_invert(self):
        p = match(dstport=80) & match(srcip="10.0.0.0/8")
        assert both_eval(p, WEB) == {WEB}
        q = match(dstport=22) | match(dstport=80)
        assert both_eval(q, WEB) == {WEB}
        assert both_eval(q, WEB.modify(dstport=23)) == frozenset()
        n = ~match(dstport=80)
        assert both_eval(n, SSH) == {SSH}
        assert both_eval(n, WEB) == frozenset()

    def test_de_morgan(self):
        for pkt in (WEB, SSH, WEB.modify(srcip="11.1.1.1")):
            lhs = ~(match(dstport=80) | match(srcip="10.0.0.0/8"))
            rhs = ~match(dstport=80) & ~match(srcip="10.0.0.0/8")
            assert both_eval(lhs, pkt) == both_eval(rhs, pkt)

    def test_double_negation(self):
        p = ~~match(dstport=80)
        assert both_eval(p, WEB) == {WEB}
        assert both_eval(p, SSH) == frozenset()

    def test_boolean_combinators_flatten(self):
        u = Union(match(dstport=80), Union(match(dstport=443), match(dstport=22)))
        assert len(u.predicates) == 3
        i = Intersection(match(dstport=80), Intersection(true_, true_))
        assert len(i.predicates) == 3

    def test_negation_requires_filter(self):
        with pytest.raises(TypeError):
            Negation(fwd("B"))
        with pytest.raises(TypeError):
            Union(fwd("B"), true_)

    def test_union_match_builder(self):
        predicate = union_match([HeaderMatch(dstport=80), HeaderMatch(dstport=22)])
        assert predicate.test(WEB) and predicate.test(SSH)
        assert union_match([]) is false_
        assert union_match([HeaderMatch.ANY]) is true_


class TestPolicies:
    def test_identity_and_drop(self):
        assert both_eval(identity, WEB) == {WEB}
        assert both_eval(drop, WEB) == frozenset()

    def test_fwd_sets_location(self):
        out = both_eval(fwd("B"), WEB)
        assert out == {WEB.modify(port="B")}

    def test_modify_rewrites(self):
        out = both_eval(modify(dstip="74.125.1.1"), WEB)
        (pkt,) = out
        assert str(pkt["dstip"]) == "74.125.1.1"

    def test_sequential_filter_then_forward(self):
        policy = match(dstport=80) >> fwd("B")
        assert both_eval(policy, WEB) == {WEB.modify(port="B")}
        assert both_eval(policy, SSH) == frozenset()

    def test_parallel_application_specific_peering(self):
        policy = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))
        assert both_eval(policy, WEB) == {WEB.modify(port="B")}
        https = WEB.modify(dstport=443)
        assert both_eval(policy, https) == {https.modify(port="C")}
        assert both_eval(policy, SSH) == frozenset()

    def test_parallel_multicast_on_overlap(self):
        policy = (match(dstport=80) >> fwd("B")) + (match(srcip="10.0.0.0/8") >> fwd("C"))
        out = both_eval(policy, WEB)
        assert {p["port"] for p in out} == {"B", "C"}

    def test_sequence_of_modifications_compose(self):
        policy = modify(dstip="1.1.1.1") >> modify(dstport=8080) >> fwd("B")
        (pkt,) = both_eval(policy, WEB)
        assert str(pkt["dstip"]) == "1.1.1.1" and pkt["dstport"] == 8080 and pkt["port"] == "B"

    def test_drop_absorbs_sequence(self):
        policy = match(dstport=80) >> drop >> fwd("B")
        assert both_eval(policy, WEB) == frozenset()

    def test_if_branches(self):
        policy = if_(match(srcip="96.25.160.0/24"), modify(dstip="74.125.224.161"), identity)
        inside = Packet(srcip="96.25.160.9", dstip="74.125.1.1")
        outside = Packet(srcip="1.2.3.4", dstip="74.125.1.1")
        (rewritten,) = both_eval(policy, inside)
        assert str(rewritten["dstip"]) == "74.125.224.161"
        assert both_eval(policy, outside) == {outside}

    def test_if_requires_filter(self):
        with pytest.raises(TypeError):
            if_(fwd("B"), identity, drop)

    def test_nary_helpers(self):
        assert sequential() is identity
        assert parallel() is drop
        assert sequential(fwd("B")) == fwd("B")
        assert parallel(fwd("B")) == fwd("B")
        assert isinstance(sequential(true_, fwd("B")), Sequential)
        assert isinstance(parallel(fwd("B"), fwd("C")), Parallel)

    def test_combinators_flatten(self):
        nested = (fwd("A") + fwd("B")) + fwd("C")
        assert len(nested.policies) == 3
        chained = (true_ >> fwd("A")) >> fwd("B")
        assert len(chained.policies) == 3


class TestASTTools:
    def test_equality_and_hash(self):
        a = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))
        b = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))
        assert a == b and hash(a) == hash(b)
        assert a != (match(dstport=80) >> fwd("C"))

    def test_walk_visits_descendants(self):
        policy = (match(dstport=80) >> fwd("B")) + drop
        kinds = {type(node).__name__ for node in policy.walk()}
        assert {"Parallel", "Sequential", "Match", "Forward", "Drop"} <= kinds

    def test_transform_rewrites_targets(self):
        policy = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))

        def retarget(node):
            if isinstance(node, Forward) and node.port == "B":
                return fwd("B-new")
            return None

        rewritten = policy.transform(retarget)
        ports = {node.port for node in rewritten.walk() if isinstance(node, Forward)}
        assert ports == {"B-new", "C"}
        # original is untouched
        ports = {node.port for node in policy.walk() if isinstance(node, Forward)}
        assert ports == {"B", "C"}

    def test_repr_round_trips_visually(self):
        policy = (match(dstport=80) >> fwd("B")) + drop
        text = repr(policy)
        assert "match" in text and "fwd" in text and "drop" in text
