"""Unit tests for the packet-trace diagnostic."""

import pytest

from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet

from tests.conftest import P1, P5


def tagged(controller, sender, dst_prefix, dstip, **headers):
    advertised = {
        a.prefix: a.attributes.next_hop for a in controller.advertisements(sender)
    }
    next_hop = advertised[IPv4Prefix(dst_prefix)]
    vmac = controller.arp.resolve(next_hop)
    if vmac is None:
        owner = controller.config.owner_of_address(next_hop)
        vmac = owner.port_for_address(next_hop).hardware
    return Packet(dstip=dstip, dstmac=vmac, **headers)


class TestTracePacket:
    def test_policy_hit_reports_participant(self, figure1_compiled):
        packet = tagged(
            figure1_compiled, "A", P1, "10.1.2.3", dstport=80, srcip="50.0.0.1", srcport=7
        )
        trace = figure1_compiled.trace_packet(packet, "A1")
        assert trace.provenance == "policy:A"
        assert trace.egress_ports() == {"B1"}
        assert not trace.dropped
        assert "via=policy:A" in repr(trace)

    def test_default_hit_reported(self, figure1_compiled):
        packet = tagged(
            figure1_compiled, "A", P1, "10.1.2.3", dstport=9999, srcip="50.0.0.1", srcport=7
        )
        trace = figure1_compiled.trace_packet(packet, "A1")
        assert trace.provenance == "default"
        assert trace.egress_ports() == {"C1"}

    def test_no_match_reported_as_drop(self, figure1_compiled):
        packet = Packet(dstip="10.1.2.3", dstmac="02:99:99:99:99:99", dstport=80)
        trace = figure1_compiled.trace_packet(packet, "A1")
        assert trace.rule is None and trace.dropped
        assert trace.provenance == "no-match"
        assert "no matching rule" in repr(trace)

    def test_fast_path_hit_reported(self, figure1_compiled):
        figure1_compiled.routing.withdraw("C", P1)
        packet = tagged(
            figure1_compiled, "A", P1, "10.1.2.3", dstport=80, srcip="50.0.0.1", srcport=7
        )
        trace = figure1_compiled.trace_packet(packet, "A1")
        assert trace.provenance.startswith("fastpath:")
        assert trace.egress_ports() == {"B1"}

    def test_trace_does_not_touch_counters(self, figure1_compiled):
        packet = tagged(
            figure1_compiled, "A", P1, "10.1.2.3", dstport=80, srcip="50.0.0.1", srcport=7
        )
        figure1_compiled.trace_packet(packet, "A1")
        assert figure1_compiled.policy_traffic("A") == (0, 0)
