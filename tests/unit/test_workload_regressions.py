"""Regression tests pinning the workload-generator correctness fixes.

Each test here fails on the pre-fix generators:

* ``_port_specs`` silently wrapped its MAC encoding at participant
  index 0xFFFF and its IP encoding past ~2^20 host slots, and emitted
  ``.0``/``.255`` final octets;
* ``generate_update_trace`` could withdraw a prefix whose peer never
  announced it (a *ghost withdrawal* — silently absorbed by the route
  server's RFC 7606 treat-as-withdraw path, so nothing downstream
  noticed).
"""

import pytest

from repro.ixp.topology import IXPConfig
from repro.workloads.topology_gen import (
    PEERING_LAN_CAPACITY,
    PORTS_PER_PARTICIPANT,
    generate_ixp,
    peering_lan_ports,
)
from repro.workloads.update_gen import (
    TraceValidationError,
    generate_update_trace,
    validate_trace,
)


class TestPortSpecCollisions:
    def test_20k_participants_at_4_ports_no_collisions(self):
        """20k participants × 4 ports: distinct IPs/MACs, clean octets.

        The pre-fix encoding emits ``172.x.y.255`` at slot 254 (index
        63, port 3) and ``172.x.y.0`` one slot later.
        """
        addresses = set()
        macs = set()
        for index in range(20_000):
            for _, address, hardware in peering_lan_ports(index, 4):
                last_octet = int(address.rsplit(".", 1)[1])
                assert 1 <= last_octet <= 254, address
                addresses.add(address)
                macs.add(hardware)
        assert len(addresses) == 80_000
        assert len(macs) == 80_000

    def test_mac_does_not_wrap_at_16bit_index(self):
        """Pre-fix MACs encoded ``index & 0xFFFF``: 70000 aliased 4464."""
        high = peering_lan_ports(70_000, 1)[0][2]
        low = peering_lan_ports(70_000 - 0x10000, 1)[0][2]
        assert high != low

    def test_ip_exhaustion_raises_instead_of_wrapping(self):
        """Pre-fix, index 262144 silently re-issued 172.0.0.1."""
        first = peering_lan_ports(0, 1)[0][1]
        try:
            wrapped = peering_lan_ports(262_144, 1)[0][1]
        except ValueError:
            return  # refusing to allocate is the correct behaviour
        assert wrapped != first

    def test_capacity_boundary(self):
        last_ok = PEERING_LAN_CAPACITY // PORTS_PER_PARTICIPANT - 1
        peering_lan_ports(last_ok, PORTS_PER_PARTICIPANT)
        with pytest.raises(ValueError, match="exhausted"):
            peering_lan_ports(last_ok + 1, PORTS_PER_PARTICIPANT)

    def test_port_count_bounded(self):
        with pytest.raises(ValueError, match="at most"):
            peering_lan_ports(0, PORTS_PER_PARTICIPANT + 1)


class TestIXPConfigCollisionChecks:
    """The O(total ports) uniqueness sets keep the original errors."""

    def _config_with_one(self):
        config = IXPConfig()
        config.add_participant(
            "A", asn=65001, ports=[("A1", "172.0.0.1", "08:00:27:00:00:01")]
        )
        return config

    def test_duplicate_port_id_rejected(self):
        config = self._config_with_one()
        with pytest.raises(ValueError, match="port id 'A1' already in use"):
            config.add_participant(
                "B", asn=65002, ports=[("A1", "172.0.0.2", "08:00:27:00:00:02")]
            )

    def test_duplicate_address_rejected(self):
        config = self._config_with_one()
        with pytest.raises(ValueError, match="address 172.0.0.1 already in use"):
            config.add_participant(
                "B", asn=65002, ports=[("B1", "172.0.0.1", "08:00:27:00:00:02")]
            )

    def test_duplicate_mac_rejected(self):
        config = self._config_with_one()
        with pytest.raises(ValueError, match="MAC 08:00:27:00:00:01 already in use"):
            config.add_participant(
                "B", asn=65002, ports=[("B1", "172.0.0.2", "08:00:27:00:00:01")]
            )

    def test_rejected_participant_leaves_no_residue(self):
        config = self._config_with_one()
        with pytest.raises(ValueError):
            config.add_participant(
                "B",
                asn=65002,
                ports=[
                    ("B1", "172.0.0.2", "08:00:27:00:00:02"),
                    ("A1", "172.0.0.3", "08:00:27:00:00:03"),
                ],
            )
        # B's first (valid) port must not have been registered.
        config.add_participant(
            "C", asn=65003, ports=[("B1", "172.0.0.2", "08:00:27:00:00:02")]
        )


class TestGhostWithdrawals:
    def _down_session_ixp(self):
        """An exchange where one member's session is down at trace start.

        Its prefixes are in ``announced`` (intended ownership) but its
        announcements never reached the route server (``updates``).
        """
        ixp = generate_ixp(6, 36, seed=1)
        victim = max(ixp.announced, key=lambda n: len(ixp.announced[n]))
        return (
            ixp._replace(updates=[u for u in ixp.updates if u.peer != victim]),
            victim,
        )

    def test_no_withdrawal_for_never_announced_prefix(self):
        """Pre-fix: withdrawal_probability=1.0 ghost-withdrew the down
        member's prefixes on first touch."""
        ixp, victim = self._down_session_ixp()
        trace = generate_update_trace(
            ixp, bursts=60, seed=3, active_fraction=1.0, withdrawal_probability=1.0
        )
        live = set()
        for update in ixp.updates:
            for announcement in update.announced:
                live.add((update.peer, announcement.prefix))
        for update in trace.updates:
            for withdrawal in update.withdrawn:
                assert (update.peer, withdrawal.prefix) in live, (
                    f"ghost withdrawal of {withdrawal.prefix} from "
                    f"{update.peer} (session down at start)"
                )
            for announcement in update.announced:
                live.add((update.peer, announcement.prefix))
            for withdrawal in update.withdrawn:
                live.discard((update.peer, withdrawal.prefix))

    def test_down_prefix_is_brought_up_before_it_churns(self):
        ixp, victim = self._down_session_ixp()
        trace = generate_update_trace(
            ixp, bursts=60, seed=3, active_fraction=1.0, withdrawal_probability=1.0
        )
        victim_events = [u for u in trace.updates if u.peer == victim]
        assert victim_events, "the down member's prefixes are still active"
        assert victim_events[0].announced and not victim_events[0].withdrawn

    def test_validator_accepts_the_fixed_trace(self):
        ixp, _ = self._down_session_ixp()
        trace = generate_update_trace(
            ixp, bursts=60, seed=3, active_fraction=1.0, withdrawal_probability=1.0
        )
        validate_trace(ixp, trace.updates)


class TestTraceValidator:
    def test_detects_ghost_withdrawal(self):
        from repro.bgp.messages import BGPUpdate, Withdrawal

        ixp = generate_ixp(4, 12, seed=2)
        ghost = BGPUpdate(
            ixp.participant_names[0],
            withdrawn=[Withdrawal("203.0.113.0/24")],
            time=1.0,
        )
        with pytest.raises(TraceValidationError, match="ghost withdrawal"):
            validate_trace(ixp, [ghost])

    def test_detects_same_burst_self_supersede(self):
        from repro.bgp.attributes import RouteAttributes
        from repro.bgp.messages import Announcement, BGPUpdate

        ixp = generate_ixp(4, 12, seed=2)
        name = ixp.participant_names[0]
        prefix = ixp.announced[name][0]
        spec = ixp.config.participant(name)
        announcement = Announcement(
            prefix,
            RouteAttributes(as_path=[spec.asn], next_hop=spec.ports[0].address),
        )
        doubled = [
            BGPUpdate(name, announced=[announcement], time=1.0),
            BGPUpdate(name, announced=[announcement], time=1.2),
        ]
        with pytest.raises(TraceValidationError, match="self-superseding"):
            validate_trace(ixp, doubled)
        # The same pair separated by a burst gap is fine.
        spaced = [
            BGPUpdate(name, announced=[announcement], time=1.0),
            BGPUpdate(name, announced=[announcement], time=5.0),
        ]
        validate_trace(ixp, spaced)

    def test_detects_time_regression(self):
        from repro.bgp.attributes import RouteAttributes
        from repro.bgp.messages import Announcement, BGPUpdate

        ixp = generate_ixp(4, 12, seed=2)
        name = ixp.participant_names[0]
        prefix = ixp.announced[name][0]
        spec = ixp.config.participant(name)
        announcement = Announcement(
            prefix,
            RouteAttributes(as_path=[spec.asn], next_hop=spec.ports[0].address),
        )
        backwards = [
            BGPUpdate(name, announced=[announcement], time=2.0),
            BGPUpdate(name, announced=[announcement], time=1.0),
        ]
        with pytest.raises(TraceValidationError, match="time-ordered"):
            validate_trace(ixp, backwards)
