"""Unit tests for the border-router forwarding pipeline."""

import pytest

from repro.dataplane.arp import ARPService
from repro.dataplane.router import BorderRouter, RouterInterface
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress
from repro.policy.packet import Packet


@pytest.fixture
def arp():
    service = ARPService()
    # the next-hop router's interface on the peering LAN
    service.static_table.learn("172.0.0.11", "08:00:27:00:00:11")
    return service


@pytest.fixture
def router(arp):
    return BorderRouter(
        "router-A",
        asn=65001,
        interfaces=[
            RouterInterface("A1", IPv4Address("172.0.0.1"), MACAddress("08:00:27:00:00:01"))
        ],
        arp=arp,
    )


class TestControlPlane:
    def test_requires_an_interface(self, arp):
        with pytest.raises(ValueError):
            BorderRouter("r", asn=1, interfaces=[], arp=arp)

    def test_interface_registered_in_arp(self, router, arp):
        assert arp.resolve("172.0.0.1") == MACAddress("08:00:27:00:00:01")

    def test_install_and_lookup_route(self, router):
        router.install_route("10.0.0.0/8", "172.0.0.11")
        matched, next_hop = router.route_for("10.1.2.3")
        assert matched == IPv4Prefix("10.0.0.0/8")
        assert next_hop == IPv4Address("172.0.0.11")

    def test_longest_prefix_wins(self, router):
        router.install_route("10.0.0.0/8", "172.0.0.11")
        router.install_route("10.1.0.0/16", "172.0.0.99")
        _, next_hop = router.route_for("10.1.2.3")
        assert next_hop == IPv4Address("172.0.0.99")

    def test_withdraw_route(self, router):
        router.install_route("10.0.0.0/8", "172.0.0.11")
        router.withdraw_route("10.0.0.0/8")
        assert router.route_for("10.1.2.3") is None
        router.withdraw_route("10.0.0.0/8")  # idempotent

    def test_rib_snapshot(self, router):
        router.install_route("10.0.0.0/8", "172.0.0.11")
        snapshot = router.rib_snapshot()
        assert snapshot == {IPv4Prefix("10.0.0.0/8"): IPv4Address("172.0.0.11")}


class TestDataPlane:
    def test_internal_to_fabric_rewrites_macs(self, router):
        router.install_route("10.0.0.0/8", "172.0.0.11")
        packet = Packet(srcip="192.168.1.5", dstip="10.1.2.3")
        ((port, tagged),) = router.receive(packet, "lan0")
        assert port == "A1"
        assert tagged["dstmac"] == MACAddress("08:00:27:00:00:11")
        assert tagged["srcmac"] == MACAddress("08:00:27:00:00:01")

    def test_vnh_tagging_via_arp_responder(self, router, arp):
        """The SDX trick: VNH route + ARP responder => VMAC-tagged frames."""
        vmac = MACAddress("02:a5:00:00:00:07")
        arp.register(lambda a: vmac if a == IPv4Address("172.16.0.7") else None)
        router.install_route("10.0.0.0/8", "172.16.0.7")
        ((_, tagged),) = router.receive(Packet(srcip="1.1.1.1", dstip="10.0.0.1"), "lan0")
        assert tagged["dstmac"] == vmac

    def test_no_route_drops(self, router):
        assert router.receive(Packet(srcip="1.1.1.1", dstip="99.0.0.1"), "lan0") == []
        assert router.unroutable == 1

    def test_unresolvable_next_hop_drops(self, router):
        router.install_route("10.0.0.0/8", "172.0.0.250")  # nobody answers
        assert router.receive(Packet(srcip="1.1.1.1", dstip="10.0.0.1"), "lan0") == []
        assert router.arp_unresolved == 1

    def test_missing_dstip_drops(self, router):
        assert router.receive(Packet(srcport=9), "lan0") == []
        assert router.unroutable == 1

    def test_local_prefix_delivered_internally(self, router):
        router.originate("192.168.0.0/16")
        packet = Packet(srcip="10.0.0.1", dstip="192.168.1.5")
        ((port, delivered),) = router.receive(packet, "A1")
        assert port == "lan0"
        assert router.delivered and router.delivered[0][0] == "A1"

    def test_local_destination_from_lan_stays_internal(self, router):
        router.originate("192.168.0.0/16")
        out = router.receive(Packet(srcip="192.168.1.1", dstip="192.168.2.2"), "lan0")
        assert out == []
        assert router.delivered

    def test_transit_traffic_carried_upstream(self, router):
        packet = Packet(srcip="10.0.0.1", dstip="55.0.0.1")
        assert router.receive(packet, "A1") == []
        assert router.carried_upstream == [packet]

    def test_ports_listing(self, router):
        assert router.ports() == {"A1", "lan0"}
