"""Inter-IXP link relay semantics, provenance, and telemetry."""

from __future__ import annotations

import pytest

from repro import IXPConfig, RouteAttributes, SDXController
from repro.federation import FederatedExchange, InterIXPLink
from repro.netutils.ip import IPv4Address, IPv4Prefix

PREFIX = IPv4Prefix("10.9.0.0/16")


def two_ixp_federation() -> FederatedExchange:
    """West: origin O plus transit T; east: eyeball E plus the same T."""
    west = IXPConfig(vnh_pool="172.16.0.0/16")
    west.add_participant("O", 65001, [("O1", "172.0.1.1", "08:00:27:01:00:01")])
    west.add_participant("T", 65100, [("TW1", "172.0.1.11", "08:00:27:01:00:11")])
    east = IXPConfig(vnh_pool="172.17.0.0/16")
    east.add_participant("E", 65002, [("E1", "172.0.2.1", "08:00:27:02:00:01")])
    east.add_participant("T", 65100, [("TE1", "172.0.2.11", "08:00:27:02:00:11")])
    federation = FederatedExchange()
    federation.add_exchange("west", west)
    federation.add_exchange("east", east)
    federation.exchange("west").routing.announce(
        "O", PREFIX, RouteAttributes(as_path=[65001], next_hop="172.0.1.1")
    )
    return federation


class TestMembership:
    def test_duplicate_exchange_rejected(self):
        federation = two_ixp_federation()
        with pytest.raises(ValueError, match="west"):
            federation.add_exchange("west", IXPConfig())

    def test_exchange_name_stamped_on_config(self):
        federation = two_ixp_federation()
        assert federation.exchange("west").config.name == "west"
        assert federation.exchange("east").config.name == "east"

    def test_prebuilt_controller_accepted_but_not_with_kwargs(self):
        config = IXPConfig()
        config.add_participant(
            "T", 65100, [("X1", "172.0.3.11", "08:00:27:03:00:11")]
        )
        controller = SDXController(config)
        federation = two_ixp_federation()
        federation.add_exchange("extra", controller)
        assert federation.exchange("extra") is controller
        with pytest.raises(TypeError):
            two_ixp_federation().add_exchange(
                "extra", SDXController(IXPConfig()), vmac_mode="fec"
            )

    def test_unknown_exchange_raises(self):
        with pytest.raises(KeyError, match="nowhere"):
            two_ixp_federation().exchange("nowhere")

    def test_transit_members_join_on_asn(self):
        federation = two_ixp_federation()
        members = federation.transit_members()
        assert len(members) == 1
        (member,) = members
        assert member.asn == 65100
        assert member.exchanges == ("east", "west")
        assert member.name_at("west") == "T"


class TestTopologyHelpers:
    def test_participant_with_asn(self):
        config = two_ixp_federation().exchange("west").config
        assert config.participant_with_asn(65100).name == "T"
        assert config.participant_with_asn(64999) is None

    def test_duplicate_asn_is_ambiguous(self):
        config = IXPConfig()
        config.add_participant("X", 65100, [("X1", "172.0.0.1", "08:00:27:00:00:01")])
        config.add_participant("Y", 65100, [("Y1", "172.0.0.2", "08:00:27:00:00:02")])
        with pytest.raises(ValueError, match="X"):
            config.participant_with_asn(65100)

    def test_subscribe_participant_filters_changes(self):
        federation = two_ixp_federation()
        server = federation.exchange("west").route_server
        seen = []
        server.subscribe_participant("T", seen.extend)
        federation.exchange("west").routing.announce(
            "O", "10.10.0.0/16", RouteAttributes(as_path=[65001], next_hop="172.0.1.1")
        )
        assert seen  # T's view of the new prefix changed
        assert all(change.participant == "T" for change in seen)

    def test_subscribe_unknown_participant_raises(self):
        server = two_ixp_federation().exchange("west").route_server
        with pytest.raises(KeyError, match="nobody"):
            server.subscribe_participant("nobody", lambda changes: None)


class TestLinkConstruction:
    def test_endpoints_must_differ(self):
        with pytest.raises(ValueError, match="west"):
            two_ixp_federation().link(65100, "west", "west")

    def test_transit_must_be_present_at_both_ends(self):
        with pytest.raises(ValueError, match="east"):
            two_ixp_federation().link(65001, "west", "east")  # O is west-only

    def test_link_name_and_repr(self):
        link = two_ixp_federation().link(65100, "west", "east")
        assert link.name == "west->east:AS65100"
        assert "up" in repr(link)


class TestRelaySemantics:
    def test_relay_prepends_asn_and_rewrites_next_hop(self):
        federation = two_ixp_federation()
        federation.link(65100, "west", "east")
        assert federation.sync() == 1
        relayed = federation.exchange("east").route_server.route_from("T", PREFIX)
        assert relayed is not None
        assert tuple(relayed.attributes.as_path) == (65100, 65001)
        # Next hop is the transit's port on the *east* peering LAN, so
        # east's own VNH/VMAC machinery applies to the relayed route.
        assert relayed.attributes.next_hop == IPv4Address("172.0.2.11")
        assert federation.exchange("east").route_server.best_route(
            "E", PREFIX
        ).learned_from == "T"

    def test_sync_is_idempotent_until_dirty(self):
        federation = two_ixp_federation()
        federation.link(65100, "west", "east")
        federation.sync()
        assert federation.sync() == 0
        federation.exchange("west").routing.announce(
            "O", "10.10.0.0/16", RouteAttributes(as_path=[65001], next_hop="172.0.1.1")
        )
        assert federation.sync() == 1

    def test_as_path_loop_prevention_stops_echo(self):
        federation = two_ixp_federation()
        forward = federation.link(65100, "west", "east")
        reverse = federation.link(65100, "east", "west")
        federation.sync()  # must terminate
        assert forward.is_relayed(PREFIX)
        # The relayed path already contains AS 65100, so the reverse
        # link refuses to bounce it back west.
        assert not reverse.is_relayed(PREFIX)

    def test_native_route_not_clobbered(self):
        federation = two_ixp_federation()
        native = RouteAttributes(as_path=[65100, 64900], next_hop="172.0.2.11")
        federation.exchange("east").routing.announce("T", PREFIX, native)
        federation.link(65100, "west", "east")
        federation.sync()
        kept = federation.exchange("east").route_server.route_from("T", PREFIX)
        assert tuple(kept.attributes.as_path) == (65100, 64900)

    def test_withdrawal_propagates(self):
        federation = two_ixp_federation()
        link = federation.link(65100, "west", "east")
        federation.sync()
        federation.exchange("west").routing.withdraw("O", PREFIX)
        federation.sync()
        assert not link.is_relayed(PREFIX)
        assert federation.exchange("east").route_server.route_from("T", PREFIX) is None

    def test_relay_provenance(self):
        federation = two_ixp_federation()
        link = federation.link(65100, "west", "east")
        federation.sync()
        assert federation.relay_for("east", "T", PREFIX) is link
        assert federation.relay_for("east", "T", "10.99.0.0/16") is None
        assert federation.relay_for("west", "T", PREFIX) is None
        backing = link.backing_route(PREFIX)
        assert tuple(backing.attributes.as_path) == (65001,)


class TestFailureModel:
    def test_fail_withdraws_and_restore_resyncs(self):
        federation = two_ixp_federation()
        link = federation.link(65100, "west", "east")
        federation.sync()
        assert link.fail() == 1
        east = federation.exchange("east").route_server
        assert east.route_from("T", PREFIX) is None
        assert federation.relay_for("east", "T", PREFIX) is None
        assert link.fail() == 0  # already down
        link.restore()
        federation.sync()
        assert link.is_relayed(PREFIX)
        assert east.route_from("T", PREFIX) is not None

    def test_sync_raises_when_flapping(self):
        federation = two_ixp_federation()
        federation.link(65100, "west", "east")
        with pytest.raises(RuntimeError, match="converge"):
            federation.sync(max_rounds=0)


class TestTelemetry:
    def test_relay_and_link_metrics(self):
        federation = two_ixp_federation()
        link = federation.link(65100, "west", "east")
        federation.sync()
        counter = federation.telemetry.get("sdx_federation_relay_updates_total")
        assert counter.value(link=link.name, kind="announce") == 1
        assert federation.telemetry.gauge("sdx_federation_links_up").value() == 1
        assert federation.telemetry.gauge("sdx_federation_exchanges").value() == 2
        relayed = federation.telemetry.get("sdx_federation_relayed_prefixes")
        assert relayed.value(link=link.name) == 1
        link.fail()
        assert counter.value(link=link.name, kind="withdraw") == 1
        assert federation.telemetry.gauge("sdx_federation_links_up").value() == 0
