"""Unit tests for the staged compilation pipeline (``repro.pipeline``)."""

import pytest

from repro.core.controller import SDXController
from repro.pipeline import (
    CompileFinished,
    ParallelBackend,
    PolicyChanged,
    SerialBackend,
    ShardTask,
    ShuffledSerialBackend,
    backend_from_env,
    run_shard,
)
from repro.dataplane.reconcile import is_base_cookie
from repro.pipeline.events import DirtyTracker, EventBus, SubscriberErrorGroup
from repro.core.participant import SDXPolicySet
from repro.policy import fwd, match

from tests.conftest import install_figure1_policies


def _counter(controller: SDXController, name: str, **labels) -> float:
    metric = controller.telemetry.get(name)
    return metric.value(**labels) if metric is not None else 0.0


class TestBackends:
    def test_env_selection_defaults_to_serial(self):
        assert isinstance(backend_from_env({}), SerialBackend)
        assert isinstance(backend_from_env({"REPRO_BACKEND": "serial"}), SerialBackend)

    def test_env_selection_parallel_with_pinned_pool(self):
        backend = backend_from_env(
            {"REPRO_BACKEND": "parallel", "REPRO_BACKEND_PROCS": "3"}
        )
        assert isinstance(backend, ParallelBackend)
        assert backend.processes == 3

    @pytest.mark.parametrize(
        "backend",
        [
            SerialBackend(),
            ShuffledSerialBackend(seed=5),
            ShuffledSerialBackend(seed=42),
            ParallelBackend(processes=2),
        ],
    )
    def test_results_come_back_in_submission_order(self, backend):
        tasks = list(range(9))
        assert backend.run(tasks, lambda n: n * n) == [n * n for n in tasks]

    def test_parallel_single_task_runs_inline(self):
        assert ParallelBackend(processes=4).run([21], lambda n: n * 2) == [42]


class TestEvents:
    def test_bus_dispatches_by_event_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(PolicyChanged, seen.append)
        bus.publish(PolicyChanged("A"))
        bus.publish(CompileFinished(1, 2, 3))  # no subscriber: ignored
        assert seen == [PolicyChanged("A")]

    def test_single_subscriber_failure_reraises_unwrapped(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise ValueError("subscriber exploded")

        bus.subscribe(PolicyChanged, bad)
        bus.subscribe(PolicyChanged, seen.append)
        with pytest.raises(ValueError, match="subscriber exploded"):
            bus.publish(PolicyChanged("A"))
        # fanout completed anyway: the later subscriber still saw it
        assert seen == [PolicyChanged("A")]

    def test_multiple_failures_aggregate_into_error_group(self):
        """Regression pin for the aggregated fanout contract: every
        subscriber runs, and all failures surface together (mirroring
        the listener-side ``ListenerErrorGroup``)."""
        bus = EventBus()
        seen = []

        def first(event):
            raise ValueError("first")

        def second(event):
            raise KeyError("second")

        bus.subscribe(PolicyChanged, first)
        bus.subscribe(PolicyChanged, seen.append)
        bus.subscribe(PolicyChanged, second)
        event = PolicyChanged("A")
        with pytest.raises(SubscriberErrorGroup) as excinfo:
            bus.publish(event)
        group = excinfo.value
        assert seen == [event]  # the middle subscriber was not starved
        assert group.event is event
        assert [type(e) for e in group.errors] == [ValueError, KeyError]
        assert group.__cause__ is group.errors[0]
        assert "2 subscribers failed for PolicyChanged" in str(group)

    def test_dirty_tracker_accumulates_and_clears(self):
        dirty = DirtyTracker()
        assert not dirty.any
        dirty.mark_policy("A")
        dirty.mark_routes()
        assert dirty.any and "A" in dirty.participants and dirty.routes
        dirty.clear()
        assert not dirty.any and not dirty.participants


class TestShardErrors:
    def test_run_shard_captures_exception_in_result(self):
        task = ShardTask(
            label=("policy", "X"),
            participant="X",
            raw=None,  # vmacify blows up on this; must not escape the worker
            port_ids=frozenset(),
            participant_names=frozenset(),
            reachable={},
            fec_table=None,
            stage2_blocks={},
        )
        result = run_shard(task)
        assert result.error is not None
        assert result.label == ("policy", "X")
        assert result.stage1_block is None and result.segment is None


class TestDeferredRecompilation:
    def test_batch_of_edits_costs_one_compile(self, figure1_controller):
        controller = figure1_controller
        before = _counter(controller, "sdx_compilations_total")
        with controller.deferred_recompilation():
            install_figure1_policies(controller, recompile=False)
            controller.policy.set_policies(
                "C",
                SDXPolicySet(outbound=match(dstport=22) >> fwd("A")),
                recompile=True,
            )
        assert _counter(controller, "sdx_compilations_total") == before + 1
        assert controller.last_compilation is not None

    def test_nested_blocks_still_compile_once(self, figure1_controller):
        controller = figure1_controller
        before = _counter(controller, "sdx_compilations_total")
        with controller.deferred_recompilation():
            with controller.deferred_recompilation():
                install_figure1_policies(controller, recompile=False)
                controller.policy.set_policies(
                    "C",
                    SDXPolicySet(outbound=match(dstport=22) >> fwd("A")),
                    recompile=True,
                )
            # inner exit must not compile while the outer block is open
            assert _counter(controller, "sdx_compilations_total") == before
        assert _counter(controller, "sdx_compilations_total") == before + 1

    def test_failed_block_skips_compile_until_background_pass(
        self, figure1_controller
    ):
        controller = figure1_controller
        before = _counter(controller, "sdx_compilations_total")
        with pytest.raises(RuntimeError, match="boom"):
            with controller.deferred_recompilation():
                install_figure1_policies(controller, recompile=False)
                controller.policy.set_policies(
                    "C",
                    SDXPolicySet(outbound=match(dstport=22) >> fwd("A")),
                    recompile=True,
                )
                raise RuntimeError("boom")
        assert _counter(controller, "sdx_compilations_total") == before
        controller.run_background_recompilation()
        assert _counter(controller, "sdx_compilations_total") == before + 1


class TestNoopRecompilation:
    def test_clean_background_pass_skips_the_compiler(self, figure1_compiled):
        controller = figure1_compiled
        compiles = _counter(controller, "sdx_compilations_total")
        noops = _counter(controller, "sdx_pipeline_noop_total")
        table_before = controller.switch.table.content_hash()
        result = controller.run_background_recompilation()
        assert result.result is controller.last_compilation
        # A clean pass reconciles to a no-op patch: nothing added or
        # removed, every installed base rule retained in place.
        assert result.churn == 0
        assert result.retained == len(
            [rule for rule in controller.switch.table if is_base_cookie(rule.cookie)]
        )
        assert _counter(controller, "sdx_compilations_total") == compiles
        assert _counter(controller, "sdx_pipeline_noop_total") == noops + 1
        assert controller.switch.table.content_hash() == table_before

    def test_dirty_policy_forces_a_real_compile(self, figure1_compiled):
        controller = figure1_compiled
        controller.policy.set_policies("C", SDXPolicySet(outbound=match(dstport=22) >> fwd("A")), recompile=False
        )
        compiles = _counter(controller, "sdx_compilations_total")
        noops = _counter(controller, "sdx_pipeline_noop_total")
        controller.run_background_recompilation()
        assert _counter(controller, "sdx_compilations_total") == compiles + 1
        assert _counter(controller, "sdx_pipeline_noop_total") == noops


class TestShardCaching:
    def _shard_counts(self, controller):
        return {
            name: _counter(controller, "sdx_shard_compiles_total", participant=name)
            for name in ("A", "C", "default", "chains")
        }

    def test_policy_edit_recompiles_only_that_shard(self, figure1_compiled):
        controller = figure1_compiled
        controller.policy.set_policies("C", SDXPolicySet(outbound=match(dstport=22) >> fwd("A")))
        baseline = self._shard_counts(controller)

        # Same targets, different match: the FEC partition is unchanged,
        # so every other shard must come straight from the cache.
        controller.policy.set_policies("C", SDXPolicySet(outbound=match(dstport=23) >> fwd("A")))
        after = self._shard_counts(controller)
        assert after["C"] == baseline["C"] + 1
        assert after["A"] == baseline["A"]
        assert after["default"] == baseline["default"]
        assert after["chains"] == baseline["chains"]

    def test_new_policy_rebuilds_default_but_not_peers(self, figure1_compiled):
        controller = figure1_compiled
        baseline = self._shard_counts(controller)
        # C's new policy adds a prefix group, which the shared default
        # block covers — but A's shard only consults B/C delivery blocks,
        # which are untouched, so A stays cached.
        controller.policy.set_policies("C", SDXPolicySet(outbound=match(dstport=22) >> fwd("A")))
        after = self._shard_counts(controller)
        assert after["C"] == baseline["C"] + 1
        assert after["default"] == baseline["default"] + 1
        assert after["A"] == baseline["A"]

    def test_recompile_without_changes_is_all_cache_hits(self, figure1_compiled):
        controller = figure1_compiled
        baseline = self._shard_counts(controller)
        hits = _counter(controller, "sdx_shard_cache_total", result="hit")
        controller.compile()
        assert self._shard_counts(controller) == baseline
        assert _counter(controller, "sdx_shard_cache_total", result="hit") > hits


class TestIngressBatching:
    def test_batched_updates_dedupe_fast_path_work(self, figure1_compiled):
        controller = figure1_compiled
        log_before = len(controller.ops.fast_path_log)
        from repro.bgp.attributes import RouteAttributes

        with controller.routing.batched_updates():
            # Two best-path flips for the same prefix inside one burst:
            # only the final state should reach the fast path.
            controller.routing.announce(
                "B",
                "10.1.0.0/16",
                RouteAttributes(as_path=[65002], next_hop="172.0.0.11"),
            )
            controller.routing.withdraw("B", "10.1.0.0/16")
            assert len(controller.ops.fast_path_log) == log_before  # held in the batch
        assert len(controller.ops.fast_path_log) == log_before + 1
