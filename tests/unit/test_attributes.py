"""Unit tests for BGP path attributes."""

import pytest

from repro.bgp.attributes import ASPath, Community, Origin, RouteAttributes, community
from repro.netutils.ip import IPv4Address


class TestASPath:
    def test_construction_and_length(self):
        path = ASPath([65001, 65002, 43515])
        assert len(path) == 3
        assert list(path) == [65001, 65002, 43515]

    def test_origin_and_first_as(self):
        path = ASPath([65001, 43515])
        assert path.origin_as == 43515
        assert path.first_as == 65001
        assert ASPath().origin_as is None and ASPath().first_as is None

    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            ASPath([0])
        with pytest.raises(ValueError):
            ASPath([1 << 32])

    def test_prepend(self):
        path = ASPath([65002]).prepend(65001, count=2)
        assert list(path) == [65001, 65001, 65002]

    def test_loop_detection(self):
        assert ASPath([1, 2, 3]).contains_loop(2)
        assert not ASPath([1, 2, 3]).contains_loop(4)

    def test_regex_matching_paper_example(self):
        # ".*43515$" matches routes originated by YouTube's AS
        path = ASPath([65001, 65002, 43515])
        assert path.matches(r".*43515$")
        assert not ASPath([43515, 65001]).matches(r".*43515$")

    def test_string_form(self):
        assert str(ASPath([65001, 65002])) == "65001 65002"

    def test_equality_hash(self):
        assert ASPath([1, 2]) == ASPath([1, 2])
        assert len({ASPath([1, 2]), ASPath([1, 2]), ASPath([2, 1])}) == 2


class TestCommunity:
    def test_parts(self):
        c = Community(65000, 120)
        assert c.asn == 65000 and c.value == 120
        assert str(c) == "65000:120"

    def test_parse(self):
        assert Community.parse("65000:120") == Community(65000, 120)

    def test_coercion_helper(self):
        assert community("65000:120") == Community(65000, 120)
        assert community((65000, 120)) == Community(65000, 120)
        assert community(Community(65000, 120)) == Community(65000, 120)

    def test_range_checks(self):
        with pytest.raises(ValueError):
            Community(1 << 16, 0)
        with pytest.raises(ValueError):
            Community(0, -1)


class TestRouteAttributes:
    def make(self, **overrides):
        values = dict(as_path=[65001, 65100], next_hop="172.0.0.1")
        values.update(overrides)
        return RouteAttributes(**values)

    def test_defaults(self):
        attrs = self.make()
        assert attrs.origin is Origin.IGP
        assert attrs.med == 0
        assert attrs.local_pref == 100
        assert attrs.communities == frozenset()
        assert attrs.next_hop == IPv4Address("172.0.0.1")

    def test_as_path_coercion(self):
        assert isinstance(self.make().as_path, ASPath)

    def test_communities_coercion(self):
        attrs = self.make(communities=["65000:1", (65000, 2)])
        assert Community(65000, 1) in attrs.communities
        assert Community(65000, 2) in attrs.communities

    def test_replace(self):
        attrs = self.make()
        rewritten = attrs.replace(next_hop="172.16.0.1")
        assert rewritten.next_hop == IPv4Address("172.16.0.1")
        assert rewritten.as_path == attrs.as_path
        assert attrs.next_hop == IPv4Address("172.0.0.1")  # original untouched

    def test_equality_hash(self):
        assert self.make() == self.make()
        assert self.make() != self.make(med=10)
        assert len({self.make(), self.make()}) == 1

    def test_origin_ordering(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE
