"""Unit tests for the header-field registry."""

import pytest

from repro.netutils.fields import (
    FIELDS,
    match_value_covers,
    match_values_intersect,
    normalize_match_value,
    normalize_packet_value,
    value_satisfies_match,
)
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress


class TestNormalization:
    def test_packet_ip_field(self):
        assert normalize_packet_value("srcip", "10.0.0.1") == IPv4Address("10.0.0.1")

    def test_packet_mac_field(self):
        value = normalize_packet_value("dstmac", "02:00:00:00:00:01")
        assert isinstance(value, MACAddress)

    def test_packet_int_field(self):
        assert normalize_packet_value("dstport", "80") == 80

    def test_packet_any_field_passthrough(self):
        assert normalize_packet_value("port", "A1") == "A1"

    def test_packet_none_passthrough(self):
        assert normalize_packet_value("dstport", None) is None

    def test_match_ip_bare_address_becomes_host_prefix(self):
        value = normalize_match_value("dstip", "10.0.0.1")
        assert value == IPv4Prefix("10.0.0.1/32")

    def test_match_ip_cidr(self):
        assert normalize_match_value("dstip", "10.0.0.0/8") == IPv4Prefix("10.0.0.0/8")

    def test_match_ip_address_object(self):
        value = normalize_match_value("srcip", IPv4Address("1.2.3.4"))
        assert value == IPv4Prefix("1.2.3.4/32")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            normalize_match_value("nosuch", 1)
        with pytest.raises(ValueError):
            normalize_packet_value("nosuch", 1)

    def test_registry_is_complete(self):
        for expected in ("switch", "port", "srcmac", "dstmac", "srcip", "dstip",
                         "proto", "srcport", "dstport", "ethtype", "vlan", "tos"):
            assert expected in FIELDS


class TestComparison:
    def test_ip_intersection_nested(self):
        left = normalize_match_value("dstip", "10.0.0.0/8")
        right = normalize_match_value("dstip", "10.1.0.0/16")
        assert match_values_intersect("dstip", left, right) == right

    def test_ip_intersection_disjoint(self):
        left = normalize_match_value("dstip", "10.0.0.0/8")
        right = normalize_match_value("dstip", "11.0.0.0/8")
        assert match_values_intersect("dstip", left, right) is None

    def test_exact_intersection(self):
        assert match_values_intersect("dstport", 80, 80) == 80
        assert match_values_intersect("dstport", 80, 443) is None

    def test_covers_ip(self):
        general = normalize_match_value("dstip", "10.0.0.0/8")
        specific = normalize_match_value("dstip", "10.1.0.0/16")
        assert match_value_covers("dstip", general, specific)
        assert not match_value_covers("dstip", specific, general)

    def test_covers_exact(self):
        assert match_value_covers("dstport", 80, 80)
        assert not match_value_covers("dstport", 80, 443)

    def test_satisfies_ip(self):
        constraint = normalize_match_value("dstip", "10.0.0.0/8")
        assert value_satisfies_match("dstip", IPv4Address("10.9.9.9"), constraint)
        assert not value_satisfies_match("dstip", IPv4Address("11.0.0.1"), constraint)

    def test_satisfies_missing_value(self):
        assert not value_satisfies_match("dstport", None, 80)
