"""Unit tests for the simplified BGP session FSM."""

import pytest

from repro.bgp.session import BGPSession, ListenerErrorGroup, SessionState


def test_initial_state_is_idle():
    assert BGPSession("B").state is SessionState.IDLE


def test_happy_path_transitions():
    session = BGPSession("B")
    session.start()
    assert session.state is SessionState.CONNECT
    session.establish()
    assert session.is_established


def test_establish_from_idle_shortcut():
    session = BGPSession("B")
    session.establish()
    assert session.is_established


def test_shutdown_from_any_state():
    session = BGPSession("B")
    session.establish()
    session.shutdown()
    assert session.state is SessionState.IDLE
    session.shutdown()  # idempotent
    assert session.state is SessionState.IDLE


def test_fail_is_distinct_from_shutdown():
    session = BGPSession("B")
    session.establish()
    session.fail()
    assert session.state is SessionState.FAILED
    assert session.state is not SessionState.IDLE
    assert session.is_down and not session.is_established


def test_fail_counts_flaps():
    session = BGPSession("B")
    session.establish()
    session.fail()
    session.establish()
    session.fail()
    session.fail()  # already failed: not another flap
    assert session.flaps == 2


def test_reconnect_after_failure():
    session = BGPSession("B")
    session.establish()
    session.fail()
    session.start()
    assert session.state is SessionState.CONNECT
    session.establish()
    assert session.is_established


def test_establish_shortcut_from_failed():
    session = BGPSession("B")
    session.establish()
    session.fail()
    session.establish()
    assert session.is_established


def test_shutdown_from_failed_is_administrative():
    session = BGPSession("B")
    session.establish()
    session.fail()
    session.shutdown()
    assert session.state is SessionState.IDLE


def test_invalid_transition_rejected():
    session = BGPSession("B")
    session.establish()
    with pytest.raises(RuntimeError):
        session.start()


def test_listeners_fire_on_transition():
    session = BGPSession("B")
    seen = []
    session.on_state_change(lambda s, state: seen.append(state))
    session.establish()
    session.shutdown()
    assert seen == [SessionState.CONNECT, SessionState.ESTABLISHED, SessionState.IDLE]


def test_no_event_for_noop_transition():
    session = BGPSession("B")
    seen = []
    session.on_state_change(lambda s, state: seen.append(state))
    session.shutdown()  # already idle
    assert seen == []


def test_raising_listener_does_not_skip_the_rest():
    session = BGPSession("B")
    seen = []

    def bad(s, state):
        raise ValueError("listener bug")

    session.on_state_change(bad)
    session.on_state_change(lambda s, state: seen.append(state))
    with pytest.raises(ValueError, match="listener bug"):
        session.start()
    # The second listener still observed the transition...
    assert seen == [SessionState.CONNECT]
    # ...and the state change itself stuck.
    assert session.state is SessionState.CONNECT


def test_multiple_raising_listeners_aggregate():
    session = BGPSession("B")
    seen = []

    def first(s, state):
        raise ValueError("first bug")

    def second(s, state):
        raise KeyError("second bug")

    session.on_state_change(first)
    session.on_state_change(second)
    session.on_state_change(lambda s, state: seen.append(state))
    with pytest.raises(ListenerErrorGroup) as excinfo:
        session.start()
    group = excinfo.value
    # Every failure is preserved, in registration order, with context.
    assert group.peer == "B" and group.target is SessionState.CONNECT
    assert [type(e) for e in group.errors] == [ValueError, KeyError]
    assert group.__cause__ is group.errors[0]
    assert "2 listeners failed" in str(group)
    assert "ValueError: first bug" in str(group)
    # The healthy listener still ran and the transition stuck.
    assert seen == [SessionState.CONNECT]
    assert session.state is SessionState.CONNECT
