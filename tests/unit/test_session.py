"""Unit tests for the simplified BGP session FSM."""

import pytest

from repro.bgp.session import BGPSession, SessionState


def test_initial_state_is_idle():
    assert BGPSession("B").state is SessionState.IDLE


def test_happy_path_transitions():
    session = BGPSession("B")
    session.start()
    assert session.state is SessionState.CONNECT
    session.establish()
    assert session.is_established


def test_establish_from_idle_shortcut():
    session = BGPSession("B")
    session.establish()
    assert session.is_established


def test_shutdown_from_any_state():
    session = BGPSession("B")
    session.establish()
    session.shutdown()
    assert session.state is SessionState.IDLE
    session.shutdown()  # idempotent
    assert session.state is SessionState.IDLE


def test_fail_behaves_like_shutdown():
    session = BGPSession("B")
    session.establish()
    session.fail()
    assert session.state is SessionState.IDLE


def test_invalid_transition_rejected():
    session = BGPSession("B")
    session.establish()
    with pytest.raises(RuntimeError):
        session.start()


def test_listeners_fire_on_transition():
    session = BGPSession("B")
    seen = []
    session.on_state_change(lambda s, state: seen.append(state))
    session.establish()
    session.shutdown()
    assert seen == [SessionState.CONNECT, SessionState.ESTABLISHED, SessionState.IDLE]


def test_no_event_for_noop_transition():
    session = BGPSession("B")
    seen = []
    session.on_state_change(lambda s, state: seen.append(state))
    session.shutdown()  # already idle
    assert seen == []
