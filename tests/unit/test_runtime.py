"""Unit tests for the event-loop control-plane runtime (``repro.runtime``).

Covers the building blocks (bounded queues, the deterministic
cooperative scheduler, the timer wheel) and the runtime's caller-facing
contract: auto-drain submissions return inline-identical results,
``pipelined()`` returns live handles, errors surface exactly once,
backpressure raises :class:`QueueOverflow` at submission time, and the
telemetry series (queue depth, task seconds, update→install latency)
are populated.
"""

from __future__ import annotations

import pytest

from repro.bgp.attributes import RouteAttributes
from repro.core.controller import SDXController
from repro.dataplane.reconcile import CommitReport
from repro.runtime import (
    BoundedQueue,
    CooperativeScheduler,
    QueueOverflow,
    RuntimeConfig,
    Submission,
    TimerWheel,
    runtime_mode_from_env,
)
from repro.sim.clock import Simulator

from tests.conftest import (
    install_figure1_policies,
    load_figure1_routes,
    make_figure1_config,
)


def eventloop_figure1(config=None, **kwargs):
    controller = SDXController(
        make_figure1_config(),
        runtime_mode="eventloop",
        runtime_config=config,
        **kwargs,
    )
    load_figure1_routes(controller)
    return controller


class TestBoundedQueue:
    def test_fifo_and_depth_accounting(self):
        depths = []
        queue = BoundedQueue("q", 3, on_depth=depths.append)
        queue.push(1)
        queue.push(2)
        assert len(queue) == 2 and queue.peek() == 1
        assert queue.pop() == 1 and queue.pop() == 2
        assert queue.empty and queue.peak_depth == 2
        assert queue.total_enqueued == 2
        assert depths == [1, 2, 1, 0]

    def test_overflow_raises_and_counts(self):
        queue = BoundedQueue("ingress", 1)
        queue.push("a")
        with pytest.raises(QueueOverflow) as excinfo:
            queue.push("b")
        assert excinfo.value.queue == "ingress" and excinfo.value.capacity == 1
        assert queue.total_rejected == 1 and len(queue) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", 0)


class TestCooperativeScheduler:
    def test_fixed_rotation_order(self):
        order = []

        def task(name):
            while True:
                order.append(name)
                yield ("worked",)

        scheduler = CooperativeScheduler()
        scheduler.add("a", task("a"))
        scheduler.add("b", task("b"))
        scheduler.add("c", task("c"))
        for _ in range(3):
            assert scheduler.step().progressed
        assert order == ["a", "b", "c"] * 3

    def test_idle_round_reports_no_progress_and_collects_futures(self):
        sentinel = object()

        def idler():
            while True:
                yield ("idle",)

        def waiter():
            while True:
                yield ("wait", sentinel)

        scheduler = CooperativeScheduler()
        scheduler.add("idle", idler())
        scheduler.add("wait", waiter())
        info = scheduler.step()
        assert not info.progressed
        assert info.futures == (sentinel,)

    def test_finished_task_is_retired(self):
        def once():
            yield ("worked",)

        scheduler = CooperativeScheduler()
        scheduler.add("once", once())
        assert scheduler.step().progressed
        assert not scheduler.step().progressed  # retired, nothing left


class TestTimerWheel:
    def test_duck_types_the_simulator_surface(self):
        clock = Simulator()
        wheel = TimerWheel(clock)
        fired = []
        wheel.schedule_in(5.0, lambda: fired.append(wheel.now))
        assert wheel.next_event_time() == 5.0
        wheel.run_until(10.0)
        assert fired == [5.0]
        assert wheel.now == 10.0 and clock.now == 10.0


class TestAutoDrain:
    def test_update_returns_inline_result(self):
        controller = eventloop_figure1()
        changes = controller.routing.announce(
            "B", "99.0.0.0/24", RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        )
        assert changes and str(changes[0].prefix) == "99.0.0.0/24"

    def test_compile_returns_commit_report(self):
        controller = eventloop_figure1()
        install_figure1_policies(controller, recompile=False)
        report = controller.compile()
        assert isinstance(report, CommitReport)
        assert report.added > 0

    def test_errors_propagate_like_inline(self):
        controller = eventloop_figure1()
        with pytest.raises(Exception):
            controller.policy.set_policies("nobody", None)
        # the loop is quiescent again and usable
        assert controller.runtime.health_info()["inflight"] == 0
        install_figure1_policies(controller)

    def test_recompiling_mutator_rides_the_compile_job(self):
        controller = eventloop_figure1()
        install_figure1_policies(controller)
        before = controller.pipeline.committer.churn_stats().commits
        controller.ops.release_quarantine("A", recompile=False)  # no-op, no compile
        assert controller.pipeline.committer.churn_stats().commits == before


class TestPipelinedBursts:
    def test_handles_fill_in_at_drain(self):
        controller = eventloop_figure1()
        install_figure1_policies(controller)
        runtime = controller.runtime
        with runtime.pipelined():
            first = controller.routing.withdraw("B", "10.1.0.0/16")
            second = controller.compile()
            assert isinstance(first, Submission) and not first.done
        assert first.done and second.done
        assert first.error is None
        assert isinstance(second.result, CommitReport)

    def test_submission_order_is_apply_order(self):
        controller = eventloop_figure1()
        seen = []
        original = controller.pipeline.ingress.submit

        def spy(update):
            seen.append(update.peer if hasattr(update, "peer") else update)
            return original(update)

        controller.pipeline.ingress.submit = spy
        attrs = RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        with controller.runtime.pipelined():
            controller.routing.announce("B", "99.0.0.0/24", attrs)
            controller.routing.withdraw("B", "99.0.0.0/24")
        assert len(seen) == 2

    def test_burst_error_lands_on_its_handle_only(self):
        controller = eventloop_figure1()
        attrs = RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        with controller.runtime.pipelined():
            bad = controller.policy.set_policies("nobody", None)
            good = controller.routing.announce("B", "99.0.0.0/24", attrs)
        assert bad.error is not None
        assert good.error is None and good.result

    def test_dirty_exit_leaves_queue_and_discard_clears_it(self):
        controller = eventloop_figure1()
        attrs = RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        runtime = controller.runtime
        with pytest.raises(RuntimeError, match="boom"):
            with runtime.pipelined():
                pending = controller.routing.announce("B", "99.0.0.0/24", attrs)
                raise RuntimeError("boom")
        assert not pending.done  # no drain on a dirty exit
        assert runtime.queue_depths()["ingress"] == 1
        assert runtime.discard_pending() == 1
        assert pending.done and pending.error is not None
        assert runtime.health_info()["inflight"] == 0

    def test_backpressure_overflows_at_submission_time(self):
        controller = eventloop_figure1(config=RuntimeConfig(ingress_capacity=2))
        attrs = RouteAttributes(as_path=[65002], next_hop="172.0.0.11")
        runtime = controller.runtime
        with pytest.raises(QueueOverflow):
            with runtime.pipelined():
                for i in range(3):
                    controller.routing.announce(f"B", f"99.0.{i}.0/24", attrs)
        runtime.discard_pending()
        assert runtime.health_info()["ingress_rejected"] == 1

    def test_coalesce_dedupes_fast_path_passes(self):
        plain = eventloop_figure1()
        install_figure1_policies(plain)
        attrs = RouteAttributes(as_path=[65002, 65100], next_hop="172.0.0.11")
        with plain.runtime.pipelined():
            plain.routing.withdraw("B", "10.1.0.0/16")
            plain.routing.announce("B", "10.1.0.0/16", attrs)
        assert len(plain.ops.fast_path_log) == 2  # one pass per update

        coalesced = eventloop_figure1(config=RuntimeConfig(coalesce=True))
        install_figure1_policies(coalesced)
        with coalesced.runtime.pipelined():
            coalesced.routing.withdraw("B", "10.1.0.0/16")
            coalesced.routing.announce("B", "10.1.0.0/16", attrs)
        assert len(coalesced.ops.fast_path_log) == 1  # one pass per burst


class TestReentrancy:
    def test_commit_hook_facet_call_runs_inline(self):
        """A facet call from inside the loop (here: a commit hook) must
        execute directly instead of deadlocking on its own queue."""
        controller = eventloop_figure1()
        install_figure1_policies(controller, recompile=False)
        observed = []

        def hook(result):
            observed.append(
                (controller.runtime.active, len(controller.policy.policies()))
            )

        controller.ops.add_commit_hook(hook)
        controller.compile()
        assert observed == [(True, 2)]


class TestTelemetryAndHealth:
    def test_health_reports_queues_and_mode(self):
        controller = eventloop_figure1()
        info = controller.ops.health().runtime
        assert info["mode"] == "eventloop"
        assert set(info["queues"]) == {"ingress", "compile", "commit", "verify"}
        assert info["inflight"] == 0
        assert info["ingress_peak"] >= 1  # the route load went through it

    def test_inline_mode_health_field(self):
        controller = SDXController(make_figure1_config(), runtime_mode="inline")
        assert controller.ops.health().runtime == {"mode": "inline"}

    def test_runtime_metrics_exist(self):
        controller = eventloop_figure1()
        install_figure1_policies(controller)
        metrics = controller.ops.metrics()
        assert "sdx_runtime_queue_depth" in metrics
        assert "sdx_runtime_task_seconds" in metrics
        assert "sdx_update_install_seconds" in metrics
        latency = controller.telemetry.get("sdx_update_install_seconds")
        assert latency.count(kind="update") >= 9  # the figure-1 route load

    def test_inline_mode_observes_install_latency_too(self):
        controller = SDXController(make_figure1_config(), runtime_mode="inline")
        load_figure1_routes(controller)
        latency = controller.telemetry.get("sdx_update_install_seconds")
        assert latency.count(kind="update") >= 9


class TestModeSelection:
    def test_env_default_and_parse(self):
        assert runtime_mode_from_env({}) == "inline"
        assert runtime_mode_from_env({"REPRO_RUNTIME": "eventloop"}) == "eventloop"
        assert runtime_mode_from_env({"REPRO_RUNTIME": " INLINE "}) == "inline"
        with pytest.raises(ValueError):
            runtime_mode_from_env({"REPRO_RUNTIME": "threads"})

    def test_controller_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="runtime_mode"):
            SDXController(make_figure1_config(), runtime_mode="fibers")

    def test_inline_mode_has_no_runtime(self):
        controller = SDXController(make_figure1_config(), runtime_mode="inline")
        assert controller.runtime is None
