"""Unit tests for the SDX compiler pipeline."""

import pytest

from repro.core.compiler import CompilationOptions, SDXCompiler
from repro.core.participant import SDXPolicySet
from repro.netutils.ip import IPv4Prefix
from repro.policy import Packet, fwd, match

from tests.conftest import P1, P2, P3, P4, P5


@pytest.fixture
def compiler(figure1_controller):
    return SDXCompiler(figure1_controller.config, figure1_controller.route_server)


A_OUTBOUND = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))
B_INBOUND = (match(srcip="0.0.0.0/1") >> fwd("B1")) + (
    match(srcip="128.0.0.0/1") >> fwd("B2")
)
POLICIES = {
    "A": SDXPolicySet(outbound=A_OUTBOUND),
    "B": SDXPolicySet(inbound=B_INBOUND),
}


class TestCompile:
    def test_empty_policies_pure_bgp(self, compiler):
        result = compiler.compile({})
        assert result.stats.fec_groups == 0
        # still emits default physical-MAC forwarding + delivery rules
        assert result.stats.rules > 0

    def test_figure1_prefix_groups(self, compiler):
        result = compiler.compile(POLICIES)
        groups = {frozenset(str(p) for p in g.prefixes) for g in result.fec_table.affected_groups}
        # paper's worked example: p1 and p2 always travel together
        assert frozenset({"10.1.0.0/16", "10.2.0.0/16"}) in groups

    def test_advertised_next_hops_rewritten_for_affected(self, compiler):
        result = compiler.compile(POLICIES)
        vnh = result.advertised_next_hops[("A", IPv4Prefix(P1))]
        assert vnh in compiler.config.vnh_pool  # a VNH, not 172.0.0.x

    def test_advertised_next_hops_original_for_unaffected(self, figure1_controller):
        # without policies nothing is affected: next hops untouched
        compiler = SDXCompiler(figure1_controller.config, figure1_controller.route_server)
        result = compiler.compile({})
        next_hop = result.advertised_next_hops[("A", IPv4Prefix(P1))]
        assert next_hop not in compiler.config.vnh_pool

    def test_no_advertisements_option(self, figure1_controller):
        compiler = SDXCompiler(
            figure1_controller.config,
            figure1_controller.route_server,
            CompilationOptions(build_advertisements=False),
        )
        result = compiler.compile(POLICIES)
        assert result.advertised_next_hops == {}

    def test_stats_populated(self, compiler):
        result = compiler.compile(POLICIES)
        stats = result.stats
        assert stats.rules == len(result.classifier)
        assert stats.total_seconds > 0
        assert stats.policy_groups >= 2
        assert stats.fec_groups == len(result.fec_table.affected_groups)

    def test_memoization_reuses_ast_compilations(self, compiler):
        compiler.compile(POLICIES)
        cached = dict(compiler._ast_cache)
        compiler.compile(POLICIES)
        assert set(compiler._ast_cache) == set(cached)

    def test_originated_prefixes_get_vnh(self, compiler):
        anycast = IPv4Prefix("74.125.1.0/24")
        # the route must exist in the route server for ranking
        from repro.bgp.attributes import RouteAttributes

        compiler.route_server.add_peer("D") if "D" not in compiler.route_server.peers() else None
        result = compiler.compile(POLICIES, originated={"A": frozenset({anycast})})
        # announced by nobody -> no ranked routes -> group exists but unused;
        # originate through a real announcement instead:
        compiler.route_server.announce(
            "A", anycast, RouteAttributes(as_path=[65001], next_hop="172.16.0.0")
        )
        result = compiler.compile(POLICIES, originated={"A": frozenset({anycast})})
        group = result.fec_table.group_for(anycast)
        assert group is not None and group.is_affected


class TestOptionEquivalence:
    """Disabled optimizations must not change data-plane behaviour."""

    PACKETS = [
        Packet(port="A1", dstport=80, srcip="50.0.0.1", dstip="10.1.2.3"),
        Packet(port="A1", dstport=443, srcip="150.0.0.1", dstip="10.4.2.3"),
        Packet(port="A1", dstport=22, srcip="50.0.0.1", dstip="10.5.1.1"),
        Packet(port="C1", dstport=80, srcip="99.0.0.1", dstip="10.3.9.9"),
    ]

    def _tagged_packets(self, result, controller):
        """Attach the dstmac a sending router would use per the advertisements."""
        tagged = []
        for packet in self.PACKETS:
            sender = controller.config.owner_of_port(packet["port"]).name
            dstip = packet["dstip"]
            prefix = IPv4Prefix(int(dstip) & 0xFFFF0000, 16)
            next_hop = result.advertised_next_hops.get((sender, prefix))
            if next_hop is None:
                continue
            vmac = controller.allocator.resolve(next_hop)
            if vmac is None:
                owner = controller.config.owner_of_address(next_hop)
                vmac = owner.port_for_address(next_hop).hardware if owner else None
            if vmac is None:
                continue
            tagged.append(packet.modify(dstmac=vmac))
        return tagged

    def test_all_option_combinations_agree(self, figure1_controller):
        controller = figure1_controller
        results = {}
        for prune in (True, False):
            for concat in (True, False):
                for memo in (True, False):
                    compiler = SDXCompiler(
                        controller.config,
                        controller.route_server,
                        CompilationOptions(
                            prune_targets=prune,
                            disjoint_concat=concat,
                            memoize=memo,
                        ),
                    )
                    results[(prune, concat, memo)] = compiler.compile(
                        POLICIES, allocator=controller.allocator
                    )
        reference_key = (True, True, True)
        reference = results[reference_key]
        # Each compilation allocates its own VNH/VMAC identifiers, so tag
        # probe packets per-result and compare *egress behaviour* (output
        # port and final destination MAC), not raw packet equality.
        def behaviour(result):
            observed = []
            for packet in self._tagged_packets(result, controller):
                outputs = result.classifier.eval(packet)
                observed.append(
                    {
                        (out.get("port"), out.get("dstmac"), out.get("dstip"))
                        for out in outputs
                    }
                )
            return observed

        expected = behaviour(reference)
        assert any(expected), "expected at least one forwarded probe packet"
        for key, result in results.items():
            assert behaviour(result) == expected, key
