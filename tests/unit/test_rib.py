"""Unit tests for the RIB structures."""

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Route
from repro.bgp.rib import AdjRIBIn, LocRIB, RIBTable
from repro.netutils.ip import IPv4Prefix


def make_route(prefix, peer="B", as_path=(65002, 65100), next_hop="172.0.0.11"):
    return Route(
        prefix,
        RouteAttributes(as_path=list(as_path), next_hop=next_hop),
        learned_from=peer,
    )


class TestAdjRIBIn:
    def test_insert_and_lookup(self):
        rib = AdjRIBIn("B")
        route = make_route("10.0.0.0/8")
        assert rib.insert(route) is None
        assert rib.lookup(IPv4Prefix("10.0.0.0/8")) is route
        assert len(rib) == 1
        assert IPv4Prefix("10.0.0.0/8") in rib

    def test_insert_replaces(self):
        rib = AdjRIBIn("B")
        old = make_route("10.0.0.0/8")
        new = make_route("10.0.0.0/8", as_path=(65002, 65101))
        rib.insert(old)
        assert rib.insert(new) is old
        assert rib.lookup(IPv4Prefix("10.0.0.0/8")) is new

    def test_remove(self):
        rib = AdjRIBIn("B")
        route = make_route("10.0.0.0/8")
        rib.insert(route)
        assert rib.remove(IPv4Prefix("10.0.0.0/8")) is route
        assert rib.remove(IPv4Prefix("10.0.0.0/8")) is None
        assert len(rib) == 0

    def test_clear_returns_routes(self):
        rib = AdjRIBIn("B")
        rib.insert(make_route("10.0.0.0/8"))
        rib.insert(make_route("11.0.0.0/8"))
        cleared = rib.clear()
        assert len(cleared) == 2 and len(rib) == 0

    def test_prefixes_and_iter(self):
        rib = AdjRIBIn("B")
        rib.insert(make_route("10.0.0.0/8"))
        assert rib.prefixes() == {IPv4Prefix("10.0.0.0/8")}
        assert [r.prefix for r in rib] == [IPv4Prefix("10.0.0.0/8")]


class TestLocRIB:
    def test_set_prefix_reports_change(self):
        loc = LocRIB("A")
        route = make_route("10.0.0.0/8")
        assert loc.set_prefix(route.prefix, route, (route,))
        assert not loc.set_prefix(route.prefix, route, (route,))  # unchanged

    def test_best_and_candidates(self):
        loc = LocRIB("A")
        best = make_route("10.0.0.0/8", peer="B")
        alt = make_route("10.0.0.0/8", peer="C", next_hop="172.0.0.21")
        loc.set_prefix(best.prefix, best, (best, alt))
        assert loc.best(best.prefix) is best
        assert loc.candidates(best.prefix) == (best, alt)
        assert loc.feasible_next_hops(best.prefix) == {"B", "C"}

    def test_removal_via_none(self):
        loc = LocRIB("A")
        route = make_route("10.0.0.0/8")
        loc.set_prefix(route.prefix, route, (route,))
        assert loc.set_prefix(route.prefix, None, ())
        assert loc.best(route.prefix) is None
        assert route.prefix not in loc

    def test_prefixes_via(self):
        loc = LocRIB("A")
        b_route = make_route("10.0.0.0/8", peer="B")
        c_route = make_route("10.0.0.0/8", peer="C")
        loc.set_prefix(b_route.prefix, b_route, (b_route, c_route))
        other = make_route("11.0.0.0/8", peer="C")
        loc.set_prefix(other.prefix, other, (other,))
        assert loc.prefixes_via("B") == {IPv4Prefix("10.0.0.0/8")}
        assert loc.prefixes_via("C") == {IPv4Prefix("10.0.0.0/8"), IPv4Prefix("11.0.0.0/8")}


class TestRIBTable:
    def build(self):
        table = RIBTable()
        table.add(make_route("10.0.0.0/8", as_path=(65001, 43515)))
        table.add(make_route("11.0.0.0/8", as_path=(65001, 65002)))
        table.add(make_route("12.0.0.0/8", as_path=(65002, 43515)))
        return table

    def test_as_path_regex_filter(self):
        table = self.build()
        matched = table.filter("as_path", r".*43515$")
        assert set(matched) == {IPv4Prefix("10.0.0.0/8"), IPv4Prefix("12.0.0.0/8")}

    def test_originated_by(self):
        table = self.build()
        assert set(table.originated_by(43515)) == {
            IPv4Prefix("10.0.0.0/8"),
            IPv4Prefix("12.0.0.0/8"),
        }

    def test_filter_by_predicate(self):
        table = self.build()
        matched = table.filter_by(lambda route: route.attributes.as_path.first_as == 65002)
        assert matched == [IPv4Prefix("12.0.0.0/8")]

    def test_next_hop_filter(self):
        table = self.build()
        assert len(table.filter("next_hop", "^172\\.")) == 3

    def test_origin_filter(self):
        table = self.build()
        assert len(table.filter("origin", "IGP")) == 3

    def test_unknown_attribute_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            self.build().filter("nosuch", ".*")

    def test_dedupes_prefixes(self):
        table = RIBTable()
        table.add(make_route("10.0.0.0/8", peer="B", as_path=(65001, 43515)))
        table.add(make_route("10.0.0.0/8", peer="C", as_path=(65002, 43515)))
        assert table.filter("as_path", r"43515$") == [IPv4Prefix("10.0.0.0/8")]
