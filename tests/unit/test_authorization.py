"""Unit tests for the RPKI-style ownership registry."""

import pytest

from repro.core.authorization import (
    AuthorizationError,
    OwnershipRegistry,
    validate_rewrites,
)
from repro.core.controller import SDXController
from repro.policy import fwd, match, modify

from tests.conftest import make_figure1_config


class TestOwnershipRegistry:
    def test_exact_authorization(self):
        registry = OwnershipRegistry()
        registry.register(64496, "74.125.0.0/16")
        assert registry.authorizes(64496, "74.125.0.0/16")
        assert not registry.authorizes(64497, "74.125.0.0/16")

    def test_max_length_allows_more_specifics(self):
        registry = OwnershipRegistry()
        registry.register(64496, "74.125.0.0/16", max_length=24)
        assert registry.authorizes(64496, "74.125.1.0/24")
        assert not registry.authorizes(64496, "74.125.1.0/25")

    def test_default_max_length_is_exact(self):
        registry = OwnershipRegistry()
        registry.register(64496, "74.125.0.0/16")
        assert not registry.authorizes(64496, "74.125.1.0/24")

    def test_unrelated_prefix_not_authorized(self):
        registry = OwnershipRegistry()
        registry.register(64496, "74.125.0.0/16", max_length=32)
        assert not registry.authorizes(64496, "8.8.8.0/24")

    def test_multiple_owners(self):
        registry = OwnershipRegistry()
        registry.register(64496, "74.125.0.0/16", max_length=24)
        registry.register(64497, "74.125.0.0/16", max_length=24)
        assert registry.owners_of("74.125.1.0/24") == [64496, 64497]

    def test_invalid_max_length_rejected(self):
        registry = OwnershipRegistry()
        with pytest.raises(ValueError):
            registry.register(64496, "74.125.0.0/16", max_length=8)

    def test_require_raises(self):
        registry = OwnershipRegistry()
        with pytest.raises(AuthorizationError):
            registry.require(64496, "74.125.0.0/16")


class TestPolicyRewriteValidation:
    def test_owned_rewrite_passes(self):
        registry = OwnershipRegistry()
        registry.register(64496, "54.198.0.0/16", max_length=32)
        policy = match(dstip="74.125.1.0/24") >> modify(dstip="54.198.0.10") >> fwd("B1")
        validate_rewrites(policy, 64496, registry)  # no exception

    def test_unowned_rewrite_rejected(self):
        registry = OwnershipRegistry()
        policy = match(dstip="74.125.1.0/24") >> modify(dstip="8.8.8.8") >> fwd("B1")
        with pytest.raises(AuthorizationError):
            validate_rewrites(policy, 64496, registry)

    def test_policy_without_rewrites_passes(self):
        registry = OwnershipRegistry()
        validate_rewrites(match(dstport=80) >> fwd("B"), 64496, registry)


class TestControllerIntegration:
    def test_origination_requires_roa(self):
        registry = OwnershipRegistry()
        controller = SDXController(make_figure1_config(), ownership=registry)
        handle = controller.register_participant("C")
        with pytest.raises(AuthorizationError):
            handle.announce("74.125.1.0/24")
        registry.register(65003, "74.125.1.0/24")
        handle.announce("74.125.1.0/24")  # now authorized
        assert controller.route_server.best_route("A", "74.125.1.0/24") is not None

    def test_no_registry_means_no_checks(self):
        controller = SDXController(make_figure1_config())
        controller.register_participant("C").announce("74.125.1.0/24")
