"""BGP message types exchanged between participants and the route server.

The SDX only needs UPDATE semantics (announce/withdraw); session
housekeeping (OPEN/KEEPALIVE/NOTIFICATION) is modelled by
:mod:`repro.bgp.session` at the state-machine level instead of the wire
level, which is all the paper's evaluation exercises.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.netutils.ip import IPv4Prefix

__all__ = ["Announcement", "BGPUpdate", "Route", "Withdrawal"]


class Announcement:
    """One prefix announced with its path attributes.

    ``export_to`` optionally restricts which route-server peers may see
    the route (the standard IXP route-server export-control feature the
    paper leans on when AS B hides prefix ``p4`` from AS A); ``None``
    exports to everyone.
    """

    __slots__ = ("prefix", "attributes", "export_to")

    def __init__(
        self,
        prefix: "IPv4Prefix | str",
        attributes: RouteAttributes,
        export_to: Optional[Iterable[str]] = None,
    ) -> None:
        self.prefix = IPv4Prefix(prefix)
        self.attributes = attributes
        self.export_to: Optional[FrozenSet[str]] = (
            None if export_to is None else frozenset(export_to)
        )

    def exported_to(self, peer: str) -> bool:
        """True when this announcement may be re-advertised to ``peer``."""
        return self.export_to is None or peer in self.export_to

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Announcement):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.attributes == other.attributes
            and self.export_to == other.export_to
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.attributes, self.export_to))

    def __repr__(self) -> str:
        scope = "" if self.export_to is None else f", export_to={sorted(self.export_to)}"
        return f"Announcement({self.prefix}, {self.attributes!r}{scope})"


class Withdrawal:
    """A previously announced prefix being withdrawn."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: "IPv4Prefix | str") -> None:
        self.prefix = IPv4Prefix(prefix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Withdrawal):
            return NotImplemented
        return self.prefix == other.prefix

    def __hash__(self) -> int:
        return hash(("Withdrawal", self.prefix))

    def __repr__(self) -> str:
        return f"Withdrawal({self.prefix})"


class BGPUpdate:
    """An UPDATE message from one peer: announcements plus withdrawals."""

    __slots__ = ("peer", "announced", "withdrawn", "time")

    def __init__(
        self,
        peer: str,
        announced: Sequence[Announcement] = (),
        withdrawn: Sequence[Withdrawal] = (),
        time: float = 0.0,
    ) -> None:
        self.peer = peer
        self.announced: Tuple[Announcement, ...] = tuple(announced)
        self.withdrawn: Tuple[Withdrawal, ...] = tuple(withdrawn)
        self.time = float(time)

    @property
    def prefixes(self) -> FrozenSet[IPv4Prefix]:
        """Every prefix this update touches."""
        touched = {a.prefix for a in self.announced}
        touched.update(w.prefix for w in self.withdrawn)
        return frozenset(touched)

    def __repr__(self) -> str:
        return (
            f"BGPUpdate(peer={self.peer!r}, announced={len(self.announced)}, "
            f"withdrawn={len(self.withdrawn)}, time={self.time})"
        )


class Route:
    """A route as stored in a RIB: a prefix, its attributes, and provenance."""

    __slots__ = ("prefix", "attributes", "learned_from", "export_to")

    def __init__(
        self,
        prefix: "IPv4Prefix | str",
        attributes: RouteAttributes,
        learned_from: str,
        export_to: Optional[FrozenSet[str]] = None,
    ) -> None:
        self.prefix = IPv4Prefix(prefix)
        self.attributes = attributes
        self.learned_from = learned_from
        self.export_to = export_to

    def exported_to(self, peer: str) -> bool:
        """True when the route server may re-advertise this route to ``peer``."""
        return self.export_to is None or peer in self.export_to

    @property
    def next_hop(self):
        return self.attributes.next_hop

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.attributes == other.attributes
            and self.learned_from == other.learned_from
            and self.export_to == other.export_to
        )

    def __hash__(self) -> int:
        return hash((self.prefix, self.attributes, self.learned_from, self.export_to))

    def __repr__(self) -> str:
        return (
            f"Route({self.prefix} via {self.attributes.next_hop} "
            f"from {self.learned_from!r}, as_path=[{self.attributes.as_path}])"
        )
