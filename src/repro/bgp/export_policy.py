"""Community-driven export control, the way production route servers do it.

The paper's examples rely on selective export ("AS B does not export a
BGP route for destination prefix p4 to AS A").  Our
:class:`~repro.bgp.messages.Announcement` carries an explicit
``export_to`` scope; at real IXPs the same intent is expressed with
well-known BGP communities attached to the announcement:

* ``(0, peer-asn)``        — do **not** export to that peer;
* ``(rs-asn, peer-asn)``   — export **only** to peers tagged this way;
* ``(0, 0)``               — export to nobody;
* ``(65535, 65281)``       — NO_EXPORT, treated like ``(0, 0)`` here.

:func:`export_scope_from_communities` translates a community set into
an ``export_to`` scope given the peer directory, and the route server
applies it automatically when configured with its own AS number.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.bgp.attributes import Community

__all__ = ["NO_EXPORT", "export_scope_from_communities"]

#: The RFC 1997 NO_EXPORT well-known community.
NO_EXPORT = Community(65535, 65281)


def export_scope_from_communities(
    communities: Iterable[Community],
    peers: Iterable[str],
    peer_asns: Dict[str, int],
    route_server_asn: int,
) -> Optional[FrozenSet[str]]:
    """Translate announcement communities into an export scope.

    Returns ``None`` for "export to everyone" (no control communities
    present), otherwise the frozen set of peer names the announcement
    may reach.  Precedence follows common route-server practice:
    block-all first, then the allow-list, then per-peer blocks.
    """
    communities = set(communities)
    peers = list(peers)
    asn_to_peer: Dict[int, str] = {}
    for peer in peers:
        asn = peer_asns.get(peer)
        if asn is not None:
            asn_to_peer[asn] = peer

    if NO_EXPORT in communities or Community(0, 0) in communities:
        return frozenset()

    allowed: Optional[set] = None
    for community in communities:
        if community.asn == route_server_asn:
            peer = asn_to_peer.get(community.value)
            if allowed is None:
                allowed = set()
            if peer is not None:
                allowed.add(peer)
    scope = set(peers) if allowed is None else allowed

    blocked_any = False
    for community in communities:
        if community.asn == 0 and community.value != 0:
            peer = asn_to_peer.get(community.value)
            if peer is not None:
                scope.discard(peer)
                blocked_any = True

    if allowed is None and not blocked_any:
        return None
    return frozenset(scope)
