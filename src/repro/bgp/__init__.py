"""BGP substrate: attributes, messages, RIBs, decision process, route server.

This package is the reproduction's stand-in for the ExaBGP-based route
server of the paper's implementation (Section 5.1): participants open
sessions, exchange announcements/withdrawals, and the server computes a
best path per (participant, prefix), notifying subscribers — the SDX
controller — whenever a best path changes.
"""

from repro.bgp.attributes import ASPath, Community, Origin, RouteAttributes, community
from repro.bgp.decision import best_path, rank_routes
from repro.bgp.export_policy import NO_EXPORT, export_scope_from_communities
from repro.bgp.messages import Announcement, BGPUpdate, Route, Withdrawal
from repro.bgp.rib import AdjRIBIn, LocRIB, RIBTable
from repro.bgp.route_server import BestPathChange, ParticipantView, RouteServer
from repro.bgp.session import BGPSession, SessionState
from repro.bgp.updates import Burst, TraceStats, detect_bursts, trace_stats
from repro.bgp.wire import (
    MessageType,
    WireError,
    decode_message,
    encode_keepalive,
    encode_notification,
    encode_open,
    encode_update,
)

__all__ = [
    "ASPath",
    "AdjRIBIn",
    "Announcement",
    "BGPSession",
    "BGPUpdate",
    "BestPathChange",
    "Burst",
    "Community",
    "LocRIB",
    "MessageType",
    "NO_EXPORT",
    "Origin",
    "ParticipantView",
    "RIBTable",
    "Route",
    "RouteAttributes",
    "RouteServer",
    "SessionState",
    "TraceStats",
    "WireError",
    "Withdrawal",
    "best_path",
    "community",
    "decode_message",
    "detect_bursts",
    "encode_keepalive",
    "encode_notification",
    "encode_open",
    "encode_update",
    "export_scope_from_communities",
    "rank_routes",
    "trace_stats",
]
