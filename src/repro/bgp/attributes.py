"""BGP path attributes.

The SDX route server stores and ranks routes by the standard attribute
set; participants' SDX policies may additionally *query* attributes
(e.g. the AS-path regex matching of Section 3.2's
``RIB.filter('as_path', '.*43515$')``).
"""

from __future__ import annotations

import enum
import re
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from repro.netutils.ip import IPv4Address

__all__ = ["ASPath", "Community", "Origin", "RouteAttributes", "community"]


class Origin(enum.IntEnum):
    """BGP ORIGIN attribute; lower is preferred in the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class ASPath:
    """An AS_PATH: the sequence of AS numbers a route traversed.

    Stored most-recent-first, as received (index 0 is the neighbor that
    sent the route; the last element is the origin AS).  Supports the
    regex queries SDX policies use, applied to the space-separated
    string form — ``.*43515$`` matches every path originated by AS 43515.
    """

    __slots__ = ("_asns",)

    def __init__(self, asns: Iterable[int] = ()) -> None:
        self._asns: Tuple[int, ...] = tuple(int(asn) for asn in asns)
        for asn in self._asns:
            if not 0 < asn < (1 << 32):
                raise ValueError(f"AS number out of range: {asn}")

    @property
    def asns(self) -> Tuple[int, ...]:
        return self._asns

    @property
    def origin_as(self) -> Optional[int]:
        """The AS that originated the route (last path element)."""
        return self._asns[-1] if self._asns else None

    @property
    def first_as(self) -> Optional[int]:
        """The neighbor AS the route was learned from (first element)."""
        return self._asns[0] if self._asns else None

    def __len__(self) -> int:
        return len(self._asns)

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """Return a new path with ``asn`` prepended ``count`` times."""
        return ASPath((asn,) * count + self._asns)

    def contains_loop(self, asn: int) -> bool:
        """True when ``asn`` already appears in the path (loop detection)."""
        return asn in self._asns

    def matches(self, pattern: "str | re.Pattern[str]") -> bool:
        """Regex search over the space-separated string form."""
        if isinstance(pattern, str):
            pattern = re.compile(pattern)
        return pattern.search(str(self)) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._asns == other._asns

    def __hash__(self) -> int:
        return hash(("ASPath", self._asns))

    def __iter__(self):
        return iter(self._asns)

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self._asns)

    def __repr__(self) -> str:
        return f"ASPath({list(self._asns)!r})"


class Community(Tuple[int, int]):
    """A BGP community ``asn:value``, the usual route-server control knob."""

    def __new__(cls, asn: int, value: int) -> "Community":
        if not 0 <= asn < (1 << 16) or not 0 <= value < (1 << 16):
            raise ValueError(f"community parts out of range: {asn}:{value}")
        return super().__new__(cls, (asn, value))

    @property
    def asn(self) -> int:
        return self[0]

    @property
    def value(self) -> int:
        return self[1]

    @classmethod
    def parse(cls, text: str) -> "Community":
        asn_text, _, value_text = text.partition(":")
        return cls(int(asn_text), int(value_text))

    def __str__(self) -> str:
        return f"{self[0]}:{self[1]}"

    def __repr__(self) -> str:
        return f"Community({self[0]}:{self[1]})"


def community(value: Union[str, Tuple[int, int], Community]) -> Community:
    """Coerce ``"65000:120"`` or ``(65000, 120)`` into a :class:`Community`."""
    if isinstance(value, Community):
        return value
    if isinstance(value, str):
        return Community.parse(value)
    asn, val = value
    return Community(asn, val)


class RouteAttributes:
    """The per-route attribute bundle carried in BGP announcements."""

    __slots__ = ("as_path", "next_hop", "origin", "med", "local_pref", "communities")

    def __init__(
        self,
        as_path: Union[ASPath, Iterable[int]],
        next_hop: "IPv4Address | str | int",
        origin: Origin = Origin.IGP,
        med: int = 0,
        local_pref: int = 100,
        communities: Iterable[Union[str, Tuple[int, int], Community]] = (),
    ) -> None:
        self.as_path = as_path if isinstance(as_path, ASPath) else ASPath(as_path)
        self.next_hop = IPv4Address(next_hop)
        self.origin = Origin(origin)
        self.med = int(med)
        self.local_pref = int(local_pref)
        self.communities: FrozenSet[Community] = frozenset(
            community(c) for c in communities
        )

    def replace(self, **updates) -> "RouteAttributes":
        """Return a copy with the given attributes replaced.

        The route server uses this to rewrite ``next_hop`` to a virtual
        next-hop without touching the rest of the route.
        """
        values = {
            "as_path": self.as_path,
            "next_hop": self.next_hop,
            "origin": self.origin,
            "med": self.med,
            "local_pref": self.local_pref,
            "communities": self.communities,
        }
        values.update(updates)
        return RouteAttributes(**values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteAttributes):
            return NotImplemented
        return (
            self.as_path == other.as_path
            and self.next_hop == other.next_hop
            and self.origin == other.origin
            and self.med == other.med
            and self.local_pref == other.local_pref
            and self.communities == other.communities
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.as_path,
                self.next_hop,
                self.origin,
                self.med,
                self.local_pref,
                self.communities,
            )
        )

    def __repr__(self) -> str:
        return (
            f"RouteAttributes(as_path=[{self.as_path}], next_hop={self.next_hop}, "
            f"origin={self.origin.name}, med={self.med}, local_pref={self.local_pref})"
        )
