"""Simplified BGP peering sessions.

The wire-level FSM (RFC 4271 §8) is reduced to the states the SDX
evaluation exercises: a session is configured (IDLE), comes up
(ESTABLISHED), and goes down — at which point routes learned over it
are at stake, which is exactly the event the paper's Figure 5a induces
("AS B withdraws its route to AWS").

Going down happens two distinct ways, and the distinction is what the
resilience layer (:mod:`repro.resilience`) is built on:

* :meth:`BGPSession.shutdown` — administrative teardown.  Routes are
  flushed immediately and nothing tries to bring the session back.
* :meth:`BGPSession.fail` — the peer died (hold-timer expiry, crash,
  too many malformed UPDATEs).  The session enters ``FAILED``, from
  which reconnection may be attempted; with graceful restart enabled
  (RFC 4724) the route server retains the peer's routes as *stale*
  instead of triggering a withdraw storm.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

__all__ = ["BGPSession", "ListenerErrorGroup", "SessionState"]


class ListenerErrorGroup(RuntimeError):
    """Two or more session listeners raised during one transition.

    Every collected exception is kept in :attr:`errors` and named in the
    message; the first is additionally chained as ``__cause__`` so
    tracebacks still show where the cascade started.  A *single* failing
    listener propagates unwrapped — only multiple concurrent faults are
    grouped, so chaos runs cannot mask secondary failures behind the
    first one.
    """

    def __init__(self, peer: str, target: "SessionState", errors: List[BaseException]) -> None:
        self.peer = peer
        self.target = target
        self.errors: Tuple[BaseException, ...] = tuple(errors)
        summary = "; ".join(f"{type(exc).__name__}: {exc}" for exc in errors)
        super().__init__(
            f"{len(errors)} listeners failed during {peer!r} -> {target.value}: {summary}"
        )


class SessionState(enum.Enum):
    """The reduced session FSM: configured, connecting, up, or crashed."""

    IDLE = "idle"
    CONNECT = "connect"
    ESTABLISHED = "established"
    FAILED = "failed"


class BGPSession:
    """The route server's side of one peering session."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self.state = SessionState.IDLE
        self.flaps = 0
        self._listeners: List[Callable[["BGPSession", SessionState], None]] = []

    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    @property
    def is_down(self) -> bool:
        """True when no routes may be received (IDLE or FAILED)."""
        return self.state in (SessionState.IDLE, SessionState.FAILED)

    def on_state_change(
        self, listener: Callable[["BGPSession", SessionState], None]
    ) -> None:
        """Register a callback fired after every state transition."""
        self._listeners.append(listener)

    def start(self) -> None:
        """IDLE/FAILED -> CONNECT (the TCP handshake begins)."""
        self._transition(
            SessionState.CONNECT, allowed=(SessionState.IDLE, SessionState.FAILED)
        )

    def establish(self) -> None:
        """CONNECT (or IDLE/FAILED, for convenience) -> ESTABLISHED."""
        if self.state in (SessionState.IDLE, SessionState.FAILED):
            self.start()
        self._transition(SessionState.ESTABLISHED, allowed=(SessionState.CONNECT,))

    def shutdown(self) -> None:
        """Administrative teardown: any state -> IDLE, routes flushed."""
        self._transition(SessionState.IDLE, allowed=None)

    def fail(self) -> None:
        """Session failure: any state -> FAILED; reconnection may follow.

        Unlike :meth:`shutdown`, a failure is an *event* the resilience
        layer reacts to — stale-route retention, backoff reconnection —
        rather than an operator's decision.
        """
        if self.state is not SessionState.FAILED:
            self.flaps += 1
        self._transition(SessionState.FAILED, allowed=None)

    def _transition(
        self, target: SessionState, allowed: Optional[Tuple[SessionState, ...]]
    ) -> None:
        if allowed is not None and self.state not in allowed:
            raise RuntimeError(
                f"invalid session transition {self.state.value} -> {target.value} "
                f"for peer {self.peer!r}"
            )
        if self.state is target:
            return
        self.state = target
        # One raising listener must not starve the rest — the route
        # server's own flush listener shares this list with user code.
        errors: List[BaseException] = []
        for listener in list(self._listeners):
            try:
                listener(self, target)
            except Exception as exc:  # noqa: BLE001 - isolate listeners
                errors.append(exc)
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise ListenerErrorGroup(self.peer, target, errors) from errors[0]

    def __repr__(self) -> str:
        return f"BGPSession(peer={self.peer!r}, state={self.state.value})"
