"""Simplified BGP peering sessions.

The wire-level FSM (RFC 4271 §8) is reduced to the three states the
SDX evaluation exercises: a session is configured (IDLE), comes up
(ESTABLISHED), and may fail or be shut down — at which point every
route learned over it must be withdrawn, which is exactly the event the
paper's Figure 5a induces ("AS B withdraws its route to AWS").
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

__all__ = ["BGPSession", "SessionState"]


class SessionState(enum.Enum):
    """The reduced session FSM: configured, connecting, or up."""

    IDLE = "idle"
    CONNECT = "connect"
    ESTABLISHED = "established"


class BGPSession:
    """The route server's side of one peering session."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self.state = SessionState.IDLE
        self._listeners: List[Callable[["BGPSession", SessionState], None]] = []

    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    def on_state_change(
        self, listener: Callable[["BGPSession", SessionState], None]
    ) -> None:
        """Register a callback fired after every state transition."""
        self._listeners.append(listener)

    def start(self) -> None:
        """IDLE -> CONNECT (the TCP handshake begins)."""
        self._transition(SessionState.CONNECT, allowed=(SessionState.IDLE,))

    def establish(self) -> None:
        """CONNECT (or IDLE, for convenience) -> ESTABLISHED."""
        if self.state is SessionState.IDLE:
            self.start()
        self._transition(SessionState.ESTABLISHED, allowed=(SessionState.CONNECT,))

    def shutdown(self) -> None:
        """Any state -> IDLE; routes over this session become invalid."""
        self._transition(SessionState.IDLE, allowed=None)

    def fail(self) -> None:
        """Session failure: same route-invalidation effect as shutdown."""
        self.shutdown()

    def _transition(
        self, target: SessionState, allowed: Optional[tuple]
    ) -> None:
        if allowed is not None and self.state not in allowed:
            raise RuntimeError(
                f"invalid session transition {self.state.value} -> {target.value} "
                f"for peer {self.peer!r}"
            )
        if self.state is target:
            return
        self.state = target
        for listener in list(self._listeners):
            listener(self, target)

    def __repr__(self) -> str:
        return f"BGPSession(peer={self.peer!r}, state={self.state.value})"
