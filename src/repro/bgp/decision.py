"""The BGP decision process.

The route server runs this per participant to pick one best route per
prefix (Section 3.2).  The ranking is the standard one:

1. highest LOCAL_PREF;
2. shortest AS_PATH;
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED, compared only between routes from the same neighbor AS
   (unless ``always_compare_med``);
5. lowest next-hop IP (deterministic router-id-style tie-break);
6. lexicographically smallest peer name (final tie-break, keeps the
   process a total order so recompilation is reproducible).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bgp.messages import Route

__all__ = ["best_path", "rank_routes"]


def _comparison_key(route: Route) -> Tuple:
    attrs = route.attributes
    return (
        -attrs.local_pref,
        len(attrs.as_path),
        int(attrs.origin),
        int(attrs.next_hop),
        route.learned_from,
        # Final tiebreaks making the order total even for inputs a real
        # Adj-RIB-In cannot produce (two routes from one peer): the
        # ranking must be a pure function of the route set.
        attrs.med,
        attrs.as_path.asns,
    )


def _med_beats(candidate: Route, incumbent: Route, always_compare_med: bool) -> Optional[bool]:
    """MED comparison; ``None`` when MED does not apply to this pair."""
    cand_as = candidate.attributes.as_path.first_as
    incu_as = incumbent.attributes.as_path.first_as
    if not always_compare_med and (cand_as is None or cand_as != incu_as):
        return None
    if candidate.attributes.med == incumbent.attributes.med:
        return None
    return candidate.attributes.med < incumbent.attributes.med


def rank_routes(
    routes: Iterable[Route], always_compare_med: bool = False
) -> List[Route]:
    """All candidate routes ordered best-first.

    The primary sort settles LOCAL_PREF, AS_PATH length and ORIGIN.  MED
    is then folded in by group-by-neighbor-AS *elimination* (the
    "deterministic MED" evaluation order): within each tier of routes
    that tie through ORIGIN, a route stays ineligible while any other
    route from the same neighbor AS with a strictly lower MED is still
    unranked — regardless of where the primary sort placed the pair.
    Among eligible routes the remaining tie-breaks (next-hop IP, peer
    name) decide.  With ``always_compare_med`` all routes in a tier form
    one MED group.
    """
    ordered = sorted(routes, key=_comparison_key)
    result: List[Route] = []
    start = 0
    while start < len(ordered):
        # One tier: maximal run tying on (local_pref, as_path len, origin).
        end = start
        tier_key = _comparison_key(ordered[start])[:3]
        while end < len(ordered) and _comparison_key(ordered[end])[:3] == tier_key:
            end += 1
        tier = ordered[start:end]
        # Repeatedly rank the first tier route not MED-dominated by any
        # other unranked route of its neighbor-AS group.  MED dominance
        # is a strict partial order, so an eligible route always exists.
        while tier:
            pick = next(
                route
                for route in tier
                if not any(
                    _med_beats(other, route, always_compare_med)
                    for other in tier
                    if other is not route
                )
            )
            result.append(pick)
            tier.remove(pick)
        start = end
    return result


def best_path(
    routes: Sequence[Route], always_compare_med: bool = False
) -> Optional[Route]:
    """The single best route among ``routes``, or ``None`` when empty."""
    ranked = rank_routes(routes, always_compare_med=always_compare_med)
    return ranked[0] if ranked else None
