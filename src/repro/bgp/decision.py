"""The BGP decision process.

The route server runs this per participant to pick one best route per
prefix (Section 3.2).  The ranking is the standard one:

1. highest LOCAL_PREF;
2. shortest AS_PATH;
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED, compared only between routes from the same neighbor AS
   (unless ``always_compare_med``);
5. lowest next-hop IP (deterministic router-id-style tie-break);
6. lexicographically smallest peer name (final tie-break, keeps the
   process a total order so recompilation is reproducible).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bgp.messages import Route

__all__ = ["best_path", "rank_routes"]


def _comparison_key(route: Route) -> Tuple:
    attrs = route.attributes
    return (
        -attrs.local_pref,
        len(attrs.as_path),
        int(attrs.origin),
        int(attrs.next_hop),
        route.learned_from,
        # Final tiebreaks making the order total even for inputs a real
        # Adj-RIB-In cannot produce (two routes from one peer): the
        # ranking must be a pure function of the route set.
        attrs.med,
        attrs.as_path.asns,
    )


def _med_beats(candidate: Route, incumbent: Route, always_compare_med: bool) -> Optional[bool]:
    """MED comparison; ``None`` when MED does not apply to this pair."""
    cand_as = candidate.attributes.as_path.first_as
    incu_as = incumbent.attributes.as_path.first_as
    if not always_compare_med and (cand_as is None or cand_as != incu_as):
        return None
    if candidate.attributes.med == incumbent.attributes.med:
        return None
    return candidate.attributes.med < incumbent.attributes.med


def rank_routes(
    routes: Iterable[Route], always_compare_med: bool = False
) -> List[Route]:
    """All candidate routes ordered best-first.

    MED is folded in as a refinement pass: after the primary sort, any
    adjacent pair that ties through origin and shares a neighbor AS is
    reordered by MED.  (With ``always_compare_med`` the MED applies to
    every such tie.)
    """
    ordered = sorted(routes, key=_comparison_key)
    # Refine adjacent ties by MED (stable bubble pass; candidate lists are short).
    changed = True
    while changed:
        changed = False
        for i in range(len(ordered) - 1):
            left, right = ordered[i], ordered[i + 1]
            if _comparison_key(left)[:3] != _comparison_key(right)[:3]:
                continue
            beats = _med_beats(right, left, always_compare_med)
            if beats:
                ordered[i], ordered[i + 1] = right, left
                changed = True
    return ordered


def best_path(
    routes: Sequence[Route], always_compare_med: bool = False
) -> Optional[Route]:
    """The single best route among ``routes``, or ``None`` when empty."""
    ranked = rank_routes(routes, always_compare_med=always_compare_med)
    return ranked[0] if ranked else None
