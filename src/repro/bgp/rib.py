"""Routing information bases.

Three RIB flavors mirror a route-server deployment:

* :class:`AdjRIBIn` — routes received from one peer, pre-policy;
* :class:`LocRIB` — the per-participant view after best-path selection
  (one best route per prefix, plus the full candidate set, which SDX
  needs because participants may forward along *any* feasible route,
  not just the best one — Section 3.2);
* :class:`RIBTable` — a queryable façade supporting the attribute
  filters SDX policies use (``rib.filter("as_path", ".*43515$")``).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Route
from repro.netutils.ip import IPv4Address, IPv4Prefix

__all__ = ["AdjRIBIn", "LocRIB", "RIBTable"]


class AdjRIBIn:
    """Routes learned from a single peer, keyed by prefix."""

    def __init__(self, peer: str) -> None:
        self.peer = peer
        self._routes: Dict[IPv4Prefix, Route] = {}

    def insert(self, route: Route) -> Optional[Route]:
        """Store a route; returns the route it replaced, if any."""
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return previous

    def remove(self, prefix: IPv4Prefix) -> Optional[Route]:
        """Drop the route for ``prefix``; returns it if present."""
        return self._routes.pop(prefix, None)

    def lookup(self, prefix: IPv4Prefix) -> Optional[Route]:
        return self._routes.get(prefix)

    def clear(self) -> List[Route]:
        """Remove everything (session teardown); returns the old routes."""
        routes = list(self._routes.values())
        self._routes.clear()
        return routes

    def prefixes(self) -> FrozenSet[IPv4Prefix]:
        return frozenset(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._routes

    def __repr__(self) -> str:
        return f"AdjRIBIn(peer={self.peer!r}, routes={len(self._routes)})"


class LocRIB:
    """One participant's post-decision view: best route per prefix.

    Also remembers every *candidate* route exported to the participant,
    because the SDX lets a participant deflect traffic to any neighbor
    that advertised the prefix to it, not only the BGP-best one.
    """

    def __init__(self, participant: str) -> None:
        self.participant = participant
        self._best: Dict[IPv4Prefix, Route] = {}
        self._candidates: Dict[IPv4Prefix, Tuple[Route, ...]] = {}

    def set_prefix(
        self, prefix: IPv4Prefix, best: Optional[Route], candidates: Tuple[Route, ...]
    ) -> bool:
        """Install the decision outcome for one prefix.

        Returns True when the *best route* changed (the event that
        triggers SDX recompilation and outbound re-advertisement).
        """
        changed = self._best.get(prefix) != best
        if best is None:
            self._best.pop(prefix, None)
            self._candidates.pop(prefix, None)
        else:
            self._best[prefix] = best
            self._candidates[prefix] = candidates
        return changed

    def best(self, prefix: IPv4Prefix) -> Optional[Route]:
        """The BGP-best route for ``prefix``, if any."""
        return self._best.get(prefix)

    def candidates(self, prefix: IPv4Prefix) -> Tuple[Route, ...]:
        """Every route exported to this participant for ``prefix``."""
        return self._candidates.get(prefix, ())

    def feasible_next_hops(self, prefix: IPv4Prefix) -> FrozenSet[str]:
        """Peers this participant may legitimately send ``prefix`` traffic to."""
        return frozenset(route.learned_from for route in self.candidates(prefix))

    def prefixes(self) -> FrozenSet[IPv4Prefix]:
        return frozenset(self._best)

    def prefixes_via(self, peer: str) -> FrozenSet[IPv4Prefix]:
        """Prefixes for which ``peer`` exported a route to this participant."""
        return frozenset(
            prefix
            for prefix, candidates in self._candidates.items()
            if any(route.learned_from == peer for route in candidates)
        )

    def items(self) -> Iterator[Tuple[IPv4Prefix, Route]]:
        return iter(self._best.items())

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._best

    def __repr__(self) -> str:
        return f"LocRIB(participant={self.participant!r}, prefixes={len(self._best)})"


class RIBTable:
    """Queryable route collection backing policy-level RIB filters.

    SDX policies can group traffic by BGP attributes instead of raw
    prefixes (Section 3.2)::

        youtube = rib.filter("as_path", r".*43515$")
        policy = match(srcip=set(youtube)) >> fwd("E1")
    """

    def __init__(self, routes: Optional[Iterator[Route]] = None) -> None:
        self._routes: List[Route] = list(routes) if routes else []

    def add(self, route: Route) -> None:
        self._routes.append(route)

    def filter(self, attribute: str, pattern: "str | re.Pattern[str]") -> List[IPv4Prefix]:
        """Prefixes whose route attribute matches a regex.

        ``attribute`` is one of ``as_path``, ``communities``,
        ``next_hop``, or ``origin``; matching is a regex search over the
        attribute's canonical string form.
        """
        if isinstance(pattern, str):
            pattern = re.compile(pattern)
        selector = self._attribute_text(attribute)
        seen: Dict[IPv4Prefix, None] = {}
        for route in self._routes:
            if pattern.search(selector(route.attributes)) is not None:
                seen.setdefault(route.prefix)
        return list(seen)

    def filter_by(self, predicate: Callable[[Route], bool]) -> List[IPv4Prefix]:
        """Prefixes whose route satisfies an arbitrary predicate."""
        seen: Dict[IPv4Prefix, None] = {}
        for route in self._routes:
            if predicate(route):
                seen.setdefault(route.prefix)
        return list(seen)

    def originated_by(self, asn: int) -> List[IPv4Prefix]:
        """Prefixes originated by AS ``asn`` (last AS-path element)."""
        return self.filter_by(lambda route: route.attributes.as_path.origin_as == asn)

    @staticmethod
    def _attribute_text(attribute: str) -> Callable[[RouteAttributes], str]:
        if attribute == "as_path":
            return lambda attrs: str(attrs.as_path)
        if attribute == "communities":
            return lambda attrs: " ".join(sorted(str(c) for c in attrs.communities))
        if attribute == "next_hop":
            return lambda attrs: str(attrs.next_hop)
        if attribute == "origin":
            return lambda attrs: attrs.origin.name
        raise ValueError(f"unsupported RIB filter attribute: {attribute!r}")

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes)

    def __repr__(self) -> str:
        return f"RIBTable(routes={len(self._routes)})"
