"""BGP update-stream analysis (Section 4.3.2 / Table 1).

The paper's incremental-compilation design rests on three measured
properties of IXP update streams: bursts are small, inter-burst gaps
are large, and only 10-14% of prefixes see any update in a week.  This
module computes those statistics from any update stream — the synthetic
traces of :mod:`repro.workloads.update_gen` are validated against the
paper's numbers with exactly these functions.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence, Set, Tuple

from repro.bgp.messages import BGPUpdate
from repro.netutils.ip import IPv4Prefix

__all__ = ["Burst", "TraceStats", "detect_bursts", "trace_stats"]


class Burst(NamedTuple):
    """A run of updates separated by gaps smaller than the burst threshold."""

    start: float
    end: float
    updates: int
    prefixes: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceStats(NamedTuple):
    """Aggregate statistics over an update trace (one Table 1 row)."""

    peers: int
    prefixes: int
    updates: int
    prefixes_seeing_updates: int
    bursts: int
    burst_sizes: Tuple[int, ...]
    inter_burst_gaps: Tuple[float, ...]

    @property
    def fraction_prefixes_updated(self) -> float:
        """Share of known prefixes touched by at least one update."""
        if not self.prefixes:
            return 0.0
        return self.prefixes_seeing_updates / self.prefixes


def detect_bursts(
    updates: Sequence[BGPUpdate], gap_threshold: float = 2.0
) -> List[Burst]:
    """Group a time-ordered update stream into bursts.

    Two consecutive updates belong to the same burst when their
    inter-arrival time is below ``gap_threshold`` seconds, matching the
    session-reset-free burst definition the paper borrows from the BGP
    measurement literature.
    """
    bursts: List[Burst] = []
    if not updates:
        return bursts
    ordered = sorted(updates, key=lambda update: update.time)
    start = ordered[0].time
    end = start
    count = 0
    prefixes: Set[IPv4Prefix] = set()
    for update in ordered:
        if count and update.time - end >= gap_threshold:
            bursts.append(Burst(start, end, count, len(prefixes)))
            start = update.time
            count = 0
            prefixes = set()
        end = update.time
        count += 1
        prefixes |= update.prefixes
    bursts.append(Burst(start, end, count, len(prefixes)))
    return bursts


def trace_stats(
    updates: Sequence[BGPUpdate],
    known_prefixes: Iterable[IPv4Prefix],
    gap_threshold: float = 2.0,
) -> TraceStats:
    """Compute the Table 1 row for an update trace.

    ``known_prefixes`` is the full routing table against which the
    "prefixes seeing updates" fraction is reported.
    """
    known = set(known_prefixes)
    touched: Set[IPv4Prefix] = set()
    peers: Set[str] = set()
    for update in updates:
        peers.add(update.peer)
        touched |= update.prefixes & known if known else update.prefixes
    bursts = detect_bursts(updates, gap_threshold=gap_threshold)
    gaps = tuple(
        round(later.start - earlier.end, 9)
        for earlier, later in zip(bursts, bursts[1:])
    )
    return TraceStats(
        peers=len(peers),
        prefixes=len(known),
        updates=len(updates),
        prefixes_seeing_updates=len(touched),
        bursts=len(bursts),
        burst_sizes=tuple(burst.prefixes for burst in bursts),
        inter_burst_gaps=gaps,
    )
