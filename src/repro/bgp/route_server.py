"""The SDX route server (the ExaBGP-based pipeline of Figure 3).

Like a conventional IXP route server, it keeps an Adj-RIB-In per peer,
runs the BGP decision process *on behalf of each participant*, and
re-advertises each participant's best route.  Two SDX-specific twists:

* it tracks the full candidate set per (participant, prefix), because
  the SDX lets participants forward to any neighbor that exported the
  prefix to them, not only the best-path neighbor (Section 3.2);
* it reports best-path changes to subscribers (the SDX controller),
  which recompiles policies and rewrites outbound next-hops to virtual
  next-hops before the announcements leave the exchange.

Scaling design.  With hundreds of participants and tens of thousands of
prefixes, materializing a per-participant Loc-RIB (participants ×
prefixes entries) is prohibitive.  Instead the server keeps one
globally *ranked* candidate list per prefix; any participant's best
route is then "the first ranked route not learned from me and exported
to me".  :class:`ParticipantView` exposes the per-participant Loc-RIB
interface on top of that shared index.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.bgp.decision import rank_routes
from repro.bgp.messages import Announcement, BGPUpdate, Route, Withdrawal
from repro.bgp.rib import AdjRIBIn, RIBTable
from repro.bgp.session import BGPSession, SessionState
from repro.netutils.ip import IPv4Prefix

__all__ = ["BestPathChange", "ParticipantView", "RouteServer"]


class BestPathChange(NamedTuple):
    """One participant's best route for one prefix changed."""

    participant: str
    prefix: IPv4Prefix
    old: Optional[Route]
    new: Optional[Route]


def _best_from_ranked(ranked: Tuple[Route, ...], participant: str) -> Optional[Route]:
    """First ranked route the participant may use (the decision outcome)."""
    for route in ranked:
        if route.learned_from != participant and route.exported_to(participant):
            return route
    return None


class ParticipantView:
    """One participant's Loc-RIB, derived lazily from the global ranking."""

    def __init__(self, server: "RouteServer", participant: str) -> None:
        self._server = server
        self.participant = participant

    def best(self, prefix: IPv4Prefix) -> Optional[Route]:
        """The BGP-best route for ``prefix``, if any."""
        return _best_from_ranked(self._server.ranked_routes(prefix), self.participant)

    def candidates(self, prefix: IPv4Prefix) -> Tuple[Route, ...]:
        """Every route exported to this participant for ``prefix``, ranked."""
        return tuple(
            route
            for route in self._server.ranked_routes(prefix)
            if route.learned_from != self.participant
            and route.exported_to(self.participant)
        )

    def feasible_next_hops(self, prefix: IPv4Prefix) -> FrozenSet[str]:
        """Peers this participant may legitimately send ``prefix`` traffic to."""
        return frozenset(route.learned_from for route in self.candidates(prefix))

    def prefixes(self) -> FrozenSet[IPv4Prefix]:
        """Prefixes for which this participant has at least one usable route."""
        return frozenset(prefix for prefix, _ in self.items())

    def prefixes_via(self, peer: str) -> FrozenSet[IPv4Prefix]:
        """Prefixes for which ``peer`` exported a route to this participant.

        This backs the Section 4.1 BGP-consistency transformation: it is
        the reachability filter inserted before every ``fwd(peer)``.
        """
        if peer == self.participant:
            return frozenset()
        out: Set[IPv4Prefix] = set()
        for prefix in self._server.prefixes_from(peer):
            route = self._server.route_from(peer, prefix)
            if route is not None and route.exported_to(self.participant):
                out.add(prefix)
        return frozenset(out)

    def items(self) -> Iterator[Tuple[IPv4Prefix, Route]]:
        """Iterate (prefix, best route) pairs for this participant."""
        for prefix in self._server.all_prefixes():
            best = self.best(prefix)
            if best is not None:
                yield prefix, best

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.best(prefix) is not None

    def __repr__(self) -> str:
        return f"ParticipantView(participant={self.participant!r})"


class RouteServer:
    """Multilateral route server with a shared, ranked candidate index.

    When constructed with its own ``asn``, the server additionally
    honours the community-based export-control conventions of
    :mod:`repro.bgp.export_policy` for announcements that do not carry
    an explicit ``export_to`` scope.
    """

    def __init__(
        self, always_compare_med: bool = False, asn: Optional[int] = None
    ) -> None:
        self._adj_rib_in: Dict[str, AdjRIBIn] = {}
        self._sessions: Dict[str, BGPSession] = {}
        self._views: Dict[str, ParticipantView] = {}
        self._routes_by_prefix: Dict[IPv4Prefix, Dict[str, Route]] = {}
        self._ranked_cache: Dict[IPv4Prefix, Tuple[Route, ...]] = {}
        self._sorted_prefixes: Optional[Tuple[IPv4Prefix, ...]] = None
        self._subscribers: List[Callable[[List[BestPathChange]], None]] = []
        self._always_compare_med = always_compare_med
        self.asn = asn
        self._peer_asns: Dict[str, int] = {}
        # Graceful restart (RFC 4724): peers opted in keep their routes
        # as *stale* across a session failure instead of triggering an
        # immediate withdraw storm.
        self._graceful: Set[str] = set()
        self._stale: Dict[str, Set[IPv4Prefix]] = {}
        self._m_updates = self._m_changes = self._m_sessions = None
        self._m_announce = self._m_withdraw = None

    def attach_telemetry(self, registry) -> None:
        """Count update-plane traffic and session churn in ``registry``."""
        self._m_updates = registry.counter(
            "sdx_bgp_updates_total",
            "Announcements and withdrawals applied",
            labels=("kind",),
        )
        # _apply is the update-plane hot loop: bind the label
        # combinations once so each event is a plain dict update.
        self._m_announce = self._m_updates.bind(kind="announce")
        self._m_withdraw = self._m_updates.bind(kind="withdraw")
        self._m_changes = registry.counter(
            "sdx_bgp_best_path_changes_total",
            "Per-participant best-path change events emitted",
        ).bind()
        self._m_sessions = registry.counter(
            "sdx_session_transitions_total",
            "BGP session state transitions",
            labels=("state",),
        )

    # -- peers ----------------------------------------------------------

    def add_peer(
        self, peer: str, establish: bool = True, asn: Optional[int] = None
    ) -> BGPSession:
        """Register a peer; returns its session object.

        ``asn`` enables community-based export control addressed to
        this peer (``(0, asn)`` / ``(rs-asn, asn)``).
        """
        if peer in self._sessions:
            raise ValueError(f"peer {peer!r} already registered")
        session = BGPSession(peer)
        session.on_state_change(self._session_changed)
        self._sessions[peer] = session
        self._adj_rib_in[peer] = AdjRIBIn(peer)
        self._views[peer] = ParticipantView(self, peer)
        if asn is not None:
            self._peer_asns[peer] = asn
        if establish:
            session.establish()
        return session

    def session(self, peer: str) -> BGPSession:
        return self._sessions[peer]

    def peers(self) -> FrozenSet[str]:
        return frozenset(self._sessions)

    def peer_asn(self, peer: str) -> Optional[int]:
        """The ASN registered for ``peer``, if any."""
        return self._peer_asns.get(peer)

    # -- graceful restart (RFC 4724 semantics) ---------------------------------

    def set_graceful_restart(self, peer: str, enabled: bool = True) -> None:
        """Opt ``peer`` in (or out) of stale-route retention on failure."""
        if peer not in self._sessions:
            raise KeyError(f"unknown peer {peer!r}")
        if enabled:
            self._graceful.add(peer)
        else:
            self._graceful.discard(peer)

    def stale_prefixes(self, peer: str) -> FrozenSet[IPv4Prefix]:
        """Prefixes retained from ``peer``'s last session, not yet refreshed."""
        return frozenset(self._stale.get(peer, ()))

    def sweep_stale(self, peer: str) -> List[BestPathChange]:
        """Withdraw every still-stale route from ``peer``.

        Called when the restart timer expires before the peer returns,
        or on End-of-RIB after it did (any route it no longer announced
        must go).
        """
        stale = self._stale.pop(peer, None)
        if not stale:
            return []
        rib_in = self._adj_rib_in[peer]
        touched: Set[IPv4Prefix] = set()
        for prefix in stale:
            if rib_in.remove(prefix) is not None:
                self._unindex(peer, prefix)
                touched.add(prefix)
        return self._notify(touched)

    def end_of_rib(self, peer: str) -> List[BestPathChange]:
        """The peer finished its initial re-advertisement (RFC 4724 §3)."""
        return self.sweep_stale(peer)

    def _session_changed(self, session: BGPSession, state: SessionState) -> None:
        if self._m_sessions is not None:
            self._m_sessions.inc(state=state.name.lower())
        if state is SessionState.IDLE:
            # Administrative shutdown: every route from this peer is
            # invalid immediately, stale retention included.
            self._stale.pop(session.peer, None)
            self._flush_peer(session.peer)
        elif state is SessionState.FAILED:
            if session.peer in self._graceful:
                # Graceful restart: keep forwarding on the last-known
                # routes, but mark them stale so a restart timer or
                # End-of-RIB can reap whatever is not refreshed.
                self._stale[session.peer] = set(
                    self._adj_rib_in[session.peer].prefixes()
                )
            else:
                self._flush_peer(session.peer)

    def _flush_peer(self, peer: str) -> None:
        dropped = self._adj_rib_in[peer].clear()
        if dropped:
            touched = set()
            for route in dropped:
                self._unindex(peer, route.prefix)
                touched.add(route.prefix)
            self._notify(touched)

    # -- the shared candidate index -----------------------------------------

    def _index(self, route: Route) -> None:
        if route.prefix not in self._routes_by_prefix:
            self._sorted_prefixes = None
        self._routes_by_prefix.setdefault(route.prefix, {})[route.learned_from] = route
        self._ranked_cache.pop(route.prefix, None)

    def _unindex(self, peer: str, prefix: IPv4Prefix) -> None:
        per_prefix = self._routes_by_prefix.get(prefix)
        if per_prefix is not None:
            per_prefix.pop(peer, None)
            if not per_prefix:
                del self._routes_by_prefix[prefix]
                self._sorted_prefixes = None
        self._ranked_cache.pop(prefix, None)

    def ranked_routes(self, prefix: "IPv4Prefix | str") -> Tuple[Route, ...]:
        """Every peer's route for ``prefix``, globally ranked best-first.

        This is also the SDX compiler's BGP *fingerprint* source: two
        prefixes with identical ranked (peer, next-hop, export-scope)
        lists are forwarded identically by every participant.
        """
        prefix = IPv4Prefix(prefix)
        cached = self._ranked_cache.get(prefix)
        if cached is None:
            routes = self._routes_by_prefix.get(prefix, {})
            cached = tuple(rank_routes(routes.values(), self._always_compare_med))
            self._ranked_cache[prefix] = cached
        return cached

    def route_from(self, peer: str, prefix: IPv4Prefix) -> Optional[Route]:
        """The route ``peer`` announced for ``prefix``, if any."""
        return self._routes_by_prefix.get(prefix, {}).get(peer)

    def prefixes_from(self, peer: str) -> FrozenSet[IPv4Prefix]:
        """Every prefix ``peer`` currently announces."""
        rib_in = self._adj_rib_in.get(peer)
        return rib_in.prefixes() if rib_in is not None else frozenset()

    # -- update processing -----------------------------------------------

    def process_update(self, update: BGPUpdate) -> List[BestPathChange]:
        """Apply one UPDATE and report resulting best-path changes."""
        touched = self._apply(update)
        return self._notify(touched)

    def load(self, updates: Iterable[BGPUpdate]) -> int:
        """Bulk-load updates without change tracking (initial table fill).

        Returns the number of updates applied.  Intended for workload
        setup: loading a full routing table through
        :meth:`process_update` would compute per-participant diffs for
        every prefix, which no consumer needs before the first
        compilation.
        """
        count = 0
        for update in updates:
            self._apply(update)
            count += 1
        return count

    def _apply(self, update: BGPUpdate) -> Set[IPv4Prefix]:
        peer = update.peer
        if peer not in self._sessions:
            raise KeyError(f"unknown peer {peer!r}")
        if not self._sessions[peer].is_established:
            raise RuntimeError(f"peer {peer!r} session is not established")
        rib_in = self._adj_rib_in[peer]
        stale = self._stale.get(peer)
        touched: Set[IPv4Prefix] = set()
        if self._m_updates is not None:
            if update.withdrawn:
                self._m_withdraw.inc(len(update.withdrawn))
            if update.announced:
                self._m_announce.inc(len(update.announced))
        for withdrawal in update.withdrawn:
            if stale is not None:
                stale.discard(withdrawal.prefix)
            if rib_in.remove(withdrawal.prefix) is not None:
                self._unindex(peer, withdrawal.prefix)
                touched.add(withdrawal.prefix)
        for announcement in update.announced:
            export_to = announcement.export_to
            if export_to is None and self.asn is not None:
                from repro.bgp.export_policy import export_scope_from_communities

                export_to = export_scope_from_communities(
                    announcement.attributes.communities,
                    self._sessions,
                    self._peer_asns,
                    self.asn,
                )
            route = Route(
                announcement.prefix,
                announcement.attributes,
                learned_from=peer,
                export_to=export_to,
            )
            if stale is not None:
                # A refreshed route is no longer stale, even if identical.
                stale.discard(announcement.prefix)
            previous = rib_in.insert(route)
            if previous != route:
                self._index(route)
                touched.add(announcement.prefix)
        return touched

    def announce(
        self,
        peer: str,
        prefix: "IPv4Prefix | str",
        attributes,
        export_to: Optional[Iterable[str]] = None,
        time: float = 0.0,
    ) -> List[BestPathChange]:
        """Convenience wrapper: announce one prefix from ``peer``."""
        update = BGPUpdate(
            peer,
            announced=[Announcement(prefix, attributes, export_to=export_to)],
            time=time,
        )
        return self.process_update(update)

    def withdraw(
        self, peer: str, prefix: "IPv4Prefix | str", time: float = 0.0
    ) -> List[BestPathChange]:
        """Convenience wrapper: withdraw one prefix from ``peer``."""
        update = BGPUpdate(peer, withdrawn=[Withdrawal(prefix)], time=time)
        return self.process_update(update)

    def _notify(self, touched: Set[IPv4Prefix]) -> List[BestPathChange]:
        """Report per-participant best paths for every touched prefix.

        Conservative: an event is emitted for each (participant, touched
        prefix) pair without diffing against the pre-change state — the
        SDX fast path treats every update as requiring a fresh VNH
        anyway (Section 4.3.2), so finer change tracking would buy
        nothing.  ``old`` is therefore always ``None``.
        """
        changes: List[BestPathChange] = []
        for prefix in sorted(touched):
            ranked = self.ranked_routes(prefix)
            for participant in self._sessions:
                new = _best_from_ranked(ranked, participant)
                changes.append(BestPathChange(participant, prefix, None, new))
        if changes:
            if self._m_changes is not None:
                self._m_changes.inc(len(changes))
            for subscriber in list(self._subscribers):
                subscriber(changes)
        return changes

    # -- queries the SDX controller makes ---------------------------------

    def subscribe(self, callback: Callable[[List[BestPathChange]], None]) -> None:
        """Register for best-path change notifications."""
        self._subscribers.append(callback)

    def subscribe_participant(
        self, participant: str, callback: Callable[[List[BestPathChange]], None]
    ) -> None:
        """Register for one participant's best-path changes only.

        The callback receives the filtered change list and is skipped
        entirely for batches that do not touch ``participant`` — the
        inter-IXP relay watches its transit's view this way without
        paying for every other member's churn.
        """
        if participant not in self._sessions:
            raise KeyError(f"unknown peer {participant!r}")

        def filtered(changes: List[BestPathChange]) -> None:
            mine = [change for change in changes if change.participant == participant]
            if mine:
                callback(mine)

        self.subscribe(filtered)

    def loc_rib(self, participant: str) -> ParticipantView:
        """The participant's post-decision view."""
        return self._views[participant]

    def best_route(self, participant: str, prefix: "IPv4Prefix | str") -> Optional[Route]:
        return self._views[participant].best(IPv4Prefix(prefix))

    def candidate_routes(
        self, participant: str, prefix: "IPv4Prefix | str"
    ) -> Tuple[Route, ...]:
        """Every route exported to ``participant`` for ``prefix``, ranked."""
        return self._views[participant].candidates(IPv4Prefix(prefix))

    def reachable_prefixes(self, participant: str, via: str) -> FrozenSet[IPv4Prefix]:
        """Prefixes ``participant`` may forward to next-hop AS ``via``."""
        return self._views[participant].prefixes_via(via)

    def all_prefixes(self) -> FrozenSet[IPv4Prefix]:
        """Every prefix currently known from any peer."""
        return frozenset(self._routes_by_prefix)

    def sorted_prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Every known prefix in canonical order, cached between changes.

        The per-commit verification guard sorts the probe universe on
        every pass; re-sorting an unchanged RIB dominated its budget.
        """
        if self._sorted_prefixes is None:
            self._sorted_prefixes = tuple(sorted(self._routes_by_prefix))
        return self._sorted_prefixes

    def rib_table(self, participant: str) -> RIBTable:
        """A queryable RIB snapshot for the participant's policy code."""
        table = RIBTable()
        view = self._views[participant]
        for prefix in self._routes_by_prefix:
            for route in view.candidates(prefix):
                table.add(route)
        return table

    def advertisements(self, participant: str) -> List[Announcement]:
        """The best routes the server re-advertises to ``participant``.

        Next-hop rewriting to virtual next-hops happens above this layer
        (the SDX controller post-processes these announcements).
        """
        out: List[Announcement] = []
        view = self._views[participant]
        for prefix, route in sorted(view.items(), key=lambda item: item[0]):
            out.append(Announcement(prefix, route.attributes))
        return out

    def __repr__(self) -> str:
        return f"RouteServer(peers={len(self._sessions)})"
