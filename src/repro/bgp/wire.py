"""RFC 4271 wire encoding for BGP messages.

The in-memory message types of :mod:`repro.bgp.messages` model what the
route server *means*; this module maps them to and from the actual BGP
wire format, the way ExaBGP does for the paper's deployment.  Supported:

* the 19-byte common header with marker/length/type;
* OPEN (version, ASN, hold time, BGP identifier; no optional params);
* UPDATE with withdrawn routes, NLRI, and the path attributes the SDX
  uses — ORIGIN, AS_PATH (4-octet ASNs, AS_SEQUENCE), NEXT_HOP, MED,
  LOCAL_PREF, and COMMUNITIES;
* KEEPALIVE and NOTIFICATION.

Round-tripping is exact for the attribute set above and property-tested
in ``tests/property/test_wire_props.py``.
"""

from __future__ import annotations

import enum
import struct
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.bgp.attributes import ASPath, Community, Origin, RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate, Withdrawal
from repro.netutils.ip import IPv4Address, IPv4Prefix

__all__ = [
    "BGPHeader",
    "KeepaliveMessage",
    "MessageType",
    "NotificationMessage",
    "OpenMessage",
    "WireError",
    "decode_message",
    "encode_keepalive",
    "encode_notification",
    "encode_open",
    "encode_update",
]

MARKER = b"\xff" * 16
HEADER_LENGTH = 19
MAX_MESSAGE_LENGTH = 4096

#: Path-attribute type codes (RFC 4271 / RFC 1997 / RFC 6793).
ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_MED = 4
ATTR_LOCAL_PREF = 5
ATTR_COMMUNITIES = 8

_FLAG_OPTIONAL = 0x80
_FLAG_TRANSITIVE = 0x40
_FLAG_EXTENDED = 0x10

_AS_SEQUENCE = 2


class MessageType(enum.IntEnum):
    """BGP message type codes (RFC 4271 §4.1)."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class WireError(ValueError):
    """Malformed or unsupported bytes on the wire."""


class BGPHeader(NamedTuple):
    length: int
    type: MessageType


class OpenMessage(NamedTuple):
    """A decoded OPEN: session parameters a peer proposes."""

    version: int
    asn: int
    hold_time: int
    bgp_identifier: IPv4Address


class NotificationMessage(NamedTuple):
    """A decoded NOTIFICATION: error code, subcode, diagnostic bytes."""

    code: int
    subcode: int
    data: bytes


class KeepaliveMessage(NamedTuple):
    pass


# -- primitives -----------------------------------------------------------


def _encode_prefix(prefix: IPv4Prefix) -> bytes:
    """NLRI encoding: length byte + minimal network octets."""
    octets = (prefix.length + 7) // 8
    network = int(prefix.network).to_bytes(4, "big")[:octets]
    return bytes([prefix.length]) + network


def _decode_prefixes(payload: bytes) -> List[IPv4Prefix]:
    prefixes: List[IPv4Prefix] = []
    index = 0
    while index < len(payload):
        length = payload[index]
        if length > 32:
            raise WireError(f"prefix length {length} out of range")
        octets = (length + 7) // 8
        index += 1
        if index + octets > len(payload):
            raise WireError("truncated prefix in NLRI")
        network = int.from_bytes(payload[index : index + octets].ljust(4, b"\x00"), "big")
        prefixes.append(IPv4Prefix(network, length))
        index += octets
    return prefixes


def _header(message_type: MessageType, body: bytes) -> bytes:
    length = HEADER_LENGTH + len(body)
    if length > MAX_MESSAGE_LENGTH:
        raise WireError(f"message too large: {length} bytes")
    return MARKER + struct.pack("!HB", length, message_type) + body


def _attribute(flags: int, type_code: int, payload: bytes) -> bytes:
    if len(payload) > 255:
        flags |= _FLAG_EXTENDED
        return struct.pack("!BBH", flags, type_code, len(payload)) + payload
    return struct.pack("!BBB", flags, type_code, len(payload)) + payload


# -- encoding ---------------------------------------------------------------


def encode_open(
    asn: int, bgp_identifier: "IPv4Address | str", hold_time: int = 90, version: int = 4
) -> bytes:
    """Encode an OPEN message (2-octet ASN field; AS_TRANS for larger)."""
    wire_asn = asn if asn < (1 << 16) else 23456  # AS_TRANS, RFC 6793
    body = struct.pack(
        "!BHH4sB",
        version,
        wire_asn,
        hold_time,
        int(IPv4Address(bgp_identifier)).to_bytes(4, "big"),
        0,  # no optional parameters
    )
    return _header(MessageType.OPEN, body)


def encode_keepalive() -> bytes:
    return _header(MessageType.KEEPALIVE, b"")


def encode_notification(code: int, subcode: int = 0, data: bytes = b"") -> bytes:
    return _header(MessageType.NOTIFICATION, struct.pack("!BB", code, subcode) + data)


def _encode_path_attributes(attributes: RouteAttributes) -> bytes:
    out = b""
    out += _attribute(_FLAG_TRANSITIVE, ATTR_ORIGIN, bytes([int(attributes.origin)]))
    asns = attributes.as_path.asns
    path_payload = b""
    remaining = list(asns)
    while remaining:
        segment = remaining[:255]
        remaining = remaining[255:]
        path_payload += bytes([_AS_SEQUENCE, len(segment)])
        path_payload += b"".join(struct.pack("!I", asn) for asn in segment)
    out += _attribute(_FLAG_TRANSITIVE, ATTR_AS_PATH, path_payload)
    out += _attribute(
        _FLAG_TRANSITIVE, ATTR_NEXT_HOP, int(attributes.next_hop).to_bytes(4, "big")
    )
    out += _attribute(_FLAG_OPTIONAL, ATTR_MED, struct.pack("!I", attributes.med))
    out += _attribute(
        _FLAG_TRANSITIVE, ATTR_LOCAL_PREF, struct.pack("!I", attributes.local_pref)
    )
    if attributes.communities:
        payload = b"".join(
            struct.pack("!HH", community.asn, community.value)
            for community in sorted(attributes.communities)
        )
        out += _attribute(
            _FLAG_OPTIONAL | _FLAG_TRANSITIVE, ATTR_COMMUNITIES, payload
        )
    return out


def encode_update(update: BGPUpdate) -> List[bytes]:
    """Encode one :class:`BGPUpdate` as wire UPDATE message(s).

    BGP carries one attribute set per UPDATE, so announcements with
    differing attributes are emitted as separate messages; withdrawals
    ride with the first.  The export scope is a route-server-internal
    concept with no wire representation — use communities
    (:mod:`repro.bgp.export_policy`) to express it on the wire.
    """
    messages: List[bytes] = []
    withdrawn = b"".join(_encode_prefix(w.prefix) for w in update.withdrawn)
    groups: List[Tuple[RouteAttributes, List[IPv4Prefix]]] = []
    for announcement in update.announced:
        for attributes, prefixes in groups:
            if attributes == announcement.attributes:
                prefixes.append(announcement.prefix)
                break
        else:
            groups.append((announcement.attributes, [announcement.prefix]))
    if not groups:
        body = struct.pack("!H", len(withdrawn)) + withdrawn + struct.pack("!H", 0)
        return [_header(MessageType.UPDATE, body)]
    for index, (attributes, prefixes) in enumerate(groups):
        this_withdrawn = withdrawn if index == 0 else b""
        path_attributes = _encode_path_attributes(attributes)
        nlri = b"".join(_encode_prefix(prefix) for prefix in prefixes)
        body = (
            struct.pack("!H", len(this_withdrawn))
            + this_withdrawn
            + struct.pack("!H", len(path_attributes))
            + path_attributes
            + nlri
        )
        messages.append(_header(MessageType.UPDATE, body))
    return messages


# -- decoding ---------------------------------------------------------------


def _decode_header(data: bytes) -> BGPHeader:
    if len(data) < HEADER_LENGTH:
        raise WireError("short read: no BGP header")
    if data[:16] != MARKER:
        raise WireError("bad marker")
    length, message_type = struct.unpack("!HB", data[16:19])
    if not HEADER_LENGTH <= length <= MAX_MESSAGE_LENGTH:
        raise WireError(f"bad length {length}")
    try:
        return BGPHeader(length, MessageType(message_type))
    except ValueError:
        raise WireError(f"unknown message type {message_type}") from None


def _decode_as_path(payload: bytes) -> ASPath:
    asns: List[int] = []
    index = 0
    while index < len(payload):
        if index + 2 > len(payload):
            raise WireError("truncated AS_PATH segment header")
        segment_type, count = payload[index], payload[index + 1]
        index += 2
        if segment_type != _AS_SEQUENCE:
            raise WireError(f"unsupported AS_PATH segment type {segment_type}")
        need = count * 4
        if index + need > len(payload):
            raise WireError("truncated AS_PATH segment")
        for position in range(count):
            (asn,) = struct.unpack_from("!I", payload, index + position * 4)
            asns.append(asn)
        index += need
    return ASPath(asns)


def _decode_path_attributes(payload: bytes) -> RouteAttributes:
    origin = Origin.IGP
    as_path = ASPath()
    next_hop: Optional[IPv4Address] = None
    med = 0
    local_pref = 100
    communities: List[Community] = []
    index = 0
    while index < len(payload):
        if index + 2 > len(payload):
            raise WireError("truncated attribute header")
        flags, type_code = payload[index], payload[index + 1]
        index += 2
        if flags & _FLAG_EXTENDED:
            if index + 2 > len(payload):
                raise WireError("truncated extended length")
            (length,) = struct.unpack_from("!H", payload, index)
            index += 2
        else:
            if index + 1 > len(payload):
                raise WireError("truncated length")
            length = payload[index]
            index += 1
        if index + length > len(payload):
            raise WireError("truncated attribute value")
        value = payload[index : index + length]
        index += length
        if type_code == ATTR_ORIGIN:
            origin = Origin(value[0])
        elif type_code == ATTR_AS_PATH:
            as_path = _decode_as_path(value)
        elif type_code == ATTR_NEXT_HOP:
            next_hop = IPv4Address(int.from_bytes(value, "big"))
        elif type_code == ATTR_MED:
            (med,) = struct.unpack("!I", value)
        elif type_code == ATTR_LOCAL_PREF:
            (local_pref,) = struct.unpack("!I", value)
        elif type_code == ATTR_COMMUNITIES:
            if length % 4:
                raise WireError("communities length not a multiple of 4")
            for offset in range(0, length, 4):
                asn, community_value = struct.unpack_from("!HH", value, offset)
                communities.append(Community(asn, community_value))
        # unknown attributes are skipped (optional-transitive pass-through)
    if next_hop is None:
        raise WireError("UPDATE with NLRI lacks NEXT_HOP")
    return RouteAttributes(
        as_path=as_path,
        next_hop=next_hop,
        origin=origin,
        med=med,
        local_pref=local_pref,
        communities=communities,
    )


def decode_message(
    data: bytes, peer: str = "", time: float = 0.0
) -> Tuple[Union[BGPUpdate, OpenMessage, KeepaliveMessage, NotificationMessage], bytes]:
    """Decode one message from the front of ``data``.

    Returns (message, remaining bytes).  UPDATE messages come back as
    :class:`~repro.bgp.messages.BGPUpdate` ready for the route server.
    """
    header = _decode_header(data)
    if len(data) < header.length:
        raise WireError("short read: truncated message body")
    body = data[HEADER_LENGTH : header.length]
    rest = data[header.length :]

    if header.type is MessageType.KEEPALIVE:
        if body:
            raise WireError("KEEPALIVE with a body")
        return KeepaliveMessage(), rest
    if header.type is MessageType.OPEN:
        if len(body) < 10:
            raise WireError("short OPEN")
        version, asn, hold_time, identifier, opt_len = struct.unpack("!BHH4sB", body[:10])
        if opt_len:
            raise WireError("OPEN optional parameters unsupported")
        return (
            OpenMessage(version, asn, hold_time, IPv4Address(int.from_bytes(identifier, "big"))),
            rest,
        )
    if header.type is MessageType.NOTIFICATION:
        if len(body) < 2:
            raise WireError("short NOTIFICATION")
        return NotificationMessage(body[0], body[1], body[2:]), rest

    # UPDATE
    if len(body) < 2:
        raise WireError("short UPDATE")
    (withdrawn_length,) = struct.unpack_from("!H", body, 0)
    cursor = 2
    if cursor + withdrawn_length > len(body):
        raise WireError("truncated withdrawn routes")
    withdrawn = _decode_prefixes(body[cursor : cursor + withdrawn_length])
    cursor += withdrawn_length
    if cursor + 2 > len(body):
        raise WireError("missing path-attribute length")
    (attributes_length,) = struct.unpack_from("!H", body, cursor)
    cursor += 2
    if cursor + attributes_length > len(body):
        raise WireError("truncated path attributes")
    attribute_bytes = body[cursor : cursor + attributes_length]
    cursor += attributes_length
    nlri = _decode_prefixes(body[cursor:])
    announced: List[Announcement] = []
    if nlri:
        attributes = _decode_path_attributes(attribute_bytes)
        announced = [Announcement(prefix, attributes) for prefix in nlri]
    update = BGPUpdate(
        peer,
        announced=announced,
        withdrawn=[Withdrawal(prefix) for prefix in withdrawn],
        time=time,
    )
    return update, rest
