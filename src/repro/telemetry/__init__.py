"""First-class instrumentation for the SDX compile/fast-path pipeline.

See :mod:`repro.telemetry.registry` for the metric primitives.  The
controller owns one :class:`MetricsRegistry` (``controller.telemetry``)
and wires it through the compiler, fast-path engine, route server, and
flow table; ``controller.ops.metrics()`` returns the structured snapshot
and ``controller.ops.metrics_text()`` the Prometheus-style exposition.

Metric names follow the ``sdx_<subsystem>_<what>[_total|_seconds]``
convention; the full catalogue (names, labels, bucket choices) is
documented in ``docs/internals.md``.  The verification oracle
(:mod:`repro.verify`) reports into the same registry under the
``sdx_verify_*`` family — probe results, invariant violations, and
check-pass latency.
"""

from repro.telemetry.registry import (
    BoundCounter,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    Metric,
    MetricsRegistry,
    SIZE_BUCKETS,
    SpanRecord,
    TraceSpan,
)

__all__ = [
    "BoundCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "Metric",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "SpanRecord",
    "TraceSpan",
]
