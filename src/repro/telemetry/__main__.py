"""Telemetry smoke workload: ``python -m repro.telemetry``.

Builds a small synthetic exchange, runs one full compilation and a
best-path-changing update burst through the fast path, then prints the
controller's Prometheus text exposition.  Exits non-zero if the
exposition comes back empty — the CI ``make metrics`` step pins exactly
that, so a refactor that silently unwires the registry fails fast.
"""

from __future__ import annotations

import random
import sys

from repro.experiments.common import build_scenario
from repro.experiments.figure9 import _worst_case_burst

#: Metrics the smoke workload must populate to count as wired.
REQUIRED = (
    "sdx_compile_seconds",
    "sdx_fastpath_seconds",
    "sdx_bgp_updates_total",
    "sdx_flowtable_installs_total",
)


def main() -> int:
    scenario = build_scenario(participants=10, prefixes=60, seed=3)
    controller = scenario.controller()
    controller.compile()
    burst = _worst_case_burst(scenario, 12, random.Random(4))
    for update in burst:
        controller.routing.process_update(update)
    text = controller.ops.metrics_text()
    if not text.strip():
        print("telemetry smoke FAILED: empty exposition", file=sys.stderr)
        return 1
    missing = [name for name in REQUIRED if name not in text]
    if missing:
        print(
            f"telemetry smoke FAILED: missing metrics {missing}", file=sys.stderr
        )
        return 1
    print(text, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
