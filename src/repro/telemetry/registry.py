"""A dependency-free metrics registry: counters, gauges, histograms, spans.

The SDX paper's headline claims are quantitative — compilation time
(Figure 8), extra fast-path rules (Figure 9), per-update latency
(Figure 10) — so the controller carries first-class instrumentation
instead of ad-hoc ``time.perf_counter()`` calls scattered through
benchmarks.  Three design constraints shape this module:

* **No dependencies.**  The exposition format is Prometheus text
  (``# TYPE``/``# HELP`` plus ``name{label="v"} value`` samples), but
  nothing here imports a client library.
* **Fixed bucket boundaries.**  Histograms are cumulative-bucket
  (``le``-semantics) with boundaries fixed at creation, so merging and
  scraping never reshape the data.  An optional bounded sample window
  additionally retains raw observations for exact percentiles — the
  Figure 10 CDF needs more resolution than buckets give.
* **An injectable time source.**  ``registry.now()`` is
  ``time.perf_counter`` by default, but a controller running on the
  discrete-event sim clock swaps in ``lambda: sim.now`` so simulated
  and wall-clock runs report durations in one consistent time base.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "BoundCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "Metric",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "SpanRecord",
    "TraceSpan",
]

#: Default boundaries for duration histograms: 100 µs to 10 s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default boundaries for count histograms (rules installed, burst sizes).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

LabelKey = Tuple[str, ...]


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Metric:
    """Base class: a named metric with a declared, fixed label schema."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        for label in self.label_names:
            _validate_name(label)

    def _key(self, labels: Mapping[str, Any]) -> LabelKey:
        if len(labels) != len(self.label_names) or any(
            name not in labels for name in self.label_names
        ):
            raise ValueError(
                f"{self.name} requires labels {self.label_names}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_of(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class BoundCounter:
    """One pre-resolved series of a :class:`Counter`.

    Hot paths bind their label combination once (at attach time) so the
    per-event cost is a dict update, not label validation — the
    ``labels()`` child idiom of the standard Prometheus clients.
    """

    __slots__ = ("name", "_values", "_series_key")

    def __init__(self, counter: "Counter", key: LabelKey) -> None:
        self.name = counter.name
        self._values = counter._values
        self._series_key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        values = self._values
        values[self._series_key] = values.get(self._series_key, 0.0) + amount


class Counter(Metric):
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def bind(self, **labels: Any) -> BoundCounter:
        """A hot-path handle for one label combination (validated once)."""
        return BoundCounter(self, self._key(labels))

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """The sum across every label combination."""
        return sum(self._values.values())

    def series(self) -> Iterator[Tuple[Dict[str, str], float]]:
        for key in sorted(self._values):
            yield self._labels_of(key), self._values[key]


class Gauge(Metric):
    """A value that can go up and down (table sizes, active prefixes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Iterator[Tuple[Dict[str, str], float]]:
        for key in sorted(self._values):
            yield self._labels_of(key), self._values[key]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum", "samples")

    def __init__(self, n_buckets: int, sample_window: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.samples: Optional[Deque[float]] = (
            deque(maxlen=sample_window) if sample_window > 0 else None
        )


class Histogram(Metric):
    """Cumulative-bucket histogram with fixed boundaries.

    ``sample_window`` > 0 keeps the last N raw observations in a ring
    buffer so :meth:`percentile` is exact over recent data; with a
    window of 0, percentiles fall back to linear interpolation inside
    the matching bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
        sample_window: int = 0,
    ) -> None:
        super().__init__(name, help, labels)
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise ValueError(f"bucket boundaries must be strictly increasing: {buckets}")
        self.buckets = boundaries
        self.sample_window = int(sample_window)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get_series(self, labels: Mapping[str, Any]) -> _HistogramSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets), self.sample_window)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        series = self._get_series(labels)
        series.bucket_counts[bisect_left(self.buckets, value)] += 1
        series.count += 1
        series.sum += value
        if series.samples is not None:
            series.samples.append(value)

    def count(self, **labels: Any) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def total(self, **labels: Any) -> float:
        """The sum of every observed value in this series."""
        series = self._series.get(self._key(labels))
        return series.sum if series is not None else 0.0

    def samples(self, **labels: Any) -> List[float]:
        """The retained raw observations (empty without a sample window)."""
        series = self._series.get(self._key(labels))
        if series is None or series.samples is None:
            return []
        return list(series.samples)

    def percentile(self, percent: float, **labels: Any) -> float:
        """The ``percent``-th percentile; exact when samples are retained."""
        series = self._series.get(self._key(labels))
        if series is None or series.count == 0:
            return 0.0
        if series.samples:
            data = sorted(series.samples)
            index = min(len(data) - 1, int(len(data) * percent / 100))
            return data[index]
        # Bucket interpolation: find the bucket holding the target rank,
        # then interpolate linearly between its boundaries.
        target = series.count * percent / 100
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(series.bucket_counts):
            upper = (
                self.buckets[index]
                if index < len(self.buckets)
                else self.buckets[-1]  # the +Inf bucket has no width
            )
            if cumulative + bucket_count >= target:
                if bucket_count == 0:
                    return upper
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(fraction, 1.0)
            cumulative += bucket_count
            lower = upper
        return self.buckets[-1]

    def series(self) -> Iterator[Tuple[Dict[str, str], _HistogramSeries]]:
        for key in sorted(self._series):
            yield self._labels_of(key), self._series[key]


class SpanRecord(NamedTuple):
    """One completed trace span (kept in a bounded ring for debugging)."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    started: float
    seconds: float


class TraceSpan:
    """Times a ``with`` block and observes the duration into a histogram."""

    __slots__ = ("_registry", "_histogram", "_labels", "started", "seconds")

    def __init__(
        self, registry: "MetricsRegistry", histogram: Histogram, labels: Dict[str, Any]
    ) -> None:
        self._registry = registry
        self._histogram = histogram
        self._labels = labels
        self.started: float = 0.0
        self.seconds: float = 0.0

    def __enter__(self) -> "TraceSpan":
        self.started = self._registry.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = self._registry.now() - self.started
        self._histogram.observe(self.seconds, **self._labels)
        self._registry._record_span(
            SpanRecord(
                self._histogram.name,
                tuple(sorted((k, str(v)) for k, v in self._labels.items())),
                self.started,
                self.seconds,
            )
        )


class MetricsRegistry:
    """Creates, indexes, and exposes metrics; owns the time source."""

    def __init__(
        self,
        time_source: Callable[[], float] = time.perf_counter,
        span_window: int = 256,
    ) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._time_source = time_source
        self._spans: Deque[SpanRecord] = deque(maxlen=span_window)

    # -- time -------------------------------------------------------------

    def now(self) -> float:
        """The current time from the injected source (seconds)."""
        return self._time_source()

    def set_time_source(self, time_source: Callable[[], float]) -> None:
        """Swap the time base (e.g. a sim clock's ``lambda: sim.now``)."""
        self._time_source = time_source

    # -- metric creation (get-or-create, schema-checked) -------------------

    def _register(self, cls, name: str, help: str, labels: Sequence[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        metric = cls(name, help, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        sample_window: int = 0,
    ) -> Histogram:
        return self._register(
            Histogram,
            name,
            help,
            labels,
            buckets=tuple(buckets) if buckets is not None else LATENCY_BUCKETS,
            sample_window=sample_window,
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    # -- spans ------------------------------------------------------------

    def span(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> TraceSpan:
        """Context manager timing a block into histogram ``name``."""
        histogram = self.histogram(
            name, help, labels=tuple(sorted(labels)), buckets=buckets
        )
        return TraceSpan(self, histogram, labels)

    def _record_span(self, record: SpanRecord) -> None:
        self._spans.append(record)

    def recent_spans(self) -> List[SpanRecord]:
        """The most recent completed spans, oldest first."""
        return list(self._spans)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A structured, JSON-friendly view of every metric."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, metric in self._metrics.items():
            entry: Dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
                "series": [],
            }
            if isinstance(metric, Histogram):
                for labels, series in metric.series():
                    cumulative = 0
                    buckets: Dict[str, int] = {}
                    for boundary, count in zip(
                        metric.buckets, series.bucket_counts
                    ):
                        cumulative += count
                        buckets[_format_value(boundary)] = cumulative
                    buckets["+Inf"] = series.count
                    entry["series"].append(
                        {
                            "labels": labels,
                            "count": series.count,
                            "sum": series.sum,
                            "buckets": buckets,
                        }
                    )
            else:
                for labels, value in metric.series():
                    entry["series"].append({"labels": labels, "value": value})
            out[name] = entry
        return out

    def exposition(self) -> str:
        """Prometheus text exposition of every metric with data."""
        lines: List[str] = []
        for name, metric in self._metrics.items():
            samples = self._sample_lines(metric)
            if not samples:
                continue
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(samples)
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
        parts = [f'{key}="{_escape_label(value)}"' for key, value in labels.items()]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def _sample_lines(self, metric: Metric) -> List[str]:
        lines: List[str] = []
        if isinstance(metric, Histogram):
            for labels, series in metric.series():
                cumulative = 0
                for boundary, count in zip(metric.buckets, series.bucket_counts):
                    cumulative += count
                    rendered = self._render_labels(
                        labels, f'le="{_format_value(boundary)}"'
                    )
                    lines.append(f"{metric.name}_bucket{rendered} {cumulative}")
                rendered = self._render_labels(labels, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{rendered} {series.count}")
                plain = self._render_labels(labels)
                lines.append(f"{metric.name}_sum{plain} {_format_value(series.sum)}")
                lines.append(f"{metric.name}_count{plain} {series.count}")
        else:
            for labels, value in metric.series():  # type: ignore[union-attr]
                rendered = self._render_labels(labels)
                lines.append(f"{metric.name}{rendered} {_format_value(value)}")
        return lines

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"
