"""Multi-IXP federation: several SDX fabrics joined by transit members.

A single SDX controls one exchange.  Real interconnection is wider: a
transit AS peers at several IXPs at once and carries traffic between
them, so a participant's steering decision at exchange A can put a
packet on a path that re-enters the fabric of exchange B.  This package
models that layer:

* :class:`~repro.federation.exchange.FederatedExchange` — hosts N
  independent :class:`~repro.core.controller.SDXController` instances,
  one per member IXP, and the inter-IXP links between them;
* transit members — participants registered at two or more member
  exchanges under one ASN (distinct ports and peering-LAN addresses
  per IXP), discovered by ASN with
  :meth:`~repro.federation.exchange.FederatedExchange.transit_members`;
* :class:`~repro.federation.exchange.InterIXPLink` — a directed relay:
  the transit re-announces routes it holds at the source exchange into
  the destination exchange's route server (AS path prepended, next-hop
  rewritten to the transit's own port on the destination peering LAN,
  export scope filtered), with AS-path loop prevention;
* :meth:`~repro.federation.exchange.FederatedExchange.sync` — drives
  relays to a fixpoint, so policy changes and failures at one exchange
  propagate coherently to the others.

Because a relayed route's next-hop is the transit's interface on the
*destination* LAN, each fabric's VNH/VMAC machinery applies unchanged:
traffic steered out of exchange A toward the transit re-enters exchange
B tagged by B's own ARP responder — the policy-stitching invariant the
federation verifier (:mod:`repro.verify.federation`) checks end to end.

Telemetry lands in ``FederatedExchange.telemetry`` under the
``sdx_federation_*`` family.
"""

from repro.federation.exchange import (
    FederatedExchange,
    InterIXPLink,
    TransitMember,
)

__all__ = [
    "FederatedExchange",
    "InterIXPLink",
    "TransitMember",
]
