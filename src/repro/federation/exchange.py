"""The federated exchange: N SDX controllers plus inter-IXP relays.

The design keeps each member exchange a *complete* SDX — its own route
server, compiler, fabric, and verifier — and adds exactly one new
mechanism: the :class:`InterIXPLink`, a directed BGP relay operated by a
transit participant present at both ends.  Everything else (policy
stitching, cross-exchange verification) is derived from relayed-route
provenance, which the federation records here.

Relay semantics, per link ``src --AS T--> dst``:

* the relay candidate set is T's Loc-RIB at ``src`` (its post-decision
  best routes, exactly what a real transit router would redistribute);
* routes whose AS path already contains T are skipped (standard BGP
  loop prevention — this is what makes :meth:`FederatedExchange.sync`
  a terminating fixpoint);
* prefixes T announces natively at ``dst`` are never overwritten;
* the relayed announcement prepends T's ASN to the path and rewrites
  the next-hop to T's own port address on the destination peering LAN,
  so the destination exchange delivers the traffic to T's router there
  — the inter-IXP hop — and the destination's VNH/VMAC tagging applies
  to the relayed route like any other.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)

from repro.bgp.messages import Route
from repro.core.controller import SDXController
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.route_server import BestPathChange
    from repro.dataplane.reconcile import CommitReport

__all__ = ["FederatedExchange", "InterIXPLink", "TransitMember"]


class TransitMember(NamedTuple):
    """One AS present at two or more member exchanges.

    ``presence`` maps exchange name to the AS's local participant name
    there — federation joins on ASNs, so the same transit may appear
    under different names at each IXP.
    """

    asn: int
    presence: Mapping[str, str]

    @property
    def exchanges(self) -> Tuple[str, ...]:
        return tuple(sorted(self.presence))

    def name_at(self, exchange: str) -> str:
        """The transit's participant name at ``exchange`` (KeyError if absent)."""
        return self.presence[exchange]


class InterIXPLink:
    """A directed relay of one transit AS's routes between two exchanges.

    The link subscribes to the transit's best-path changes at the source
    exchange and marks itself dirty; :meth:`sync` then recomputes the
    relay set and applies only the announce/withdraw *diff* at the
    destination.  :meth:`fail` models the transit's inter-IXP backhaul
    going down: every relayed route is withdrawn at once, and the
    destination exchange re-converges on whatever other links provide.
    """

    def __init__(
        self,
        federation: "FederatedExchange",
        transit_asn: int,
        src: str,
        dst: str,
        export_to: Optional[FrozenSet[str]] = None,
    ) -> None:
        if src == dst:
            raise ValueError(f"inter-IXP link endpoints must differ: {src!r}")
        self._federation = federation
        self.transit_asn = transit_asn
        self.src = src
        self.dst = dst
        self.export_to = export_to
        src_controller = federation.exchange(src)
        dst_controller = federation.exchange(dst)
        src_spec = src_controller.config.participant_with_asn(transit_asn)
        dst_spec = dst_controller.config.participant_with_asn(transit_asn)
        if src_spec is None or dst_spec is None:
            missing = src if src_spec is None else dst
            raise ValueError(
                f"AS {transit_asn} is not a participant at exchange {missing!r}"
            )
        if not dst_spec.ports:
            raise ValueError(
                f"AS {transit_asn} has no physical port at {dst!r}: relayed "
                "routes would carry a next-hop off the peering LAN"
            )
        self.src_name = src_spec.name
        self.dst_name = dst_spec.name
        #: the relayed next-hop — the transit's first interface on the
        #: destination peering LAN
        self.next_hop: IPv4Address = dst_spec.ports[0].address
        self.up = True
        #: prefix -> the source-exchange route currently backing the relay
        self._relayed: Dict[IPv4Prefix, Route] = {}
        self._dirty = True
        self._m_announce = federation._m_relays.bind(link=self.name, kind="announce")
        self._m_withdraw = federation._m_relays.bind(link=self.name, kind="withdraw")
        src_controller.route_server.subscribe_participant(
            self.src_name, self._on_changes
        )

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}:AS{self.transit_asn}"

    def _on_changes(self, changes: List["BestPathChange"]) -> None:
        self._dirty = True

    # -- relay computation ---------------------------------------------------

    def _desired(self) -> Dict[IPv4Prefix, Route]:
        """What the transit would redistribute from src into dst right now."""
        src_server = self._federation.exchange(self.src).route_server
        dst_server = self._federation.exchange(self.dst).route_server
        view = src_server.loc_rib(self.src_name)
        desired: Dict[IPv4Prefix, Route] = {}
        for prefix, route in view.items():
            if route.attributes.as_path.contains_loop(self.transit_asn):
                continue
            native = dst_server.route_from(self.dst_name, prefix)
            if native is not None and prefix not in self._relayed:
                # The transit already announces this prefix at dst on its
                # own; the relay must not clobber the native route.
                continue
            desired[prefix] = route
        return desired

    def sync(self) -> int:
        """Apply the relay diff at the destination; returns updates applied."""
        if not self.up or not self._dirty:
            return 0
        desired = self._desired()
        routing = self._federation.exchange(self.dst).routing
        updates = 0
        for prefix in sorted(set(self._relayed) - set(desired)):
            routing.withdraw(self.dst_name, prefix)
            del self._relayed[prefix]
            self._m_withdraw.inc()
            updates += 1
        for prefix in sorted(desired):
            backing = desired[prefix]
            if self._relayed.get(prefix) == backing:
                continue
            attributes = backing.attributes.replace(
                as_path=backing.attributes.as_path.prepend(self.transit_asn),
                next_hop=self.next_hop,
            )
            routing.announce(
                self.dst_name, prefix, attributes, export_to=self.export_to
            )
            self._relayed[prefix] = backing
            self._m_announce.inc()
            updates += 1
        self._dirty = False
        return updates

    # -- failure model -------------------------------------------------------

    def fail(self) -> int:
        """Take the link down, withdrawing every relayed route at once."""
        withdrawn = 0
        if self.up:
            routing = self._federation.exchange(self.dst).routing
            for prefix in sorted(self._relayed):
                routing.withdraw(self.dst_name, prefix)
                self._m_withdraw.inc()
                withdrawn += 1
            self._relayed.clear()
            self.up = False
            self._dirty = False
            self._federation._links_changed()
        return withdrawn

    def restore(self) -> None:
        """Bring the link back; the next :meth:`sync` re-relays."""
        if not self.up:
            self.up = True
            self._dirty = True
            self._federation._links_changed()

    # -- queries the federation verifier makes -------------------------------

    def relayed_prefixes(self) -> FrozenSet[IPv4Prefix]:
        return frozenset(self._relayed)

    def is_relayed(self, prefix: "IPv4Prefix | str") -> bool:
        return IPv4Prefix(prefix) in self._relayed

    def backing_route(self, prefix: "IPv4Prefix | str") -> Optional[Route]:
        """The source-exchange route a relayed prefix currently mirrors."""
        return self._relayed.get(IPv4Prefix(prefix))

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"InterIXPLink({self.name}, {state}, relayed={len(self._relayed)})"


class FederatedExchange:
    """N member SDX controllers plus the inter-IXP links joining them.

    Build one by adding exchanges (each with its own
    :class:`~repro.ixp.topology.IXPConfig`) and linking transit ASNs::

        federation = FederatedExchange()
        federation.add_exchange("west", west_config)
        federation.add_exchange("east", east_config)
        federation.link(65100, "west", "east")
        federation.link(65100, "east", "west")
        federation.sync()

    ``sync`` runs the relays to a fixpoint; member controllers stay
    fully independent SDXes (compile, verify, and bill per exchange).
    Federation-level telemetry (``sdx_federation_*``) aggregates in
    :attr:`telemetry`, separate from each member's registry.
    """

    def __init__(self) -> None:
        self._controllers: Dict[str, SDXController] = {}
        self._links: List[InterIXPLink] = []
        self.telemetry = MetricsRegistry()
        self._m_relays = self.telemetry.counter(
            "sdx_federation_relay_updates_total",
            "Announcements and withdrawals relayed across inter-IXP links",
            labels=("link", "kind"),
        )
        self._m_links_up = self.telemetry.gauge(
            "sdx_federation_links_up", "Inter-IXP links currently up"
        )
        self._m_exchanges = self.telemetry.gauge(
            "sdx_federation_exchanges", "Member exchanges in the federation"
        )
        self._m_sync_rounds = self.telemetry.counter(
            "sdx_federation_sync_rounds_total",
            "Relay fixpoint rounds run by sync()",
        )
        self._m_relayed = self.telemetry.gauge(
            "sdx_federation_relayed_prefixes",
            "Prefixes currently relayed, per link",
            labels=("link",),
        )

    # -- membership ----------------------------------------------------------

    def add_exchange(
        self,
        name: str,
        config: "IXPConfig | SDXController",
        **controller_kwargs,
    ) -> SDXController:
        """Register a member exchange.

        ``config`` is either an :class:`IXPConfig` (a controller is
        built from it; keyword arguments — e.g. ``sdx=SDXConfig(...)``
        — forward to :class:`SDXController`) or an already-constructed
        controller.  The exchange name is stamped onto the config so
        violations and telemetry can name the fabric.
        """
        if name in self._controllers:
            raise ValueError(f"duplicate exchange {name!r}")
        if isinstance(config, SDXController):
            if controller_kwargs:
                raise TypeError(
                    "controller kwargs are only valid when passing an IXPConfig"
                )
            controller = config
        else:
            controller = SDXController(config, **controller_kwargs)
        if controller.config.name is None:
            controller.config.name = name
        self._controllers[name] = controller
        self._m_exchanges.set(len(self._controllers))
        return controller

    def exchange(self, name: str) -> SDXController:
        try:
            return self._controllers[name]
        except KeyError:
            raise KeyError(f"unknown exchange {name!r}") from None

    def exchange_names(self) -> Tuple[str, ...]:
        return tuple(self._controllers)

    def controllers(self) -> Tuple[Tuple[str, SDXController], ...]:
        return tuple(self._controllers.items())

    def transit_members(self) -> Tuple[TransitMember, ...]:
        """Every AS registered at two or more member exchanges."""
        by_asn: Dict[int, Dict[str, str]] = {}
        for ex_name, controller in self._controllers.items():
            for spec in controller.config.participants():
                by_asn.setdefault(spec.asn, {})[ex_name] = spec.name
        return tuple(
            TransitMember(asn, presence)
            for asn, presence in sorted(by_asn.items())
            if len(presence) >= 2
        )

    # -- links ---------------------------------------------------------------

    def link(
        self,
        transit_asn: int,
        src: str,
        dst: str,
        export_to: Optional["FrozenSet[str] | Tuple[str, ...] | List[str]"] = None,
    ) -> InterIXPLink:
        """Create a directed relay ``src -> dst`` operated by ``transit_asn``."""
        link = InterIXPLink(
            self,
            transit_asn,
            src,
            dst,
            export_to=None if export_to is None else frozenset(export_to),
        )
        self._links.append(link)
        self._links_changed()
        return link

    def links(self) -> Tuple[InterIXPLink, ...]:
        return tuple(self._links)

    def relay_for(
        self, exchange: str, participant: str, prefix: "IPv4Prefix | str"
    ) -> Optional[InterIXPLink]:
        """The link whose relay put ``participant``'s route for ``prefix``
        into ``exchange``'s route server, if any.

        This is the provenance query behind policy stitching: traffic
        delivered to a transit at ``exchange`` for a relayed prefix
        leaves the fabric and re-enters at the link's source exchange.
        """
        prefix = IPv4Prefix(prefix)
        for link in self._links:
            if (
                link.up
                and link.dst == exchange
                and link.dst_name == participant
                and link.is_relayed(prefix)
            ):
                return link
        return None

    def _links_changed(self) -> None:
        self._m_links_up.set(sum(1 for link in self._links if link.up))

    # -- propagation ---------------------------------------------------------

    def sync(self, max_rounds: int = 16) -> int:
        """Run every relay to a fixpoint; returns total updates applied.

        A relay into one exchange can change a transit's best path
        there and thereby feed another relay out of it, so rounds
        repeat until quiescent.  AS-path loop prevention bounds the
        rounds; exceeding ``max_rounds`` means a relay is flapping and
        raises rather than looping forever.
        """
        total = 0
        for _ in range(max_rounds):
            self._m_sync_rounds.inc()
            round_updates = sum(link.sync() for link in self._links)
            total += round_updates
            if round_updates == 0:
                break
        else:
            raise RuntimeError(
                f"federation relays did not converge in {max_rounds} rounds"
            )
        for link in self._links:
            self._m_relayed.set(len(link.relayed_prefixes()), link=link.name)
        return total

    def compile_all(self) -> Dict[str, "CommitReport"]:
        """Compile every member exchange; per-exchange commit reports."""
        return {name: ctl.compile() for name, ctl in self._controllers.items()}

    def prefixes(self) -> FrozenSet[IPv4Prefix]:
        """Every prefix known at any member exchange."""
        out: Set[IPv4Prefix] = set()
        for controller in self._controllers.values():
            out.update(controller.route_server.all_prefixes())
        return frozenset(out)

    def __len__(self) -> int:
        return len(self._controllers)

    def __repr__(self) -> str:
        return (
            f"FederatedExchange(exchanges={list(self._controllers)}, "
            f"links={len(self._links)})"
        )
