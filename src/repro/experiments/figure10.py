"""Figure 10: CDF of the time to process a single BGP update.

The fast path's per-update cost is what keeps the SDX responsive under
real update churn.  The paper reports sub-100 ms handling for most
updates; our measurements are the same code path (new VNH, restricted
recompilation, rule install, re-advertisement) on commodity hardware,
and the CDF's *shape* — tight, with a modest tail — is the comparison
target.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.experiments.common import build_scenario, print_table
from repro.experiments.figure9 import _worst_case_burst

__all__ = ["Figure10Result", "run"]

DEFAULT_PARTICIPANTS = (100, 200, 300)
PERCENTILES = (10, 25, 50, 75, 90, 99)


class Figure10Result(NamedTuple):
    """Per-update fast-path latency samples per participant count."""

    #: {participants: sorted per-update processing times in seconds}
    samples: Dict[int, List[float]]

    def percentile(self, participants: int, percent: float) -> float:
        """The ``percent``-th percentile of the sorted samples, seconds."""
        data = self.samples[participants]
        if not data:
            return 0.0
        index = min(len(data) - 1, int(len(data) * percent / 100))
        return data[index]

    def print(self) -> None:
        """Render the CDF percentiles (milliseconds) as a table."""
        rows = []
        for participants in sorted(self.samples):
            row = [participants] + [
                f"{1000 * self.percentile(participants, percent):.1f}"
                for percent in PERCENTILES
            ]
            rows.append(tuple(row))
        print_table(
            "Figure 10 — single-update processing time CDF (milliseconds)",
            ["participants"] + [f"p{percent}" for percent in PERCENTILES],
            rows,
        )


def run(
    participants_sweep: Sequence[int] = DEFAULT_PARTICIPANTS,
    updates_per_setting: int = 50,
    prefixes_per_participant: int = 10,
    seed: int = 8,
) -> Figure10Result:
    """Measure per-update fast-path processing times."""
    samples: Dict[int, List[float]] = {}
    for participants in participants_sweep:
        scenario = build_scenario(
            participants=participants,
            prefixes=max(participants * prefixes_per_participant, 1000),
            seed=seed,
        )
        controller = scenario.controller()
        result = controller.compile()
        affected = frozenset(
            prefix
            for group in result.fec_table.affected_groups
            for prefix in group.prefixes
        )
        rng = random.Random(seed + participants)
        burst = _worst_case_burst(
            scenario, updates_per_setting, rng, prefix_pool=affected or None
        )
        for update in burst:
            controller.routing.process_update(update)
        # The fast-path latency histogram retains raw samples in a ring
        # buffer (sized well above any burst here), so the CDF is exact.
        histogram = controller.telemetry.get("sdx_fastpath_seconds")
        samples[participants] = sorted(histogram.samples())
    return Figure10Result(samples)
