"""Shared scaffolding for the evaluation experiments (Section 6).

Every figure/table module builds on :func:`build_scenario` (a loaded
synthetic exchange) and the small report helpers here, so that the
benchmark harness, the CLI (``python -m repro.experiments``), and the
integration tests all exercise identical code paths.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.bgp.route_server import RouteServer
from repro.core.compiler import CompilationOptions, SDXCompiler
from repro.core.controller import SDXController
from repro.core.participant import SDXPolicySet
from repro.netutils.ip import IPv4Prefix
from repro.policy.language import fwd, match, parallel
from repro.workloads.policy_gen import PolicyWorkload, generate_policies
from repro.workloads.topology_gen import SyntheticIXP, generate_ixp

__all__ = [
    "Scenario",
    "build_scenario",
    "format_table",
    "print_table",
    "scaling_policies",
]

_APP_PORTS = (80, 443, 8080, 1935)


class Scenario(NamedTuple):
    """A loaded exchange ready for compilation experiments."""

    ixp: SyntheticIXP
    route_server: RouteServer
    workload: PolicyWorkload

    def compiler(
        self,
        options: Optional[CompilationOptions] = None,
        telemetry=None,
    ) -> SDXCompiler:
        """A compiler over this scenario (headless defaults).

        Pass a :class:`~repro.telemetry.MetricsRegistry` to time the
        compile through the telemetry layer (what the Figure 8 driver
        does) instead of leaving it uninstrumented.
        """
        if options is None:
            options = CompilationOptions(build_advertisements=False)
        return SDXCompiler(
            self.ixp.config, self.route_server, options, telemetry=telemetry
        )

    def controller(self, **kwargs) -> SDXController:
        """A full controller with this scenario's routes already loaded.

        The workload's policies are installed inside one
        :meth:`~repro.core.controller.SDXController.deferred_recompilation`
        batch, so construction costs exactly one compilation no matter
        how many participants carry policies.
        """
        controller = SDXController(self.ixp.config, **kwargs)
        controller.route_server.load(self.ixp.updates)
        with controller.deferred_recompilation():
            for name, policy_set in self.workload.policies.items():
                controller.policy.set_policies(name, policy_set)
        return controller


def build_scenario(
    participants: int,
    prefixes: int,
    seed: int = 0,
    policy_seed: int = 1,
    with_policies: bool = True,
) -> Scenario:
    """Generate and load a synthetic exchange with the §6.1 policy mix."""
    ixp = generate_ixp(participants=participants, total_prefixes=prefixes, seed=seed)
    route_server = RouteServer()
    for name in ixp.participant_names:
        route_server.add_peer(name)
    route_server.load(ixp.updates)
    workload = (
        generate_policies(ixp, seed=policy_seed)
        if with_policies
        else PolicyWorkload({}, {"eyeball": [], "transit": [], "content": []}, 0)
    )
    return Scenario(ixp, route_server, workload)


def scaling_policies(
    ixp: SyntheticIXP,
    policy_prefixes: int,
    seed: int = 11,
    chunk_size: int = 5,
    senders: int = 10,
) -> Dict[str, SDXPolicySet]:
    """Policies sized to hit a target number of prefix groups.

    The Figure 7/8 experiments are parameterized by *prefix groups*, not
    raw prefixes; this helper applies destination-specific policies to
    ``policy_prefixes`` prefixes in disjoint chunks of ``chunk_size``,
    which the FEC computation then turns into roughly
    ``policy_prefixes / chunk_size`` groups.  Each chunk belongs to one
    announcing target and is claimed by a round-robin sender.
    """
    rng = random.Random(seed)
    names = list(ixp.participant_names)
    # Targets: the heaviest announcers (their prefixes form the pool).
    targets = sorted(names, key=lambda name: -len(ixp.announced.get(name, ())))
    pool: List[Tuple[str, IPv4Prefix]] = []
    for target in targets:
        for prefix in ixp.announced.get(target, ()):
            pool.append((target, prefix))
            if len(pool) >= policy_prefixes:
                break
        if len(pool) >= policy_prefixes:
            break

    sender_pool = [name for name in names if name not in set(targets[:3])][:senders]
    if not sender_pool:
        sender_pool = names[:senders]
    clauses: Dict[str, List] = {name: [] for name in sender_pool}
    index = 0
    while index < len(pool):
        target = pool[index][0]
        chunk: List[IPv4Prefix] = []
        while index < len(pool) and pool[index][0] == target and len(chunk) < chunk_size:
            chunk.append(pool[index][1])
            index += 1
        sender = rng.choice([s for s in sender_pool if s != target] or sender_pool)
        port = _APP_PORTS[rng.randrange(len(_APP_PORTS))]
        clauses[sender].append(match(dstip=set(chunk), dstport=port) >> fwd(target))

    policies: Dict[str, SDXPolicySet] = {}
    for sender, parts in clauses.items():
        if parts:
            policies[sender] = SDXPolicySet(outbound=parallel(*parts))
    return policies


# -- plain-text reporting -----------------------------------------------------


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table (the benches print these)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))
