"""Shared sweep behind Figures 7 and 8 (rules and compile time vs groups).

The paper parameterizes both figures by the number of prefix groups,
"selected based on our analysis of the prefix groups that might appear
in a typical IXP" (Figure 6).  We drive the group count through
:func:`~repro.experiments.common.scaling_policies` — destination-
specific policies over a controlled number of prefixes — then run the
full compiler and record, per sweep point:

* the resulting number of prefix groups (x-axis of both figures),
* the emitted flow-rule count (Figure 7's y-axis),
* the wall-clock compilation time (Figure 8's y-axis).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.core.compiler import CompilationOptions
from repro.experiments.common import build_scenario, print_table, scaling_policies
from repro.telemetry import MetricsRegistry

__all__ = ["ScalingPoint", "ScalingResult", "run_sweep"]

DEFAULT_PARTICIPANTS = (100, 200, 300)
DEFAULT_POLICY_PREFIXES = (250, 500, 1000, 2000, 4000)


class ScalingPoint(NamedTuple):
    """One sweep point: measured groups, rules, and compile cost."""

    participants: int
    policy_prefixes: int
    prefix_groups: int
    flow_rules: int
    compile_seconds: float
    vnh_seconds: float


class ScalingResult(NamedTuple):
    """All sweep points; filter per participant count with ``series``."""

    points: List[ScalingPoint]

    def series(self, participants: int) -> List[ScalingPoint]:
        return [p for p in self.points if p.participants == participants]

    def print_figure7(self) -> None:
        """Render the Figure 7 view (rules vs groups)."""
        print_table(
            "Figure 7 — flow rules vs prefix groups (linear growth expected)",
            ["participants", "prefix groups", "flow rules", "rules/group"],
            [
                (
                    p.participants,
                    p.prefix_groups,
                    p.flow_rules,
                    f"{p.flow_rules / max(p.prefix_groups, 1):.1f}",
                )
                for p in self.points
            ],
        )

    def print_figure8(self) -> None:
        """Render the Figure 8 view (compile time vs groups)."""
        print_table(
            "Figure 8 — compilation time vs prefix groups (superlinear expected)",
            ["participants", "prefix groups", "compile (s)", "VNH compute (s)"],
            [
                (
                    p.participants,
                    p.prefix_groups,
                    f"{p.compile_seconds:.2f}",
                    f"{p.vnh_seconds:.3f}",
                )
                for p in self.points
            ],
        )


def run_sweep(
    participants_sweep: Sequence[int] = DEFAULT_PARTICIPANTS,
    policy_prefix_sweep: Sequence[int] = DEFAULT_POLICY_PREFIXES,
    prefixes_per_participant: int = 30,
    seed: int = 5,
) -> ScalingResult:
    """Run the compile sweep behind Figures 7 and 8."""
    points: List[ScalingPoint] = []
    for participants in participants_sweep:
        scenario = build_scenario(
            participants=participants,
            prefixes=max(participants * prefixes_per_participant, 1000),
            seed=seed,
            with_policies=False,
        )
        for policy_prefixes in policy_prefix_sweep:
            policies = scaling_policies(
                scenario.ixp, policy_prefixes=policy_prefixes, seed=seed + 1
            )
            # One registry per sweep point: the point's numbers are the
            # telemetry totals, so the driver and a production scrape
            # report identical figures.
            telemetry = MetricsRegistry()
            compiler = scenario.compiler(
                CompilationOptions(build_advertisements=False), telemetry=telemetry
            )
            compiler.compile(policies)
            points.append(
                ScalingPoint(
                    participants=participants,
                    policy_prefixes=policy_prefixes,
                    prefix_groups=int(telemetry.get("sdx_compile_fec_groups").value()),
                    flow_rules=int(telemetry.get("sdx_compile_rules").value()),
                    compile_seconds=telemetry.get("sdx_compile_seconds").total(),
                    vnh_seconds=telemetry.get("sdx_compile_phase_seconds").total(
                        phase="fec"
                    ),
                )
            )
    return ScalingResult(points)
