"""Ablations of the Section 4.3.1 optimizations and the MDS algorithm.

Not a paper figure, but DESIGN.md commits to quantifying the design
choices the paper argues for qualitatively:

* ``prune_targets`` — compose each forwarding action only with its
  target's second-stage block ("most policies concern a subset of the
  participants");
* ``disjoint_concat`` — concatenate isolated per-participant blocks
  instead of running full parallel composition ("most SDX policies are
  disjoint");
* ``memoize`` — reuse compiled sub-policies ("many policy idioms appear
  more than once");
* signature-based MDS vs the naive pairwise-refinement algorithm.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.core.compiler import CompilationOptions
from repro.core.fec import (
    minimum_disjoint_subsets,
    minimum_disjoint_subsets_naive,
)
from repro.experiments.common import build_scenario, print_table, scaling_policies

__all__ = ["AblationResult", "run_compiler_ablation", "run_mds_ablation"]


class AblationResult(NamedTuple):
    """Per-configuration compile time and rule count."""

    rows: List[Tuple[str, float, int]]

    def print(self, title: str) -> None:
        """Render the ablation rows as an aligned table."""
        print_table(
            title,
            ["configuration", "compile (s)", "flow rules"],
            [(name, f"{seconds:.2f}", rules) for name, seconds, rules in self.rows],
        )


_CONFIGS: Dict[str, CompilationOptions] = {
    "all optimizations": CompilationOptions(build_advertisements=False),
    "no target pruning": CompilationOptions(
        prune_targets=False, build_advertisements=False
    ),
    "no disjoint concat": CompilationOptions(
        disjoint_concat=False, build_advertisements=False
    ),
    "no memoization": CompilationOptions(memoize=False, build_advertisements=False),
}


def run_compiler_ablation(
    participants: int = 60,
    policy_prefixes: int = 400,
    seed: int = 12,
) -> AblationResult:
    """Compile the same workload under each optimization configuration.

    Disabled optimizations must not change the *result* (the emitted
    rule behaviour), only the cost — the integration tests assert
    equivalence on small instances.
    """
    scenario = build_scenario(
        participants=participants,
        prefixes=max(participants * 20, 500),
        seed=seed,
        with_policies=False,
    )
    policies = scaling_policies(scenario.ixp, policy_prefixes, seed=seed + 1)
    rows: List[Tuple[str, float, int]] = []
    for name, options in _CONFIGS.items():
        compiler = scenario.compiler(options)
        started = time.perf_counter()
        result = compiler.compile(policies)
        rows.append((name, time.perf_counter() - started, result.stats.rules))
    return AblationResult(rows)


class MDSAblationResult(NamedTuple):
    """Signature vs naive MDS timings per input-family size."""

    rows: List[Tuple[int, float, float, int]]

    def print(self) -> None:
        """Render the MDS comparison as an aligned table."""
        print_table(
            "MDS ablation — signature algorithm vs naive pairwise refinement",
            ["input sets", "signature (s)", "naive (s)", "groups"],
            [
                (sets, f"{fast:.4f}", f"{slow:.4f}", groups)
                for sets, fast, slow, groups in self.rows
            ],
        )


def run_mds_ablation(
    set_counts: Sequence[int] = (5, 10, 15, 20),
    universe: int = 400,
    seed: int = 13,
) -> MDSAblationResult:
    """Time both MDS implementations on random overlapping set families.

    The naive algorithm is quadratic in the number of *output* groups
    per refinement round, so the instances here are kept small; the
    signature algorithm handles the paper-scale inputs in
    :mod:`repro.experiments.figure6` directly.
    """
    rng = random.Random(seed)
    rows: List[Tuple[int, float, float, int]] = []
    for count in set_counts:
        sets = [
            frozenset(rng.sample(range(universe), rng.randint(20, universe // 4)))
            for _ in range(count)
        ]
        started = time.perf_counter()
        fast_groups = minimum_disjoint_subsets(sets)
        fast_time = time.perf_counter() - started
        started = time.perf_counter()
        slow_groups = minimum_disjoint_subsets_naive(sets)
        slow_time = time.perf_counter() - started
        if {frozenset(g) for g in fast_groups} != {frozenset(g) for g in slow_groups}:
            raise AssertionError("MDS implementations disagree")
        rows.append((count, fast_time, slow_time, len(fast_groups)))
    return MDSAblationResult(rows)
