"""Figure 5: the two "live" deployment experiments, emulated.

(a) **Application-specific peering**: a client ISP (AS C) reaches an
AWS-hosted prefix via transit ASes A and B.  At t≈565 s AS C installs a
policy steering port-80 traffic via AS B; at t≈1253 s AS B withdraws
its route, and the SDX pulls all traffic back to AS A (data plane in
sync with BGP).

(b) **Wide-area load balancing**: a remote AWS tenant anycasts a
service prefix through the SDX and, at t≈246 s, installs a policy
rewriting the destination of requests from one client prefix to a
second instance.

Both timelines run on the discrete-event clock with 1 Mbps UDP flows,
reproducing the paper's traffic-rate series (Figure 5a/5b).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.experiments.common import print_table
from repro.ixp.deployment import EmulatedIXP
from repro.ixp.topology import IXPConfig
from repro.ixp.traffic import RateMeter, UDPFlow
from repro.policy.language import fwd, match, modify
from repro.sim.clock import Simulator

__all__ = ["Figure5aResult", "Figure5bResult", "run_5a", "run_5b"]


class Figure5aResult(NamedTuple):
    """Figure 5a traffic series plus the two event timestamps."""

    series: Dict[str, List[Tuple[float, float]]]
    policy_time: float
    withdrawal_time: float

    def rates_at(self, time: float) -> Dict[str, float]:
        """Measured Mbps of each series at (or just before) ``time``."""
        out = {}
        for name, points in self.series.items():
            rate = 0.0
            for at, mbps in points:
                if at > time:
                    break
                rate = mbps
            out[name] = rate
        return out

    def print(self) -> None:
        """Render the phase checkpoints as a table."""
        samples = [
            self.policy_time - 60,
            self.policy_time + 60,
            self.withdrawal_time + 60,
        ]
        print_table(
            "Figure 5a — application-specific peering (Mbps by upstream)",
            ["t (s)", "via AS-A", "via AS-B", "phase"],
            [
                (
                    int(at),
                    f"{self.rates_at(at)['via-A']:.1f}",
                    f"{self.rates_at(at)['via-B']:.1f}",
                    phase,
                )
                for at, phase in zip(
                    samples, ["before policy", "policy active", "after withdrawal"]
                )
            ],
        )


def _fig5a_config() -> IXPConfig:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    config.add_participant("C", 65003, [("C1", "172.0.0.21", "08:00:27:00:00:21")])
    return config


def run_5a(
    duration: float = 1800.0,
    policy_time: float = 565.0,
    withdrawal_time: float = 1253.0,
    flow_mbps: float = 1.0,
) -> Figure5aResult:
    """Replay the application-specific peering timeline."""
    ixp = EmulatedIXP(_fig5a_config())
    controller = ixp.controller
    aws_prefix = "54.198.0.0/16"
    # Both transit ASes learn the AWS prefix upstream; A's path is shorter.
    controller.routing.announce(
        "A", aws_prefix, RouteAttributes(as_path=[65001, 14618], next_hop="172.0.0.1")
    )
    controller.routing.announce(
        "B",
        aws_prefix,
        RouteAttributes(as_path=[65002, 7224, 14618], next_hop="172.0.0.11"),
    )
    ixp.add_host("client", "C", "204.57.0.67")
    controller.compile()

    simulator = Simulator()
    meter = RateMeter(simulator)
    meter.watch_upstream("via-A", ixp, "A")
    meter.watch_upstream("via-B", ixp, "B")
    flows = [
        UDPFlow(ixp, "client", flow_mbps, dstip="54.198.1.1", dstport=80, srcport=5001, proto=17),
        UDPFlow(ixp, "client", flow_mbps, dstip="54.198.1.1", dstport=4321, srcport=5002, proto=17),
        UDPFlow(ixp, "client", flow_mbps, dstip="54.198.1.2", dstport=8080, srcport=5003, proto=17),
    ]
    for flow in flows:
        flow.start(simulator, until=duration)
    meter.start(until=duration)

    handle = controller.register_participant("C")
    simulator.schedule(
        policy_time,
        lambda: handle.set_policies(outbound=match(dstport=80) >> fwd("B")),
    )
    simulator.schedule(
        withdrawal_time, lambda: controller.routing.withdraw("B", aws_prefix)
    )
    simulator.run_until(duration)
    return Figure5aResult(dict(meter.series), policy_time, withdrawal_time)


class Figure5bResult(NamedTuple):
    """Figure 5b traffic series plus the policy timestamp."""

    series: Dict[str, List[Tuple[float, float]]]
    policy_time: float

    def rates_at(self, time: float) -> Dict[str, float]:
        """Measured Mbps of each series at (or just before) ``time``."""
        out = {}
        for name, points in self.series.items():
            rate = 0.0
            for at, mbps in points:
                if at > time:
                    break
                rate = mbps
            out[name] = rate
        return out

    def print(self) -> None:
        """Render the before/after checkpoints as a table."""
        before = self.policy_time - 60
        after = self.policy_time + 60
        print_table(
            "Figure 5b — wide-area load balancing (Mbps by AWS instance)",
            ["t (s)", "instance #1", "instance #2", "phase"],
            [
                (
                    int(before),
                    f"{self.rates_at(before)['instance-1']:.1f}",
                    f"{self.rates_at(before)['instance-2']:.1f}",
                    "before policy",
                ),
                (
                    int(after),
                    f"{self.rates_at(after)['instance-1']:.1f}",
                    f"{self.rates_at(after)['instance-2']:.1f}",
                    "load balanced",
                ),
            ],
        )


def _fig5b_config() -> IXPConfig:
    config = IXPConfig(vnh_pool="172.16.0.0/16")
    config.add_participant("A", 65001, [("A1", "172.0.0.1", "08:00:27:00:00:01")])
    config.add_participant("B", 65002, [("B1", "172.0.0.11", "08:00:27:00:00:11")])
    # The AWS tenant participates remotely: virtual switch, no port.
    config.add_participant("AWS", 64496, [])
    return config


def run_5b(
    duration: float = 600.0,
    policy_time: float = 246.0,
    flow_mbps: float = 1.0,
) -> Figure5bResult:
    """Replay the wide-area load-balancing timeline.

    AS A hosts the clients; AS B provides transit toward both AWS
    instances (emulated as hosts in B's network).  The tenant announces
    the anycast service prefix from the SDX and later installs the
    rewrite policy for one client prefix.
    """
    ixp = EmulatedIXP(_fig5b_config())
    controller = ixp.controller
    anycast = "74.125.1.0/24"
    instance1_ip = "54.198.0.10"
    instance2_ip = "54.198.128.20"

    # B carries traffic to the real instance addresses.
    controller.routing.announce(
        "B",
        "54.198.0.0/16",
        RouteAttributes(as_path=[65002, 14618], next_hop="172.0.0.11"),
    )
    ixp.add_host("client-1", "A", "204.57.0.67")
    ixp.add_host("client-2", "A", "198.51.100.9")
    ixp.add_host("instance-1", "B", instance1_ip, originate="54.198.0.0/17")
    ixp.add_host("instance-2", "B", instance2_ip, originate="54.198.128.0/17")

    tenant = controller.register_participant("AWS")
    tenant.announce(anycast)
    # Until the LB policy exists, the tenant forwards all anycast
    # traffic to instance #1 through AS B.
    tenant.set_policies(
        inbound=match(dstip=anycast) >> modify(dstip=instance1_ip) >> fwd("B1"),
        recompile=False,
    )
    controller.compile()

    simulator = Simulator()
    meter = RateMeter(simulator)
    meter.watch_host("instance-1", ixp, "instance-1")
    meter.watch_host("instance-2", ixp, "instance-2")
    flows = [
        UDPFlow(ixp, "client-1", flow_mbps, dstip="74.125.1.1", dstport=80, srcport=6001, proto=17),
        UDPFlow(ixp, "client-2", flow_mbps, dstip="74.125.1.1", dstport=80, srcport=6002, proto=17),
    ]
    for flow in flows:
        flow.start(simulator, until=duration)
    meter.start(until=duration)

    def install_lb() -> None:
        tenant.set_policies(
            inbound=(
                match(dstip=anycast, srcip="204.57.0.0/16")
                >> modify(dstip=instance2_ip)
                >> fwd("B1")
            )
            + (
                match(dstip=anycast, srcip="198.51.100.0/24")
                >> modify(dstip=instance1_ip)
                >> fwd("B1")
            )
        )

    simulator.schedule(policy_time, install_lb)
    simulator.run_until(duration)
    return Figure5bResult(dict(meter.series), policy_time)
