"""CLI for the evaluation experiments.

Usage::

    python -m repro.experiments all            # everything (several minutes)
    python -m repro.experiments table1
    python -m repro.experiments fig5a fig5b
    python -m repro.experiments fig6 fig7 fig8 fig9 fig10 ablation
    python -m repro.experiments fig7 --quick   # scaled-down sweeps
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    ablation,
    baseline,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
)


def _run_table1(quick: bool) -> None:
    table1.run(scale=0.2 if quick else 1.0).print()


def _run_fig5a(quick: bool) -> None:
    if quick:
        figure5.run_5a(duration=300, policy_time=100, withdrawal_time=200).print()
    else:
        figure5.run_5a().print()


def _run_fig5b(quick: bool) -> None:
    if quick:
        figure5.run_5b(duration=200, policy_time=100).print()
    else:
        figure5.run_5b().print()


def _run_fig6(quick: bool) -> None:
    if quick:
        figure6.run(
            participants_sweep=(50, 100),
            prefix_sweep=(500, 1000, 2000),
            total_prefixes=4000,
        ).print()
    else:
        figure6.run().print()


def _run_fig7(quick: bool) -> None:
    result = (
        figure7.run(participants_sweep=(50, 100), policy_prefix_sweep=(100, 250, 500))
        if quick
        else figure7.run()
    )
    result.print_figure7()


def _run_fig8(quick: bool) -> None:
    result = (
        figure8.run(participants_sweep=(50, 100), policy_prefix_sweep=(100, 250, 500))
        if quick
        else figure8.run()
    )
    result.print_figure8()


def _run_fig9(quick: bool) -> None:
    if quick:
        figure9.run(participants_sweep=(50, 100), burst_sizes=(5, 10, 20)).print()
    else:
        figure9.run().print()


def _run_fig10(quick: bool) -> None:
    if quick:
        figure10.run(participants_sweep=(50, 100), updates_per_setting=20).print()
    else:
        figure10.run().print()


def _run_baseline(quick: bool) -> None:
    if quick:
        baseline.run(sweep=((20, 400), (30, 800))).print()
    else:
        baseline.run().print()


def _run_ablation(quick: bool) -> None:
    if quick:
        ablation.run_compiler_ablation(participants=30, policy_prefixes=150).print(
            "Compiler optimization ablation"
        )
        ablation.run_mds_ablation(set_counts=(10, 20)).print()
    else:
        ablation.run_compiler_ablation().print("Compiler optimization ablation")
        ablation.run_mds_ablation().print()


RUNNERS: Dict[str, Callable[[bool], None]] = {
    "baseline": _run_baseline,
    "table1": _run_table1,
    "fig5a": _run_fig5a,
    "fig5b": _run_fig5b,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "ablation": _run_ablation,
}


def main(argv=None) -> int:
    """Parse experiment names and run each selected artifact."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(RUNNERS) + ["all"],
        help="which experiments to run",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down sweeps (CI-friendly)"
    )
    args = parser.parse_args(argv)
    names = sorted(RUNNERS) if "all" in args.experiments else args.experiments
    for name in names:
        RUNNERS[name](args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
