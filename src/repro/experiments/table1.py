"""Table 1: IXP datasets — peers, prefixes, updates, % prefixes updated.

The paper tabulates one week of RIPE RIS updates at the three largest
IXPs.  We cannot redistribute RIS data, so this experiment generates a
synthetic trace per exchange with the same *relative* shape (peer and
prefix counts scaled down ~1:20, update volume scaled to keep the
updates-per-prefix ratio) and reports the same four columns, next to
the paper's values.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.bgp.updates import trace_stats
from repro.experiments.common import print_table
from repro.workloads.topology_gen import generate_ixp
from repro.workloads.update_gen import generate_update_trace

__all__ = ["Table1Result", "run"]

#: Paper's Table 1 rows: (collector peers, prefixes, updates, % updated).
PAPER_ROWS: Dict[str, Tuple[int, int, int, float]] = {
    "AMS-IX": (116, 518_082, 11_161_624, 9.88),
    "DE-CIX": (92, 518_391, 30_934_525, 13.64),
    "LINX": (71, 503_392, 16_658_819, 12.67),
}

#: Scaled-down synthetic parameters per exchange: (peers, prefixes,
#: bursts, active fraction).  Peers ≈ collector peers / 2, prefixes
#: ≈ paper / 100, bursts sized to land the updated-prefix fraction.
SCALED_PARAMS: Dict[str, Tuple[int, int, int, float]] = {
    "AMS-IX": (58, 5180, 900, 0.0988),
    "DE-CIX": (46, 5183, 1400, 0.1364),
    "LINX": (36, 5033, 1100, 0.1267),
}


class Table1Result(NamedTuple):
    """One measured Table 1 row per exchange, plus the paper value."""

    rows: List[Tuple[str, int, int, int, float, float]]

    def print(self) -> None:
        """Render the table next to the paper's percentages."""
        print_table(
            "Table 1 — IXP update traces (synthetic, scaled ~1:100 in prefixes)",
            [
                "IXP",
                "peers",
                "prefixes",
                "updates",
                "% prefixes updated",
                "paper %",
            ],
            [
                (name, peers, prefixes, updates, f"{measured:.2f}", f"{paper:.2f}")
                for name, peers, prefixes, updates, measured, paper in self.rows
            ],
        )


def run(scale: float = 1.0, seed: int = 42) -> Table1Result:
    """Generate the three traces and compute their Table 1 rows.

    ``scale`` < 1 shrinks the burst counts proportionally (the
    benchmark harness uses a light setting).
    """
    rows: List[Tuple[str, int, int, int, float, float]] = []
    for name, (peers, prefixes, bursts, active_fraction) in SCALED_PARAMS.items():
        ixp = generate_ixp(
            participants=peers, total_prefixes=prefixes, seed=seed + hash(name) % 97
        )
        trace = generate_update_trace(
            ixp,
            bursts=max(10, int(bursts * scale)),
            seed=seed,
            active_fraction=active_fraction,
        )
        stats = trace_stats(trace.updates, ixp.all_prefixes())
        rows.append(
            (
                name,
                peers,
                prefixes,
                stats.updates,
                100.0 * stats.fraction_prefixes_updated,
                PAPER_ROWS[name][3],
            )
        )
    return Table1Result(rows)
