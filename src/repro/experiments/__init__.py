"""One runner per table/figure of the paper's evaluation (Section 6).

Modules: :mod:`table1`, :mod:`figure5`, :mod:`figure6`, :mod:`figure7`,
:mod:`figure8`, :mod:`figure9`, :mod:`figure10`, :mod:`ablation` —
each exposes ``run()`` (or ``run_5a``/``run_5b``) returning a result
object with a ``print()`` reporter.  ``python -m repro.experiments``
runs them from the command line; the ``benchmarks/`` tree wraps the
same runners in pytest-benchmark fixtures.
"""

from repro.experiments import (  # noqa: F401  (re-exported runner modules)
    ablation,
    baseline,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
)

__all__ = [
    "ablation",
    "baseline",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "table1",
]
