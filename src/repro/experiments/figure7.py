"""Figure 7: number of forwarding rules vs number of prefix groups.

Thin wrapper over :mod:`repro.experiments.scaling`; the rule count
should grow **linearly** with the number of prefix groups, with a slope
that increases with the number of participants (each group costs a
default rule plus one rule per policy clause that touches it).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.scaling import (
    DEFAULT_PARTICIPANTS,
    DEFAULT_POLICY_PREFIXES,
    ScalingResult,
    run_sweep,
)

__all__ = ["run"]


def run(
    participants_sweep: Sequence[int] = DEFAULT_PARTICIPANTS,
    policy_prefix_sweep: Sequence[int] = DEFAULT_POLICY_PREFIXES,
    seed: int = 5,
) -> ScalingResult:
    """Run the sweep and return the (groups, rules) points."""
    return run_sweep(
        participants_sweep=participants_sweep,
        policy_prefix_sweep=policy_prefix_sweep,
        seed=seed,
    )
