"""Naive-compilation baseline: the §4.2 rule-explosion comparison.

The paper justifies the VNH/VMAC design by the state a naive compiler
would need ("millions of forwarding rules" at 500k prefixes).  This
experiment compiles the same §6.1 workload both ways and reports the
rule counts side by side; the ratio grows with the routing-table size,
extrapolating to the paper's claim.
"""

from __future__ import annotations

import time
from typing import List, NamedTuple, Sequence, Tuple

from repro.core.naive import compile_naive
from repro.experiments.common import build_scenario, print_table

__all__ = ["BaselineResult", "run"]

DEFAULT_SWEEP: Tuple[Tuple[int, int], ...] = ((30, 1000), (40, 2000), (50, 3000))


class BaselineResult(NamedTuple):
    """Side-by-side naive/VMAC compilation outcomes per sweep point."""

    #: (participants, prefixes, naive rules, vmac rules, naive s, vmac s)
    rows: List[Tuple[int, int, int, int, float, float]]

    def print(self) -> None:
        """Render the comparison as an aligned table."""
        print_table(
            "Naive vs VMAC compilation (the §4.2 state-reduction argument)",
            ["participants", "prefixes", "naive rules", "VMAC rules", "ratio", "naive (s)", "VMAC (s)"],
            [
                (
                    participants,
                    prefixes,
                    naive,
                    vmac,
                    f"{naive / max(vmac, 1):.1f}x",
                    f"{naive_s:.1f}",
                    f"{vmac_s:.1f}",
                )
                for participants, prefixes, naive, vmac, naive_s, vmac_s in self.rows
            ],
        )


def run(sweep: Sequence[Tuple[int, int]] = DEFAULT_SWEEP, seed: int = 4) -> BaselineResult:
    """Compile each sweep point with both strategies."""
    rows: List[Tuple[int, int, int, int, float, float]] = []
    for participants, prefixes in sweep:
        scenario = build_scenario(participants=participants, prefixes=prefixes, seed=seed)
        started = time.perf_counter()
        naive = compile_naive(
            scenario.ixp.config, scenario.route_server, scenario.workload.policies
        )
        naive_seconds = time.perf_counter() - started
        started = time.perf_counter()
        vmac = scenario.compiler().compile(scenario.workload.policies)
        vmac_seconds = time.perf_counter() - started
        rows.append(
            (
                participants,
                prefixes,
                naive.rules,
                vmac.stats.rules,
                naive_seconds,
                vmac_seconds,
            )
        )
    return BaselineResult(rows)
