"""Figure 8: initial compilation time vs number of prefix groups.

Thin wrapper over :mod:`repro.experiments.scaling`; compile time should
grow **faster than linearly** with the number of prefix groups (policy
interactions multiply), and increase with the participant count.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.scaling import (
    DEFAULT_PARTICIPANTS,
    DEFAULT_POLICY_PREFIXES,
    ScalingResult,
    run_sweep,
)

__all__ = ["run"]


def run(
    participants_sweep: Sequence[int] = DEFAULT_PARTICIPANTS,
    policy_prefix_sweep: Sequence[int] = DEFAULT_POLICY_PREFIXES,
    seed: int = 5,
) -> ScalingResult:
    """Run the sweep and return the (groups, compile-time) points."""
    return run_sweep(
        participants_sweep=participants_sweep,
        policy_prefix_sweep=policy_prefix_sweep,
        seed=seed,
    )
