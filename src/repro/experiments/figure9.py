"""Figure 9: additional forwarding rules after a BGP update burst.

The fast path (Section 4.3.2) reacts to each best-path change by
allocating a fresh VNH and installing per-prefix rules at higher
priority, deferring re-optimization.  This experiment replays the
paper's **worst case**: every update in a burst changes the best path,
so every update costs one VNH and a block of extra rules.  The extra
rule count should grow **linearly** with burst size, with a slope that
grows with the number of participants carrying policies.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, BGPUpdate
from repro.experiments.common import build_scenario, print_table

__all__ = ["Figure9Result", "run"]

DEFAULT_PARTICIPANTS = (100, 200, 300)
DEFAULT_BURST_SIZES = (5, 10, 20, 40, 60, 80, 100)


class Figure9Result(NamedTuple):
    """(burst size, additional rules) series per participant count."""

    #: {participants: [(burst_size, additional_rules), ...]}
    series: Dict[int, List[Tuple[int, int]]]

    def print(self) -> None:
        """Render the rule-inflation series as a table."""
        rows = []
        for participants in sorted(self.series):
            for burst, extra in self.series[participants]:
                rows.append((participants, burst, extra, f"{extra / max(burst, 1):.1f}"))
        print_table(
            "Figure 9 — additional rules vs burst size (linear growth expected)",
            ["participants", "burst size", "additional rules", "rules/update"],
            rows,
        )


def _worst_case_burst(
    scenario, size: int, rng: random.Random, prefix_pool=None
) -> List[BGPUpdate]:
    """A burst where every update flips the touched prefix's best path.

    Each update re-announces an existing prefix from its owner with a
    *shorter* AS path, guaranteeing a best-path change.  ``prefix_pool``
    optionally restricts the sample (the worst case touches prefixes
    that participant policies actually cover, so each update drags
    policy fragments into the fast-path rules).
    """
    ixp = scenario.ixp
    pool = None if prefix_pool is None else set(prefix_pool)
    owners = [
        (name, prefix)
        for name, prefixes in sorted(ixp.announced.items())
        for prefix in prefixes
        if pool is None or prefix in pool
    ]
    if not owners:
        return []
    if size >= len(owners):
        picked = list(owners)
    else:
        picked = rng.sample(owners, size)
    updates = []
    for name, prefix in picked:
        spec = ixp.config.participant(name)
        port = spec.ports[rng.randrange(len(spec.ports))]
        updates.append(
            BGPUpdate(
                name,
                announced=[
                    Announcement(
                        prefix,
                        RouteAttributes(as_path=[spec.asn], next_hop=port.address),
                    )
                ],
            )
        )
    return updates


def run(
    participants_sweep: Sequence[int] = DEFAULT_PARTICIPANTS,
    burst_sizes: Sequence[int] = DEFAULT_BURST_SIZES,
    prefixes_per_participant: int = 10,
    seed: int = 6,
) -> Figure9Result:
    """Measure fast-path rule inflation per burst size."""
    series: Dict[int, List[Tuple[int, int]]] = {}
    for participants in participants_sweep:
        scenario = build_scenario(
            participants=participants,
            prefixes=max(participants * prefixes_per_participant, 1000),
            seed=seed,
        )
        points: List[Tuple[int, int]] = []
        for burst_size in burst_sizes:
            controller = scenario.controller()
            result = controller.compile()
            affected = frozenset(
                prefix
                for group in result.fec_table.affected_groups
                for prefix in group.prefixes
            )
            rng = random.Random(seed + burst_size)
            burst = _worst_case_burst(
                scenario, burst_size, rng, prefix_pool=affected or None
            )
            for update in burst:
                controller.routing.process_update(update)
            # The fast path maintains its override footprint as a gauge,
            # so the measurement is O(1) instead of a full-table diff.
            metrics = controller.ops.metrics()
            (gauge_series,) = metrics["sdx_fastpath_extra_rules"]["series"]
            additional = int(gauge_series["value"])
            points.append((burst_size, additional))
        series[participants] = points
    return Figure9Result(series)
