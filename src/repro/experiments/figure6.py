"""Figure 6: number of prefix groups vs number of prefixes with policies.

The paper's §6.2 experiment: take the top-N ASes by prefix count, pick
``x`` prefixes at random from the routing table, intersect each AS's
announced set with the sample, and run Minimum Disjoint Subsets over
the collection.  The group count should grow **sub-linearly** in ``x``
and sit far below it.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.core.fec import minimum_disjoint_subsets
from repro.experiments.common import print_table
from repro.netutils.ip import IPv4Prefix
from repro.workloads.topology_gen import SyntheticIXP, generate_ixp

__all__ = ["Figure6Result", "run"]

DEFAULT_PARTICIPANTS = (100, 200, 300)
DEFAULT_PREFIX_SWEEP = (1000, 5000, 10000, 15000, 20000, 25000)


class Figure6Result(NamedTuple):
    """(prefixes, prefix groups) series per participant count."""

    #: {participants: [(prefixes_with_policies, prefix_groups), ...]}
    series: Dict[int, List[Tuple[int, int]]]

    def print(self) -> None:
        """Render the group-count series as a table."""
        rows = []
        for participants in sorted(self.series):
            for prefixes, groups in self.series[participants]:
                rows.append((participants, prefixes, groups, f"{groups / max(prefixes, 1):.3f}"))
        print_table(
            "Figure 6 — prefix groups vs prefixes (sub-linear growth expected)",
            ["participants", "prefixes w/ policies", "prefix groups", "groups/prefix"],
            rows,
        )

    def groups_at(self, participants: int, prefixes: int) -> int:
        """The measured group count at one sweep point."""
        for sampled, groups in self.series[participants]:
            if sampled == prefixes:
                return groups
        raise KeyError((participants, prefixes))


def run(
    participants_sweep: Sequence[int] = DEFAULT_PARTICIPANTS,
    prefix_sweep: Sequence[int] = DEFAULT_PREFIX_SWEEP,
    total_prefixes: int = 30000,
    seed: int = 5,
    repeats: int = 1,
) -> Figure6Result:
    """Run the MDS sweep.

    One synthetic exchange (sized for the largest sweep point) is
    shared by all the runs; ``repeats`` > 1 averages over resampled
    policy-prefix sets, as the paper repeats each experiment ten times.
    """
    max_participants = max(participants_sweep)
    ixp = generate_ixp(
        participants=max_participants, total_prefixes=total_prefixes, seed=seed
    )
    # Per-AS announcement sets from the full BGP table (backups included),
    # matching the paper's "let p_i be the set of prefixes announced by
    # AS i" over the default-free routing table.
    announcement_sets = ixp.announcement_sets()
    by_count = sorted(
        ixp.participant_names, key=lambda name: -len(announcement_sets[name])
    )
    table: List[IPv4Prefix] = ixp.all_prefixes()
    rng = random.Random(seed + 1)

    series: Dict[int, List[Tuple[int, int]]] = {}
    for participants in participants_sweep:
        top = by_count[:participants]
        announced = {name: announcement_sets[name] for name in top}
        points: List[Tuple[int, int]] = []
        for sample_size in prefix_sweep:
            sample_size = min(sample_size, len(table))
            totals = 0
            for _ in range(repeats):
                sampled = frozenset(rng.sample(table, sample_size))
                collection = [
                    announced[name] & sampled
                    for name in top
                    if announced[name] & sampled
                ]
                totals += len(minimum_disjoint_subsets(collection))
            points.append((sample_size, totals // repeats))
        series[participants] = points
    return Figure6Result(series)
