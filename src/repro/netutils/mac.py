"""MAC addresses and sequential allocators.

SDX turns the destination MAC field into a tag: the *virtual MAC* (VMAC)
identifies the forwarding equivalence class a packet belongs to.  The
:class:`MACAllocator` hands out addresses from a reserved
locally-administered block so VMACs can never collide with the physical
addresses of participant router interfaces.
"""

from __future__ import annotations

import re
from typing import Iterator

__all__ = ["MACAddress", "MACAllocator", "MACMask", "mac"]

_MAX_MAC = (1 << 48) - 1
_MAC_RE = re.compile(r"^([0-9a-fA-F]{2})(?::([0-9a-fA-F]{2})){5}$")


class MACAddress:
    """An immutable 48-bit MAC address, printed in colon-hex form."""

    __slots__ = ("_value",)

    def __init__(self, address: "int | str | MACAddress") -> None:
        if isinstance(address, MACAddress):
            value = address._value
        elif isinstance(address, int):
            value = address
        elif isinstance(address, str):
            text = address.strip().lower()
            if _MAC_RE.match(text) is None:
                raise ValueError(f"not a MAC address: {address!r}")
            value = int(text.replace(":", ""), 16)
        else:
            raise TypeError(f"cannot build MACAddress from {type(address).__name__}")
        if not 0 <= value <= _MAX_MAC:
            raise ValueError(f"MAC address out of range: {value}")
        self._value = value

    @property
    def value(self) -> int:
        """The address as a 48-bit unsigned integer."""
        return self._value

    @property
    def is_locally_administered(self) -> bool:
        """True when the locally-administered bit (bit 1 of octet 0) is set."""
        return bool((self._value >> 40) & 0x02)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        # No implicit string comparison: a == b must imply equal hashes,
        # and MACs are dict keys throughout the data plane.
        if isinstance(other, MACAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("MACAddress", self._value))

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"


def mac(address: "int | str | MACAddress") -> MACAddress:
    """Shorthand constructor: ``mac("02:00:00:00:00:01")``."""
    return MACAddress(address)


class MACMask:
    """A masked destination-MAC match value: ``packet & mask == value``.

    This is the OpenFlow ``dl_dst/mask`` construct the superset VMAC
    encoding relies on: one rule can match a whole attribute field of
    the VMAC (a superset id, a single participant-position bit, the
    next-hop bits) while ignoring the rest.  Stored canonically — bits
    outside the mask are zeroed — so equal matchers compare and hash
    equal.
    """

    __slots__ = ("_value", "_mask")

    def __init__(self, value: "int | str | MACAddress", mask: "int | str | MACAddress") -> None:
        mask_value = int(mask) if isinstance(mask, int) else int(MACAddress(mask))
        if not 0 <= mask_value <= _MAX_MAC:
            raise ValueError(f"MAC mask out of range: {mask_value}")
        raw = int(value) if isinstance(value, int) else int(MACAddress(value))
        if not 0 <= raw <= _MAX_MAC:
            raise ValueError(f"MAC value out of range: {raw}")
        self._mask = mask_value
        self._value = raw & mask_value

    @property
    def value(self) -> MACAddress:
        """The required bits, as an address (don't-care bits zeroed)."""
        return MACAddress(self._value)

    @property
    def mask(self) -> int:
        """The care-bit mask as a 48-bit unsigned integer."""
        return self._mask

    @property
    def is_exact(self) -> bool:
        """True when every bit is constrained (equivalent to an address)."""
        return self._mask == _MAX_MAC

    def matches(self, address: "int | MACAddress") -> bool:
        """True when a concrete address satisfies this matcher."""
        return (int(address) & self._mask) == self._value

    def covers(self, other: "MACMask | MACAddress") -> bool:
        """True when every address matching ``other`` also matches ``self``."""
        if isinstance(other, MACAddress):
            return self.matches(other)
        return (other._mask & self._mask) == self._mask and (
            other._value & self._mask
        ) == self._value

    def intersect(self, other: "MACMask | MACAddress") -> "MACMask | MACAddress | None":
        """The conjunction of two matchers; ``None`` when disjoint.

        Returns a plain :class:`MACAddress` when the conjunction pins
        every bit, keeping match values canonical.
        """
        if isinstance(other, MACAddress):
            return other if self.matches(other) else None
        common = self._mask & other._mask
        if (self._value & common) != (other._value & common):
            return None
        merged = MACMask(self._value | other._value, self._mask | other._mask)
        return merged.simplified()

    def simplified(self) -> "MACMask | MACAddress":
        """This matcher, collapsed to an address when fully constrained."""
        if self.is_exact:
            return MACAddress(self._value)
        return self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACMask):
            return self._value == other._value and self._mask == other._mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("MACMask", self._value, self._mask))

    def __str__(self) -> str:
        return f"{MACAddress(self._value)}/{MACAddress(self._mask)}"

    def __repr__(self) -> str:
        return f"MACMask({str(MACAddress(self._value))!r}, {str(MACAddress(self._mask))!r})"


class MACAllocator:
    """Sequential MAC allocator inside a fixed locally-administered block.

    ``base`` defaults to ``02:a5:00:00:00:00``, leaving room for 2**32
    allocations — far beyond the number of VMACs any IXP needs.
    """

    def __init__(self, base: "int | str | MACAddress" = 0x02A5_0000_0000, capacity: int = 1 << 32) -> None:
        self._base = int(MACAddress(base))
        self._capacity = capacity
        self._next = 0

    @property
    def allocated(self) -> int:
        """How many addresses have been handed out so far."""
        return self._next

    def allocate(self) -> MACAddress:
        """Return the next unused address in the block."""
        if self._next >= self._capacity:
            raise RuntimeError("MAC allocator exhausted")
        address = MACAddress(self._base + self._next)
        self._next += 1
        return address

    def allocate_many(self, count: int) -> Iterator[MACAddress]:
        """Yield ``count`` fresh addresses."""
        for _ in range(count):
            yield self.allocate()

    def reset(self) -> None:
        """Forget all allocations; subsequent calls reuse the block from 0."""
        self._next = 0

    def __repr__(self) -> str:
        return f"MACAllocator(base={MACAddress(self._base)}, allocated={self._next})"
