"""Header-field registry shared by packets, predicates, and actions.

Every packet header the SDX data plane can match on or rewrite is
declared here once, together with how raw user input (strings, ints,
``IPv4Prefix`` …) is normalized for three different uses:

* as a **packet value** (a concrete header, e.g. an ``IPv4Address``);
* as a **match value** (possibly a set-like value, e.g. an ``IPv4Prefix``);
* as a **test** of a packet value against a match value.

Keeping this in one table means the policy compiler, the flow-table
matcher, and the interpreter can never disagree about what
``match(dstip="10.0.0.0/8")`` means.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, NamedTuple

from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress, MACMask

__all__ = [
    "FIELDS",
    "FieldSpec",
    "normalize_match_value",
    "normalize_packet_value",
    "match_value_covers",
    "match_values_intersect",
    "value_satisfies_match",
]


class FieldSpec(NamedTuple):
    """How one header field is normalized and compared."""

    name: str
    packet_type: str  # 'ip' | 'mac' | 'int' | 'any'
    description: str


FIELDS: Dict[str, FieldSpec] = {
    "switch": FieldSpec("switch", "any", "datapath the packet currently resides on"),
    "port": FieldSpec("port", "any", "ingress/egress port (the packet's location)"),
    "srcmac": FieldSpec("srcmac", "mac", "Ethernet source address"),
    "dstmac": FieldSpec("dstmac", "mac", "Ethernet destination address (VMAC tag at the SDX)"),
    "ethtype": FieldSpec("ethtype", "int", "Ethernet payload type"),
    "vlan": FieldSpec("vlan", "int", "802.1Q VLAN id"),
    "srcip": FieldSpec("srcip", "ip", "IPv4 source address"),
    "dstip": FieldSpec("dstip", "ip", "IPv4 destination address"),
    "tos": FieldSpec("tos", "int", "IP type-of-service byte"),
    "proto": FieldSpec("proto", "int", "IP protocol number"),
    "srcport": FieldSpec("srcport", "int", "TCP/UDP source port"),
    "dstport": FieldSpec("dstport", "int", "TCP/UDP destination port"),
}


def _field_spec(field: str) -> FieldSpec:
    try:
        return FIELDS[field]
    except KeyError:
        raise ValueError(f"unknown header field {field!r}; known: {sorted(FIELDS)}") from None


def normalize_packet_value(field: str, value: Any) -> Any:
    """Normalize a concrete header value carried by a packet."""
    spec = _field_spec(field)
    if value is None:
        return None
    if spec.packet_type == "ip":
        return IPv4Address(value)
    if spec.packet_type == "mac":
        return MACAddress(value)
    if spec.packet_type == "int":
        return int(value)
    return value


def normalize_match_value(field: str, value: Any) -> Any:
    """Normalize a value used inside a match predicate.

    IP fields become :class:`IPv4Prefix` (a bare address becomes a /32),
    MAC fields become :class:`MACAddress`, integer fields become ``int``.
    """
    spec = _field_spec(field)
    if spec.packet_type == "ip":
        if isinstance(value, IPv4Prefix):
            return value
        if isinstance(value, IPv4Address):
            return value.to_prefix()
        if isinstance(value, str) and "/" in value:
            return IPv4Prefix(value)
        return IPv4Address(value).to_prefix()
    if spec.packet_type == "mac":
        if isinstance(value, MACMask):
            return value.simplified()
        return MACAddress(value)
    if spec.packet_type == "int":
        return int(value)
    return value


def match_values_intersect(field: str, left: Any, right: Any) -> Any:
    """Intersection of two match values; ``None`` when disjoint.

    For IP fields this is CIDR intersection (the longer prefix when
    nested); MAC fields intersect bit-masked (:class:`MACMask`); all
    other fields intersect only on equality.
    """
    if isinstance(left, IPv4Prefix) and isinstance(right, IPv4Prefix):
        return left.intersection(right)
    if isinstance(left, MACMask):
        return left.intersect(right) if isinstance(right, (MACMask, MACAddress)) else None
    if isinstance(right, MACMask):
        return right.intersect(left) if isinstance(left, MACAddress) else None
    return left if left == right else None


def match_value_covers(field: str, general: Any, specific: Any) -> bool:
    """True if every packet satisfying ``specific`` also satisfies ``general``."""
    if isinstance(general, IPv4Prefix) and isinstance(specific, IPv4Prefix):
        return general.contains(specific)
    if isinstance(general, MACMask):
        return general.covers(specific) if isinstance(specific, (MACMask, MACAddress)) else False
    if isinstance(specific, MACMask):
        # An exact value never covers a strictly-masked matcher
        # (exact MACMasks are normalized away to MACAddress).
        return False
    return general == specific


def value_satisfies_match(field: str, packet_value: Any, match_value: Any) -> bool:
    """Test a packet's concrete header value against a match value."""
    if packet_value is None:
        return False
    if isinstance(match_value, IPv4Prefix):
        return match_value.contains(packet_value)
    if isinstance(match_value, MACMask):
        return isinstance(packet_value, (int, MACAddress)) and match_value.matches(
            packet_value
        )
    return packet_value == match_value
