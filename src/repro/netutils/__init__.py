"""Low-level networking primitives shared by every SDX subsystem.

This package deliberately avoids any third-party dependency: IPv4
addresses and prefixes are modelled as lightweight, hashable value
objects tuned for the operations the SDX control plane performs millions
of times per compilation (prefix containment, intersection, and
longest-prefix match).
"""

from repro.netutils.ip import (
    IPv4Address,
    IPv4Prefix,
    PrefixTrie,
    ip,
    prefix,
)
from repro.netutils.mac import MACAddress, MACAllocator, mac

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "PrefixTrie",
    "MACAddress",
    "MACAllocator",
    "ip",
    "mac",
    "prefix",
]
