"""IPv4 addresses, prefixes, and a longest-prefix-match trie.

The SDX compiler manipulates prefixes constantly: BGP reachability
filters intersect participant policies with advertised prefixes, the FEC
computation buckets prefixes by forwarding behaviour, and border-router
FIBs resolve destinations by longest-prefix match.  The classes here are
immutable and hashable so they can live in sets, dict keys, and
``hypothesis`` strategies without surprises.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["IPv4Address", "IPv4Prefix", "PrefixTrie", "ip", "prefix"]

_MAX_IPV4 = (1 << 32) - 1
_DOTTED_QUAD_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

T = TypeVar("T")


def _parse_dotted_quad(text: str) -> int:
    """Return the 32-bit integer encoded by ``text`` (e.g. ``"10.0.0.1"``)."""
    match = _DOTTED_QUAD_RE.match(text.strip())
    if match is None:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise ValueError(f"octet out of range in IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class IPv4Address:
    """An immutable IPv4 address.

    Instances compare and sort by numeric value and interoperate with
    :class:`IPv4Prefix` for containment tests::

        >>> ip("10.0.0.1") in prefix("10.0.0.0/8")
        True
    """

    __slots__ = ("_value",)

    def __init__(self, address: "int | str | IPv4Address") -> None:
        if isinstance(address, IPv4Address):
            value = address._value
        elif isinstance(address, int):
            value = address
        elif isinstance(address, str):
            value = _parse_dotted_quad(address)
        else:
            raise TypeError(f"cannot build IPv4Address from {type(address).__name__}")
        if not 0 <= value <= _MAX_IPV4:
            raise ValueError(f"IPv4 address out of range: {value}")
        self._value = value

    @property
    def value(self) -> int:
        """The address as a 32-bit unsigned integer."""
        return self._value

    def to_prefix(self) -> "IPv4Prefix":
        """Return this address as a host (/32) prefix."""
        return IPv4Prefix(self._value, 32)

    def __int__(self) -> int:
        return self._value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)

    def __eq__(self, other: object) -> bool:
        # Strings deliberately do not compare equal: a == b must imply
        # hash(a) == hash(b), and these objects live in dict keys.
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __le__(self, other: "IPv4Address") -> bool:
        return self._value <= other._value

    def __gt__(self, other: "IPv4Address") -> bool:
        return self._value > other._value

    def __ge__(self, other: "IPv4Address") -> bool:
        return self._value >= other._value

    def __hash__(self) -> int:
        return hash(("IPv4Address", self._value))

    def __str__(self) -> str:
        return _format_dotted_quad(self._value)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


class IPv4Prefix:
    """An immutable IPv4 prefix (CIDR block), e.g. ``10.0.0.0/8``.

    The network address is canonicalized: host bits beyond the mask are
    cleared on construction, so ``IPv4Prefix("10.1.2.3/8")`` equals
    ``IPv4Prefix("10.0.0.0/8")``.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network: "int | str | IPv4Address | IPv4Prefix", length: Optional[int] = None) -> None:
        if isinstance(network, IPv4Prefix):
            value, plen = network._network, network._length
            if length is not None and length != plen:
                raise ValueError("conflicting prefix lengths")
        elif isinstance(network, str) and "/" in network:
            if length is not None:
                raise ValueError("prefix length given twice")
            addr_text, _, len_text = network.partition("/")
            value = _parse_dotted_quad(addr_text)
            plen = int(len_text)
        else:
            if length is None:
                raise ValueError("prefix length required")
            value = int(IPv4Address(network)) if not isinstance(network, int) else network
            plen = length
        if not 0 <= plen <= 32:
            raise ValueError(f"prefix length out of range: {plen}")
        if not 0 <= value <= _MAX_IPV4:
            raise ValueError(f"IPv4 network out of range: {value}")
        self._length = plen
        self._network = value & self._mask(plen)

    @staticmethod
    def _mask(length: int) -> int:
        return ((1 << length) - 1) << (32 - length) if length else 0

    @property
    def network(self) -> IPv4Address:
        """The (canonicalized) network address."""
        return IPv4Address(self._network)

    @property
    def length(self) -> int:
        """The prefix length in bits (0-32)."""
        return self._length

    @property
    def netmask(self) -> IPv4Address:
        """The prefix netmask, e.g. ``255.0.0.0`` for a /8."""
        return IPv4Address(self._mask(self._length))

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self._length)

    @property
    def broadcast(self) -> IPv4Address:
        """The highest address in the prefix."""
        return IPv4Address(self._network | (self.num_addresses - 1))

    def host(self, index: int) -> IPv4Address:
        """Return the ``index``-th address inside the prefix.

        Raises :class:`ValueError` when ``index`` falls outside the block.
        """
        if not 0 <= index < self.num_addresses:
            raise ValueError(f"host index {index} outside {self}")
        return IPv4Address(self._network + index)

    def contains(self, other: "IPv4Address | IPv4Prefix | str | int") -> bool:
        """True if ``other`` (address or prefix) lies entirely within self."""
        if isinstance(other, IPv4Prefix):
            return other._length >= self._length and (
                other._network & self._mask(self._length)
            ) == self._network
        addr = other if isinstance(other, IPv4Address) else IPv4Address(other)
        return (int(addr) & self._mask(self._length)) == self._network

    def __contains__(self, other: "IPv4Address | IPv4Prefix | str | int") -> bool:
        return self.contains(other)

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def intersection(self, other: "IPv4Prefix") -> Optional["IPv4Prefix"]:
        """The more-specific of two overlapping prefixes, else ``None``.

        Because CIDR blocks nest, two prefixes either are disjoint or one
        contains the other; the intersection is therefore the longer one.
        """
        if self.contains(other):
            return other
        if other.contains(self):
            return self
        return None

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``."""
        if new_length < self._length or new_length > 32:
            raise ValueError(f"cannot split /{self._length} into /{new_length}")
        step = 1 << (32 - new_length)
        for network in range(self._network, self._network + self.num_addresses, step):
            yield IPv4Prefix(network, new_length)

    def supernet(self, new_length: Optional[int] = None) -> "IPv4Prefix":
        """The containing prefix at ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self._length - 1
        if not 0 <= new_length <= self._length:
            raise ValueError(f"invalid supernet length {new_length} for /{self._length}")
        return IPv4Prefix(self._network, new_length)

    def __eq__(self, other: object) -> bool:
        # No implicit string comparison — see IPv4Address.__eq__.
        if isinstance(other, IPv4Prefix):
            return self._network == other._network and self._length == other._length
        return NotImplemented

    def __lt__(self, other: "IPv4Prefix") -> bool:
        return (self._network, self._length) < (other._network, other._length)

    def __hash__(self) -> int:
        return hash(("IPv4Prefix", self._network, self._length))

    def __str__(self) -> str:
        return f"{_format_dotted_quad(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"


def ip(address: "int | str | IPv4Address") -> IPv4Address:
    """Shorthand constructor: ``ip("10.0.0.1")``."""
    return IPv4Address(address)


def prefix(text: "str | IPv4Prefix", length: Optional[int] = None) -> IPv4Prefix:
    """Shorthand constructor: ``prefix("10.0.0.0/8")`` or ``prefix("10.0.0.0", 8)``."""
    return IPv4Prefix(text, length)


class _TrieNode:
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.value: object = None
        self.has_value = False


class PrefixTrie:
    """A binary trie mapping :class:`IPv4Prefix` keys to values.

    Supports exact-match insert/lookup/delete plus the two queries border
    routers and the SDX runtime need:

    * :meth:`longest_match` — FIB-style longest-prefix match for an address;
    * :meth:`covered_by` — all stored prefixes inside a given block.
    """

    def __init__(self, items: Optional[Iterable[Tuple[IPv4Prefix, object]]] = None) -> None:
        self._root = _TrieNode()
        self._size = 0
        if items:
            for key, value in items:
                self[key] = value

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @staticmethod
    def _bits(pfx: IPv4Prefix) -> Iterator[int]:
        network = int(pfx.network)
        for depth in range(pfx.length):
            yield (network >> (31 - depth)) & 1

    def __setitem__(self, pfx: IPv4Prefix, value: object) -> None:
        node = self._root
        for bit in self._bits(pfx):
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def __getitem__(self, pfx: IPv4Prefix) -> object:
        node = self._find(pfx)
        if node is None or not node.has_value:
            raise KeyError(pfx)
        return node.value

    def __contains__(self, pfx: IPv4Prefix) -> bool:
        node = self._find(pfx)
        return node is not None and node.has_value

    def __delitem__(self, pfx: IPv4Prefix) -> None:
        node = self._find(pfx)
        if node is None or not node.has_value:
            raise KeyError(pfx)
        node.has_value = False
        node.value = None
        self._size -= 1

    def get(self, pfx: IPv4Prefix, default: object = None) -> object:
        """Exact-match lookup with a default (dict.get semantics)."""
        node = self._find(pfx)
        if node is None or not node.has_value:
            return default
        return node.value

    def _find(self, pfx: IPv4Prefix) -> Optional[_TrieNode]:
        node: Optional[_TrieNode] = self._root
        for bit in self._bits(pfx):
            if node is None:
                return None
            node = node.children[bit]
        return node

    def longest_match(self, address: "IPv4Address | str | int") -> Optional[Tuple[IPv4Prefix, object]]:
        """Longest-prefix match for ``address``; ``None`` when nothing covers it."""
        value = int(IPv4Address(address))
        node = self._root
        best: Optional[Tuple[int, object]] = None
        if node.has_value:
            best = (0, node.value)
        for depth in range(32):
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, found = best
        return IPv4Prefix(value, length), found

    def covered_by(self, block: IPv4Prefix) -> Iterator[Tuple[IPv4Prefix, object]]:
        """Iterate all stored (prefix, value) pairs contained in ``block``."""
        node: Optional[_TrieNode] = self._root
        network = int(block.network)
        for depth in range(block.length):
            if node is None:
                return
            node = node.children[(network >> (31 - depth)) & 1]
        if node is None:
            return
        yield from self._walk(node, network, block.length)

    def items(self) -> Iterator[Tuple[IPv4Prefix, object]]:
        """Iterate all stored (prefix, value) pairs in trie order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[IPv4Prefix]:
        for key, _ in self.items():
            yield key

    def _walk(self, node: _TrieNode, network: int, depth: int) -> Iterator[Tuple[IPv4Prefix, object]]:
        stack: List[Tuple[_TrieNode, int, int]] = [(node, network, depth)]
        while stack:
            current, net, d = stack.pop()
            if current.has_value:
                yield IPv4Prefix(net, d), current.value
            one = current.children[1]
            zero = current.children[0]
            if one is not None:
                stack.append((one, net | (1 << (31 - d)), d + 1))
            if zero is not None:
                stack.append((zero, net, d + 1))

    def __repr__(self) -> str:
        return f"PrefixTrie(size={self._size})"
