"""Guarded commits and the multi-tenant admission plane.

The SDX promise — participants independently author policies against a
shared fabric — only survives production if one tenant's *bad* or
*excessive* churn cannot corrupt or starve the others.  PR 5's
differential oracle runs offline; this package moves both defenses
onto the commit path itself:

* :mod:`repro.guard.commits` — **guarded commits**.  Every fabric
  commit is followed, *inside the still-open transaction*, by a
  budgeted sampled differential check (the :mod:`repro.verify` oracle
  with a per-commit probe budget and a deterministic seeded sampler
  focused on the changed FEC groups).  A mismatch rolls the
  :class:`~repro.dataplane.flowtable.FlowTableTransaction` back,
  quarantines the offending participant's shard through the existing
  compile-quarantine machinery, re-commits the last-known-good cache,
  and records the minimized counterexample in an incident log surfaced
  by ``controller.ops.health()``.
* :mod:`repro.guard.admission` — the **admission plane**.
  Per-participant token-bucket rate limits and edit quotas (policy
  edits/sec, announcements/sec, compiled-rule budget) enforced at the
  ``RoutingFacet``/``PolicyFacet`` entry points, with typed rejection
  errors carrying ``retry_after`` and escalating backoff — a
  policy-change storm from one tenant degrades *that tenant*
  gracefully instead of serializing everyone behind it.  Quarantine
  (PR 1) handles bad policies; this handles *too many* policies.
* :mod:`repro.guard.sampling` — the deterministic seeded sampler:
  which prefixes a commit changed (FEC-table delta) and the per-commit
  probe seed derivation.

Both halves report into telemetry as the ``sdx_guard_*`` and
``sdx_admission_*`` metric families.

Quick tour::

    from repro.guard import AdmissionConfig, GuardConfig

    controller = SDXController(
        config,
        guard=GuardConfig(probe_budget=16, seed=7),
        admission=AdmissionConfig(policy_edits_per_sec=2.0,
                                  announcements_per_sec=50.0,
                                  compiled_rule_budget=5_000),
    )
    ...
    report = controller.ops.health()
    for incident in report.incidents:       # guarded-commit outcomes
        print(incident.action, incident.detail)
"""

from repro.guard.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
    AnnouncementRateExceeded,
    PolicyEditRateExceeded,
    RuleBudgetExceeded,
    TokenBucket,
)
from repro.guard.commits import (
    CommitGuard,
    GuardConfig,
    GuardIncident,
    GuardReport,
    GuardedCommitError,
    GuardViolation,
    ProbeFailure,
    RollbackFailure,
)
from repro.guard.sampling import changed_prefixes, probe_seed

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionError",
    "AnnouncementRateExceeded",
    "CommitGuard",
    "GuardConfig",
    "GuardIncident",
    "GuardReport",
    "GuardViolation",
    "GuardedCommitError",
    "PolicyEditRateExceeded",
    "ProbeFailure",
    "RollbackFailure",
    "RuleBudgetExceeded",
    "TokenBucket",
    "changed_prefixes",
    "probe_seed",
]
