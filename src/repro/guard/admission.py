"""The multi-tenant admission plane: rate limits, quotas, backoff.

An IXP's control plane is a shared resource: every policy edit costs a
compile + commit and every announcement costs route-server work plus a
possible fast-path pass.  Without admission control, one tenant's
policy-change storm serializes every other tenant behind it.  This
module enforces *per-participant* budgets at the facet entry points:

* **policy edits/sec** — a token bucket charged by
  ``controller.policy.set_policies``;
* **announcements/sec** — a token bucket charged per announced or
  withdrawn prefix by ``controller.routing.process_update``;
* **compiled-rule budget** — a cap on how many classifier rules one
  participant's policy set may compile to (the memoized AST compile is
  reused by the real compilation, so the check is nearly free).

Rejections are *typed* (:class:`PolicyEditRateExceeded`,
:class:`AnnouncementRateExceeded`, :class:`RuleBudgetExceeded`, all
subclasses of :class:`AdmissionError`) and carry ``retry_after`` so a
well-behaved client can pace itself.  Repeat offenders escalate: each
rejection inside an active backoff window doubles the penalty (up to a
cap), so a tenant that hammers the control plane is shut out for
progressively longer — and recovers automatically after staying quiet.

All quotas default to ``None`` (unlimited): the admission plane is
always *present* but only *enforcing* what the operator configured.
Clocking uses the controller's telemetry time source, so simulated
deployments meter quotas on the sim clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Mapping, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.messages import BGPUpdate
    from repro.core.controller import SDXController
    from repro.core.participant import SDXPolicySet

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionError",
    "AnnouncementRateExceeded",
    "PolicyEditRateExceeded",
    "RuleBudgetExceeded",
    "TokenBucket",
]


class AdmissionConfig(NamedTuple):
    """Operator-configured per-participant budgets (None = unlimited)."""

    #: sustained policy edits per second (token-bucket rate)
    policy_edits_per_sec: Optional[float] = None
    #: policy-edit burst tolerance (token-bucket capacity)
    policy_edit_burst: int = 8
    #: sustained announced/withdrawn prefixes per second
    announcements_per_sec: Optional[float] = None
    #: announcement burst tolerance
    announcement_burst: int = 64
    #: max classifier rules one participant's policy set may compile to
    compiled_rule_budget: Optional[int] = None
    #: first backoff penalty after a rate rejection (seconds)
    backoff_initial: float = 0.5
    #: penalty multiplier for rejections inside an active window
    backoff_factor: float = 2.0
    #: penalty ceiling (seconds)
    backoff_max: float = 30.0

    @property
    def enforcing(self) -> bool:
        """True when at least one budget is finite."""
        return (
            self.policy_edits_per_sec is not None
            or self.announcements_per_sec is not None
            or self.compiled_rule_budget is not None
        )


class AdmissionError(Exception):
    """Base of every typed admission rejection."""

    def __init__(
        self, participant: str, kind: str, detail: str, retry_after: float = 0.0
    ) -> None:
        super().__init__(f"{participant}: {detail}")
        self.participant = participant
        self.kind = kind
        self.detail = detail
        #: seconds until the participant's next request can succeed
        self.retry_after = retry_after


class PolicyEditRateExceeded(AdmissionError):
    """The participant exceeded its policy-edit rate (or is in backoff)."""


class AnnouncementRateExceeded(AdmissionError):
    """The participant exceeded its announcement rate (or is in backoff)."""


class RuleBudgetExceeded(AdmissionError):
    """The policy set compiles to more rules than the participant's budget."""


class TokenBucket:
    """A classic token bucket on an injectable clock.

    ``rate`` tokens accrue per second up to ``capacity``; a request
    takes ``cost`` tokens or is refused.  ``deficit_delay`` reports how
    long until ``cost`` tokens will be available — the honest
    ``retry_after`` for a refused request.
    """

    __slots__ = ("rate", "capacity", "tokens", "_updated")

    def __init__(self, rate: float, capacity: float, now: float = 0.0) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket rate and capacity must be positive")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._updated = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed < 0:
            # The clock went backwards (a reset sim clock, an NTP step).
            # Clamp: credit no tokens for negative time, but re-anchor on
            # the new timeline so refill resumes immediately instead of
            # staying frozen until the clock catches the stale anchor.
            self._updated = now
            return
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; False (untaken) otherwise."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def deficit_delay(self, now: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accrued."""
        self._refill(now)
        missing = cost - self.tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate}, tokens={self.tokens:.2f}/{self.capacity})"


class _TenantState:
    """One participant's buckets, backoff window, and counters."""

    __slots__ = (
        "edit_bucket",
        "announce_bucket",
        "backoff_until",
        "penalty",
        "allowed",
        "rejected",
        "last_rejection",
    )

    def __init__(self, config: AdmissionConfig, now: float) -> None:
        self.edit_bucket = (
            TokenBucket(
                config.policy_edits_per_sec, config.policy_edit_burst, now
            )
            if config.policy_edits_per_sec is not None
            else None
        )
        self.announce_bucket = (
            TokenBucket(
                config.announcements_per_sec, config.announcement_burst, now
            )
            if config.announcements_per_sec is not None
            else None
        )
        self.backoff_until = 0.0
        self.penalty = 0.0
        self.allowed = 0
        self.rejected = 0
        self.last_rejection = ""


class AdmissionController:
    """Per-participant admission state for one controller."""

    def __init__(
        self, controller: "SDXController", config: AdmissionConfig = AdmissionConfig()
    ) -> None:
        self.controller = controller
        self.config = config
        self._tenants: Dict[str, _TenantState] = {}
        telemetry = controller.telemetry
        self._m_allowed = telemetry.counter(
            "sdx_admission_allowed_total",
            "Admitted control-plane requests by kind",
            labels=("kind",),
        )
        self._m_rejected = telemetry.counter(
            "sdx_admission_rejections_total",
            "Rejected control-plane requests by participant and kind",
            labels=("participant", "kind"),
        )
        self._m_backoff = telemetry.histogram(
            "sdx_admission_backoff_seconds",
            "Backoff penalties imposed on rejected participants",
        )
        self._m_throttled = telemetry.gauge(
            "sdx_admission_throttled_participants",
            "Participants currently inside a backoff window",
        )

    # -- clock and state ------------------------------------------------------

    def _now(self) -> float:
        return self.controller.telemetry.now()

    def _tenant(self, name: str, now: float) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(self.config, now)
            self._tenants[name] = state
        return state

    def _sync_throttled(self, now: float) -> None:
        self._m_throttled.set(
            sum(1 for state in self._tenants.values() if state.backoff_until > now)
        )

    # -- rejection and backoff ------------------------------------------------

    def _reject(
        self,
        state: _TenantState,
        name: str,
        kind: str,
        detail: str,
        error: type,
        retry_after: float,
        now: float,
        escalate: bool = True,
    ) -> AdmissionError:
        state.rejected += 1
        state.last_rejection = detail
        self._m_rejected.inc(participant=name, kind=kind)
        if escalate:
            if now < state.backoff_until:
                # Still hammering inside an active window: escalate.
                state.penalty = min(
                    max(state.penalty, self.config.backoff_initial)
                    * self.config.backoff_factor,
                    self.config.backoff_max,
                )
            else:
                state.penalty = self.config.backoff_initial
            state.backoff_until = now + state.penalty
            self._m_backoff.observe(state.penalty)
            retry_after = max(retry_after, state.penalty)
        self._sync_throttled(now)
        return error(name, kind, detail, retry_after=retry_after)

    def _check_backoff(
        self, state: _TenantState, name: str, kind: str, error: type, now: float
    ) -> None:
        if state.backoff_until - now > max(state.penalty, self.config.backoff_max):
            # A legitimate window never extends further than one penalty
            # beyond "now", so a longer remainder means the clock was
            # rewound (reset sim clock).  Re-impose at most the intended
            # penalty on the new timeline rather than locking the tenant
            # out until the clock catches up to the stale deadline.
            state.backoff_until = now + state.penalty
        if now < state.backoff_until:
            raise self._reject(
                state,
                name,
                kind,
                f"in backoff for {state.backoff_until - now:.3f}s more "
                f"(penalty {state.penalty:.3f}s)",
                error,
                retry_after=state.backoff_until - now,
                now=now,
                escalate=True,
            )
        if state.penalty and now >= state.backoff_until + state.penalty:
            # A full quiet penalty-window elapsed: forgive the history.
            state.penalty = 0.0

    # -- entry points ---------------------------------------------------------

    def admit_policy_edit(self, name: str, policy_set: "SDXPolicySet") -> None:
        """Gate one ``set_policies`` call; raises a typed rejection.

        Checks, in order: active backoff window, the edit-rate token
        bucket, then the compiled-rule budget.  The rule count comes
        from the compiler's memoized AST compile, so an admitted policy
        set costs nothing extra at compile time; a policy whose AST
        *raises* is admitted here and left to the compile stage's
        quarantine (admission polices volume, quarantine polices
        correctness).
        """
        now = self._now()
        state = self._tenant(name, now)
        self._check_backoff(state, name, "policy_edit", PolicyEditRateExceeded, now)
        if state.edit_bucket is not None and not state.edit_bucket.try_take(now):
            raise self._reject(
                state,
                name,
                "policy_edit",
                "policy-edit rate exceeded "
                f"({self.config.policy_edits_per_sec}/s, "
                f"burst {self.config.policy_edit_burst})",
                PolicyEditRateExceeded,
                retry_after=state.edit_bucket.deficit_delay(now),
                now=now,
            )
        budget = self.config.compiled_rule_budget
        if budget is not None:
            rules = self._compiled_rules(policy_set)
            if rules is not None and rules > budget:
                raise self._reject(
                    state,
                    name,
                    "rule_budget",
                    f"policy set compiles to {rules} rules, budget is {budget}",
                    RuleBudgetExceeded,
                    retry_after=0.0,
                    now=now,
                    escalate=False,  # a size cap, not a pacing problem
                )
        state.allowed += 1
        self._m_allowed.inc(kind="policy_edit")

    def admit_update(self, update: "BGPUpdate") -> None:
        """Gate one BGP UPDATE; cost = announced + withdrawn prefixes."""
        now = self._now()
        name = update.peer
        state = self._tenant(name, now)
        self._check_backoff(state, name, "announcement", AnnouncementRateExceeded, now)
        if state.announce_bucket is None:
            state.allowed += 1
            self._m_allowed.inc(kind="announcement")
            return
        cost = max(1, len(update.announced) + len(update.withdrawn))
        if not state.announce_bucket.try_take(now, cost):
            raise self._reject(
                state,
                name,
                "announcement",
                f"announcement rate exceeded (cost {cost}, "
                f"{self.config.announcements_per_sec}/s, "
                f"burst {self.config.announcement_burst})",
                AnnouncementRateExceeded,
                retry_after=state.announce_bucket.deficit_delay(now, cost),
                now=now,
            )
        state.allowed += 1
        self._m_allowed.inc(kind="announcement")

    def _compiled_rules(self, policy_set: "SDXPolicySet") -> Optional[int]:
        """Classifier rules this policy set compiles to (None if it raises)."""
        total = 0
        compiler = self.controller.compiler
        try:
            for ast in (policy_set.outbound, policy_set.inbound):
                if ast is not None:
                    total += len(compiler._compile_ast(ast))
        except Exception:  # noqa: BLE001 - broken policies quarantine later
            return None
        return total

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> Mapping[str, Mapping[str, Any]]:
        """Per-participant admission state for ``ops.health()``."""
        now = self._now()
        out: Dict[str, Mapping[str, Any]] = {}
        for name, state in sorted(self._tenants.items()):
            if not (state.rejected or state.penalty or state.backoff_until > now):
                continue
            out[name] = {
                "allowed": state.allowed,
                "rejected": state.rejected,
                "in_backoff": state.backoff_until > now,
                "backoff_remaining": max(0.0, state.backoff_until - now),
                "penalty": state.penalty,
                "last_rejection": state.last_rejection,
            }
        return out

    def __repr__(self) -> str:
        return (
            f"AdmissionController(enforcing={self.config.enforcing}, "
            f"tenants={len(self._tenants)})"
        )
