"""Deterministic seeded sampling support for guarded commits.

The per-commit differential check is *budgeted*: it cannot afford to
probe the whole prefix universe after every commit, so it concentrates
its budget where this commit actually moved state.  Two small, pure
helpers implement that:

* :func:`changed_prefixes` — the FEC-table delta between the previous
  and the new compilation: every prefix belonging to a group that
  appeared, vanished, or changed its (prefix-set, VNH) pairing.  These
  are exactly the prefixes whose encoding, advertisement, or
  forwarding could have been altered by the commit.
* :func:`probe_seed` — the per-commit probe seed.  Derived (not
  random) so that a failing guarded commit replays exactly from the
  guard's base seed and the commit sequence number, the same way the
  fuzz harness replays from its scenario seed.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from repro.core.fec import FECTable
from repro.core.vmac import VirtualNextHop
from repro.netutils.ip import IPv4Prefix

__all__ = ["changed_prefixes", "probe_seed"]

#: Multiplier separating per-commit seed streams; any odd constant much
#: larger than a plausible probe budget works, this one is a prime.
_SEED_STRIDE = 1_000_003


def _group_keys(
    table: Optional[FECTable],
) -> Set[Tuple[FrozenSet[IPv4Prefix], VirtualNextHop]]:
    if table is None:
        return set()
    return {(group.prefixes, group.vnh) for group in table.groups}


def changed_prefixes(
    old: Optional[FECTable], new: Optional[FECTable]
) -> FrozenSet[IPv4Prefix]:
    """Prefixes whose FEC grouping differs between two compilations.

    A group is "the same" iff both its prefix set and its (VNH, VMAC)
    pair survived — the same identity the pipeline's VNH reconciliation
    preserves.  The symmetric difference therefore covers policy-group
    splits/merges, route-driven regrouping, and VNH churn; anything
    outside it kept byte-identical encoding through the commit.  With
    no previous compilation every prefix counts as changed.
    """
    old_keys = _group_keys(old)
    new_keys = _group_keys(new)
    touched: Set[IPv4Prefix] = set()
    for prefixes, _ in old_keys.symmetric_difference(new_keys):
        touched.update(prefixes)
    return frozenset(touched)


def probe_seed(base_seed: int, commit_seq: int) -> int:
    """The deterministic probe seed for commit number ``commit_seq``.

    Distinct commits draw from distinct (but replayable) streams; the
    guard logs ``commit_seq`` in its incidents so a failure reproduces
    as ``ops.verify(budget=..., seed=probe_seed(base, seq))``.
    """
    return base_seed * _SEED_STRIDE + commit_seq
