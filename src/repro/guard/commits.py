"""Guarded commits: budgeted per-commit verification with auto-rollback.

PR 5's differential oracle answers "is the installed fabric right?" when
an operator asks.  :class:`CommitGuard` asks on every commit, *inside*
the still-open :class:`~repro.dataplane.flowtable.FlowTableTransaction`
— the delta patch has been applied in place, so probes traverse exactly
the table that would go live, while rollback is still one call away.

The state machine (see ``docs/internals.md``):

``commit`` → ``sample`` — after the patch, hooks, and admission of a
commit, the guard runs a *budgeted* sampled differential check: a fixed
probe budget, seeded deterministically per commit
(:func:`~repro.guard.sampling.probe_seed`), with sampling focused on the
prefixes this commit actually moved
(:func:`~repro.guard.sampling.changed_prefixes`).

``sample`` → ``rollback`` — any mismatch raises :class:`GuardViolation`
before ``transaction.commit()``; the committer's existing failure path
restores the flow table (membership, order, priorities), fast-path
state, and advertisement map.  The guard then *proves* the rollback:
the table's ``content_hash`` must equal the transaction's checkpoint
digest, byte for byte.

``rollback`` → ``quarantine`` — the counterexample's provenance names
the policy segment that misforwarded; that participant is quarantined
through the same machinery as a compile-time failure (with
``state="guard"`` and an escalating offense count), the last-known-good
table is re-asserted, and a :class:`GuardIncident` — counterexample
included — lands in the bounded incident log that
``controller.ops.health()`` surfaces.

``quarantine`` → ``release`` — an operator releases via
``ops.release_quarantine``; the participant's next policy edit also
clears it.  Re-offending re-quarantines with a higher offense count.

Verification *infrastructure* failures fail open: a probe pass that
itself raises (see :meth:`CommitGuard.arm_fault` and
``FaultInjector.fail_probe``) records a ``probe-failure`` incident and
lets the commit stand — the guard must never turn its own bugs into an
outage.  A rollback that cannot be proven clean fails *closed* with
:class:`RollbackFailure`: at that point the fabric state is unknown and
silence would be a lie.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.dataplane.reconcile import TablePatch, diff, is_base_cookie, target_specs
from repro.guard.sampling import changed_prefixes, probe_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compiler import CompilationResult
    from repro.core.controller import SDXController
    from repro.dataplane.flowtable import FlowTableTransaction
    from repro.verify.checker import CheckReport

__all__ = [
    "CommitGuard",
    "GuardConfig",
    "GuardIncident",
    "GuardReport",
    "GuardViolation",
    "GuardedCommitError",
    "PendingVerification",
    "ProbeFailure",
    "RollbackFailure",
]


class GuardConfig(NamedTuple):
    """How aggressively commits are verified."""

    #: probes sampled per guarded commit (the budget)
    probe_budget: int = 8
    #: base seed; each commit derives its own stream (``probe_seed``)
    seed: int = 0
    #: run the structural invariant sweep too (slower; off by default —
    #: the churn-focused probe diff is the per-commit check)
    invariants: bool = False
    #: master switch (an attached-but-disabled guard keeps its counters)
    enabled: bool = True
    #: incident-log bound (oldest incidents fall off)
    max_incidents: int = 64


class GuardReport(NamedTuple):
    """Outcome of one guarded commit's sampled check."""

    commit_seq: int
    probes: int
    checked: int
    skipped: int
    #: changed prefixes the sampler focused its budget on
    focused: int
    #: the derived per-commit probe seed (replays via ``ops.verify``)
    seed: int
    seconds: float
    ok: bool


class GuardIncident(NamedTuple):
    """One guard intervention, as surfaced by ``ops.health().incidents``."""

    commit_seq: int
    #: "rolled-back" | "probe-failure" | "rollback-failure"
    action: str
    participant: Optional[str]
    detail: str
    #: the minimized counterexample (``Mismatch.explain()``), when any
    counterexample: str
    #: probe seed that found it: ``ops.verify(budget=..., seed=...)`` replays
    seed: int
    #: a quarantine-release race fired while handling this incident
    released_by_race: bool = False

    def __repr__(self) -> str:
        who = self.participant or "unattributed"
        return (
            f"GuardIncident(#{self.commit_seq} {self.action} {who}: {self.detail})"
        )


class GuardViolation(Exception):
    """Internal control flow: sampled probes disagreed, roll back.

    Raised by :meth:`CommitGuard.check_commit` *inside* the commit
    transaction so the committer's failure path restores the fabric;
    the committer then hands it to :meth:`CommitGuard.handle_violation`,
    which never lets it escape (callers see :class:`GuardedCommitError`
    or :class:`RollbackFailure`).
    """

    def __init__(self, report: GuardReport, check: "CheckReport") -> None:
        super().__init__(
            f"guarded commit {report.commit_seq}: "
            f"{len(check.mismatches)} mismatch(es), "
            f"{len(check.violations)} invariant violation(s) "
            f"in {check.checked} probes"
        )
        self.report = report
        self.check = check


class GuardedCommitError(RuntimeError):
    """A commit was verified bad, rolled back, and quarantined.

    The fabric is back to its pre-commit state; ``incident`` carries the
    counterexample and the probe seed that reproduces it.
    """

    def __init__(self, incident: GuardIncident) -> None:
        who = incident.participant or "unattributed"
        super().__init__(
            f"commit {incident.commit_seq} rejected by guard ({who}): "
            f"{incident.detail} — replay with ops.verify(seed={incident.seed})"
        )
        self.incident = incident


class ProbeFailure(RuntimeError):
    """The verification pass itself failed (fail-open fault point)."""


class RollbackFailure(RuntimeError):
    """Rollback could not be proven clean (fail-closed fault point)."""


class PendingVerification:
    """A committed-but-unverified install, held for deferred checking.

    The event-loop runtime commits first and verifies *after*
    ``transaction.commit()`` so compilation of the next result can start
    under the check.  That is sound because ``check_commit``'s success
    path is side-effect-free; the price is that a violation can no
    longer lean on the open transaction — everything rollback needs is
    snapshotted here instead: the transaction's checkpoint (shared Rule
    objects + their pre-commit priorities), the pre-commit fast-path /
    cookie / advertisement state, the VNHs the commit released, and the
    dirty flags the commit cleared.
    """

    __slots__ = (
        "commit_seq",
        "seed",
        "focus",
        "result",
        "transaction",
        "previous",
        "base_cookies",
        "advertised",
        "fast_path",
        "released",
        "dirty",
    )

    def __init__(self, commit_seq, seed, focus, result, transaction) -> None:
        self.commit_seq = commit_seq
        self.seed = seed
        self.focus = focus
        self.result = result
        self.transaction = transaction
        self.previous = None
        self.base_cookies = None
        self.advertised = None
        self.fast_path = None
        self.released = ()
        self.dirty = ((), False, False)

    def complete(
        self, previous, base_cookies, advertised, fast_path, released, dirty
    ) -> None:
        """Fill in the recovery state once the commit has gone through."""
        self.previous = previous
        self.base_cookies = base_cookies
        self.advertised = advertised
        self.fast_path = fast_path
        self.released = released
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"PendingVerification(commit_seq={self.commit_seq}, seed={self.seed})"


class CommitGuard:
    """Per-controller guarded-commit engine (``controller.guard``)."""

    def __init__(
        self, controller: "SDXController", config: GuardConfig = GuardConfig()
    ) -> None:
        self.controller = controller
        self.config = config
        self.last_report: Optional[GuardReport] = None
        self._commit_seq = 0
        self._incidents: List[GuardIncident] = []
        self._offenses: Dict[str, int] = {}
        #: armed fault points ("probe" | "rollback" | "release") -> shots
        self._armed: Dict[str, int] = {}
        telemetry = controller.telemetry
        self._m_checks = telemetry.counter(
            "sdx_guard_checks_total",
            "Guarded-commit verification passes by outcome",
            labels=("outcome",),
        )
        self._m_probes = telemetry.counter(
            "sdx_guard_probes_total", "Probes spent by guarded commits"
        )
        self._m_mismatches = telemetry.counter(
            "sdx_guard_mismatches_total", "Mismatches caught by guarded commits"
        )
        self._m_rollbacks = telemetry.counter(
            "sdx_guard_rollbacks_total", "Commits rolled back by the guard"
        )
        self._m_quarantines = telemetry.counter(
            "sdx_guard_quarantines_total", "Participants quarantined by the guard"
        )
        self._m_seconds = telemetry.histogram(
            "sdx_guard_seconds", "Per-commit sampled verification overhead"
        )

    # -- fault points (chaos harness) ---------------------------------------

    def arm_fault(self, point: str, times: int = 1) -> None:
        """Arm an injected failure: ``"probe"``, ``"rollback"``, ``"release"``."""
        if point not in ("probe", "rollback", "release"):
            raise ValueError(f"unknown guard fault point {point!r}")
        self._armed[point] = self._armed.get(point, 0) + times

    def _fault_fires(self, point: str) -> bool:
        remaining = self._armed.get(point, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            self._armed.pop(point)
        else:
            self._armed[point] = remaining - 1
        return True

    # -- incident log --------------------------------------------------------

    @property
    def incidents(self) -> Tuple[GuardIncident, ...]:
        """The bounded incident log, oldest first."""
        return tuple(self._incidents)

    def offenses(self, name: str) -> int:
        """How many guard violations have been attributed to ``name``."""
        return self._offenses.get(name, 0)

    def _record_incident(self, incident: GuardIncident) -> None:
        self._incidents.append(incident)
        overflow = len(self._incidents) - self.config.max_incidents
        if overflow > 0:
            del self._incidents[:overflow]

    # -- the sampled check (inside the transaction) -------------------------

    def check_commit(
        self, result: "CompilationResult", patch: TablePatch
    ) -> Optional[GuardReport]:
        """Budgeted differential check of the just-applied patch.

        Runs between ``patch.apply`` and ``transaction.commit``: the
        probes traverse the table exactly as it would go live.  Returns
        the :class:`GuardReport` (None when disabled, or on a no-op
        re-commit of the unchanged last result, or when the pass itself
        fails — fail open).  Raises :class:`GuardViolation` on any
        mismatch so the committer's failure path rolls back.
        """
        if not self.config.enabled:
            return None
        controller = self.controller
        last = controller._last_result
        if patch.is_noop and result is last:
            # Background no-op tick: this exact table already passed.
            return None
        self._commit_seq += 1
        seq = self._commit_seq
        seed = probe_seed(self.config.seed, seq)
        focus = changed_prefixes(
            last.fec_table if last is not None else None, result.fec_table
        )
        from repro.verify.checker import DifferentialChecker

        try:
            if self._fault_fires("probe"):
                raise ProbeFailure(f"injected probe failure at commit {seq}")
            check = DifferentialChecker(controller).check(
                budget=self.config.probe_budget,
                seed=seed,
                invariants=self.config.invariants,
                focus=focus,
            )
        except Exception as exc:  # noqa: BLE001 - fail open, on the record
            self._m_checks.inc(outcome="error")
            self._record_incident(
                GuardIncident(
                    commit_seq=seq,
                    action="probe-failure",
                    participant=None,
                    detail=f"verification pass failed: {type(exc).__name__}: {exc}",
                    counterexample="",
                    seed=seed,
                )
            )
            return None
        report = GuardReport(
            commit_seq=seq,
            probes=check.probes,
            checked=check.checked,
            skipped=check.skipped,
            focused=len(focus),
            seed=seed,
            seconds=check.seconds,
            ok=check.ok,
        )
        self.last_report = report
        self._m_probes.inc(check.probes)
        self._m_seconds.observe(check.seconds)
        if check.ok:
            self._m_checks.inc(outcome="ok")
            return report
        self._m_checks.inc(outcome="mismatch")
        self._m_mismatches.inc(len(check.mismatches) + len(check.violations))
        raise GuardViolation(report, check)

    # -- deferred verification (after the transaction committed) ------------

    def begin_deferred(
        self,
        result: "CompilationResult",
        patch: TablePatch,
        transaction: "FlowTableTransaction",
        previous: Optional["CompilationResult"],
    ) -> Optional[PendingVerification]:
        """Claim a commit sequence number and snapshot what rollback needs.

        Called by the committer *instead of* :meth:`check_commit` when
        verification is deferred: the probe pass moves to
        :meth:`verify_snapshot`, after ``transaction.commit()``, so the
        next compilation can overlap it.  Returns None when the guard is
        disabled or for the no-op re-commit shortcut (same cases where
        ``check_commit`` skips).  The sequence number and derived probe
        seed are fixed *here*, at commit order, so deferral cannot change
        which probe stream a commit is checked against.
        """
        if not self.config.enabled:
            return None
        if patch.is_noop and result is previous:
            return None
        self._commit_seq += 1
        seq = self._commit_seq
        return PendingVerification(
            commit_seq=seq,
            seed=probe_seed(self.config.seed, seq),
            focus=changed_prefixes(
                previous.fec_table if previous is not None else None,
                result.fec_table,
            ),
            result=result,
            transaction=transaction,
        )

    def verify_snapshot(
        self, pending: PendingVerification
    ) -> Optional[GuardReport]:
        """The deferred probe pass for an already-committed install.

        Identical verdict machinery to :meth:`check_commit` — same seed,
        same focus set, same fail-open handling of probe-infrastructure
        errors — but a mismatch can't abort an open transaction anymore,
        so recovery rolls the fabric back from the snapshot captured in
        ``pending`` (and then raises, exactly like the inline path).
        """
        controller = self.controller
        seq = pending.commit_seq
        from repro.verify.checker import DifferentialChecker

        try:
            if self._fault_fires("probe"):
                raise ProbeFailure(f"injected probe failure at commit {seq}")
            check = DifferentialChecker(controller).check(
                budget=self.config.probe_budget,
                seed=pending.seed,
                invariants=self.config.invariants,
                focus=pending.focus,
            )
        except Exception as exc:  # noqa: BLE001 - fail open, on the record
            self._m_checks.inc(outcome="error")
            self._record_incident(
                GuardIncident(
                    commit_seq=seq,
                    action="probe-failure",
                    participant=None,
                    detail=f"verification pass failed: {type(exc).__name__}: {exc}",
                    counterexample="",
                    seed=pending.seed,
                )
            )
            return None
        report = GuardReport(
            commit_seq=seq,
            probes=check.probes,
            checked=check.checked,
            skipped=check.skipped,
            focused=len(pending.focus),
            seed=pending.seed,
            seconds=check.seconds,
            ok=check.ok,
        )
        self.last_report = report
        self._m_probes.inc(check.probes)
        self._m_seconds.observe(check.seconds)
        if check.ok:
            self._m_checks.inc(outcome="ok")
            return report
        self._m_checks.inc(outcome="mismatch")
        self._m_mismatches.inc(len(check.mismatches) + len(check.violations))
        self._handle_deferred_violation(pending, report, check)
        raise AssertionError("unreachable")  # pragma: no cover

    def _handle_deferred_violation(
        self, pending: PendingVerification, report: GuardReport, check: "CheckReport"
    ) -> None:
        """Roll a *committed* bad install back from its snapshot.

        Mirrors the committer's failure path plus :meth:`handle_violation`,
        with one extra step each way: current fast-path overrides (added
        after the bad commit) are flushed before the restore, and the
        VNHs the commit released are re-reserved so the restored result's
        advertisements resolve again.  Always raises.
        """
        controller = self.controller
        pipeline = controller.pipeline
        table = controller.switch.table
        self._m_rollbacks.inc()
        counterexample = ""
        if check.mismatches:
            counterexample = check.mismatches[0].explain()
        elif check.violations:
            counterexample = str(check.violations[0])

        # The committer's failure path, replayed from the snapshot:
        # flush post-commit overrides (releasing their VNHs), restore
        # checkpoint membership/order/priorities, then the fast-path
        # bookkeeping, cookies, advertisements, and last-result pointer.
        controller.fast_path.flush()
        for rule, priority in zip(
            pending.transaction._checkpoint, pending.transaction._priorities
        ):
            rule.priority = priority
        table.restore(pending.transaction._checkpoint)
        controller.fast_path.restore(pending.fast_path)
        controller._base_cookies = list(pending.base_cookies)
        controller._advertised = dict(pending.advertised)
        controller._last_result = pending.previous
        # Undo the commit checkpoint: the released VNHs must resolve
        # again (the restored advertisements still point at them) and
        # stay queued for release by the next *good* commit; the dirty
        # flags the commit cleared are re-marked (unioned — later edits
        # may have dirtied more).
        for vnh in pending.released:
            controller.allocator.reclaim(vnh)
        pipeline._pending_release.extend(pending.released)
        dirty_participants, dirty_routes, dirty_chains = pending.dirty
        for name in dirty_participants:
            pipeline.dirty.mark_policy(name)
        if dirty_routes:
            pipeline.dirty.mark_routes()
        if dirty_chains:
            pipeline.dirty.mark_chains()
        controller._push_routes_to_all()

        injected = self._fault_fires("rollback")
        if injected or table.content_hash() != pending.transaction.checkpoint_digest():
            detail = (
                "injected rollback failure"
                if injected
                else "post-rollback table digest differs from pre-commit checkpoint"
            )
            self._record_incident(
                GuardIncident(
                    commit_seq=report.commit_seq,
                    action="rollback-failure",
                    participant=None,
                    detail=detail,
                    counterexample=counterexample,
                    seed=report.seed,
                )
            )
            raise RollbackFailure(f"guarded commit {report.commit_seq}: {detail}")

        culprit = self._attribute(check, dirty=dirty_participants)
        released = False
        if culprit is not None:
            offenses = self._offenses.get(culprit, 0) + 1
            self._offenses[culprit] = offenses
            pipeline._quarantine(
                culprit,
                "GuardViolation",
                f"guarded commit {report.commit_seq}: "
                f"{len(check.mismatches)} mismatch(es) traced to this policy",
                attempts=1,
                state="guard",
                offenses=offenses,
            )
            self._m_quarantines.inc()
            if self._fault_fires("release"):
                controller.ops.release_quarantine(culprit, recompile=False)
                released = True

        self._reassert_last_good()

        incident = GuardIncident(
            commit_seq=report.commit_seq,
            action="rolled-back",
            participant=culprit,
            detail=(
                f"{len(check.mismatches)} mismatch(es), "
                f"{len(check.violations)} invariant violation(s) in "
                f"{check.checked}/{report.probes} probes "
                f"(seed {report.seed}); fabric restored (deferred)"
            ),
            counterexample=counterexample,
            seed=report.seed,
            released_by_race=released,
        )
        self._record_incident(incident)
        raise GuardedCommitError(incident)

    # -- recovery (after the committer rolled back) -------------------------

    def handle_violation(
        self,
        violation: GuardViolation,
        result: "CompilationResult",
        transaction: "FlowTableTransaction",
    ) -> None:
        """Rollback proof, quarantine, last-known-good re-assert, incident.

        Called by the committer *after* its failure path restored the
        table, fast path, and advertisement map.  Always raises:
        :class:`GuardedCommitError` on a clean recovery,
        :class:`RollbackFailure` when the restored table cannot be
        proven byte-identical to the pre-commit checkpoint.
        """
        controller = self.controller
        table = controller.switch.table
        check = violation.check
        report = violation.report
        self._m_rollbacks.inc()
        counterexample = ""
        if check.mismatches:
            counterexample = check.mismatches[0].explain()
        elif check.violations:
            counterexample = str(check.violations[0])

        injected = self._fault_fires("rollback")
        if injected or table.content_hash() != transaction.checkpoint_digest():
            detail = (
                "injected rollback failure"
                if injected
                else "post-rollback table digest differs from pre-commit checkpoint"
            )
            self._record_incident(
                GuardIncident(
                    commit_seq=report.commit_seq,
                    action="rollback-failure",
                    participant=None,
                    detail=detail,
                    counterexample=counterexample,
                    seed=report.seed,
                )
            )
            raise RollbackFailure(
                f"guarded commit {report.commit_seq}: {detail}"
            ) from violation

        culprit = self._attribute(check)
        released = False
        if culprit is not None:
            offenses = self._offenses.get(culprit, 0) + 1
            self._offenses[culprit] = offenses
            controller.pipeline._quarantine(
                culprit,
                "GuardViolation",
                f"guarded commit {report.commit_seq}: "
                f"{len(check.mismatches)} mismatch(es) traced to this policy",
                attempts=1,
                state="guard",
                offenses=offenses,
            )
            self._m_quarantines.inc()
            if self._fault_fires("release"):
                # The injected race: something lifts the quarantine while
                # the guard is still mid-recovery.  The bad policy will
                # recompile; the guard must simply catch it again.
                controller.ops.release_quarantine(culprit, recompile=False)
                released = True

        self._reassert_last_good()

        incident = GuardIncident(
            commit_seq=report.commit_seq,
            action="rolled-back",
            participant=culprit,
            detail=(
                f"{len(check.mismatches)} mismatch(es), "
                f"{len(check.violations)} invariant violation(s) in "
                f"{check.checked}/{report.probes} probes "
                f"(seed {report.seed}); fabric restored"
            ),
            counterexample=counterexample,
            seed=report.seed,
            released_by_race=released,
        )
        self._record_incident(incident)
        raise GuardedCommitError(incident) from violation

    def _attribute(self, check: "CheckReport", dirty=None) -> Optional[str]:
        """Which participant's policy segment misforwarded?

        The counterexamples' provenance strings (``"policy:NAME"``) name
        the installed segment that decided; when they are unanimous the
        attribution is direct.  When no policy segment decided (the bad
        rule dropped the probe, say), a commit with exactly one dirty
        policy author is blamed on circumstantial evidence — for a
        deferred check the *snapshot* of dirty authors at commit time is
        passed in, since the live tracker has moved on.  Anything else
        stays unattributed — quarantining an innocent tenant is worse
        than leaving an incident for the operator.
        """
        names = set()
        for mismatch in check.mismatches:
            provenance = mismatch.provenance
            if provenance.startswith("policy:"):
                names.add(provenance.split(":", 1)[1])
        if len(names) == 1:
            return next(iter(names))
        if not names:
            if dirty is None:
                dirty = self.controller.pipeline.dirty.participants
            if len(dirty) == 1:
                return next(iter(dirty))
        return None

    def _reassert_last_good(self) -> None:
        """Re-commit the last-known-good table (expected: a no-op diff).

        The transaction rollback already restored the fabric; this
        re-derives the last committed result's target table and applies
        any residual patch, proving "restored" against the *cache*
        rather than trusting the checkpoint alone.  Deliberately not a
        full ``install()``: ``pipeline.on_committed`` must NOT run here
        — it would clear dirty flags for work the failed commit never
        delivered and release VNHs the restored result still advertises.
        """
        controller = self.controller
        last = controller._last_result
        if last is None:
            return
        table = controller.switch.table
        segments = last.segments or ((("all",), last.classifier),)
        placements = dict(getattr(last, "placements", None) or {})
        patch = diff(
            (rule for rule in table if is_base_cookie(rule.cookie)),
            target_specs(segments, placements=placements),
        )
        if patch.is_noop:
            return
        with table.transaction():
            patch.apply(table)

    def __repr__(self) -> str:
        return (
            f"CommitGuard(enabled={self.config.enabled}, "
            f"budget={self.config.probe_budget}, commits={self._commit_seq}, "
            f"incidents={len(self._incidents)})"
        )
