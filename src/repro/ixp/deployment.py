"""Emulated SDX deployments (the Mininet role in the paper's prototype).

:class:`EmulatedIXP` builds a complete, packet-level exchange from an
:class:`~repro.ixp.topology.IXPConfig`:

* one SDN switch holding the controller's compiled rules,
* one border router per (non-remote) participant, wired port-for-port,
* a small LAN (learning switch + hosts) behind each router,
* a shared ARP service carrying the controller's VNH responder.

It is the substrate for the deployment experiments (Figure 5), the
examples, and the integration tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.controller import SDXController
from repro.dataplane.fabric import Fabric, Host
from repro.dataplane.router import BorderRouter, RouterInterface
from repro.dataplane.switch import LearningSwitch
from repro.ixp.topology import IXPConfig
from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress, MACAllocator
from repro.policy.packet import Packet

__all__ = ["EmulatedIXP"]

#: Host MACs come from a separate locally-administered block so they can
#: never collide with router interfaces or VMACs.
_HOST_MAC_BASE = 0x02_DE_00_00_00_00


class EmulatedIXP:
    """A running exchange: controller + fabric + routers + hosts."""

    def __init__(
        self,
        config: IXPConfig,
        controller: Optional[SDXController] = None,
        appliance_ports: Optional[Iterable[str]] = None,
    ) -> None:
        """Build the exchange.

        ``appliance_ports`` names physical ports occupied by directly
        attached devices (middleboxes) instead of a participant border
        router; attach the device itself with :meth:`add_middlebox`.
        """
        self.config = config
        self.controller = (
            controller if controller is not None else SDXController(config)
        )
        self.fabric = Fabric()
        self.fabric.add_node(self.controller.switch)
        self.routers: Dict[str, BorderRouter] = {}
        self.hosts: Dict[str, Host] = {}
        self.middleboxes: Dict[str, "MiddleboxAppliance"] = {}
        self._lans: Dict[str, LearningSwitch] = {}
        self._host_macs = MACAllocator(base=_HOST_MAC_BASE)
        self._host_owner: Dict[str, str] = {}
        self._appliance_ports = frozenset(appliance_ports or ())

        for participant in config.participants():
            router_ports = [
                port
                for port in participant.ports
                if port.port_id not in self._appliance_ports
            ]
            if not router_ports:
                continue  # remote, or every port hosts an appliance
            router = BorderRouter(
                name=f"router-{participant.name}",
                asn=participant.asn,
                interfaces=[
                    RouterInterface(port.port_id, port.address, port.hardware)
                    for port in router_ports
                ],
                arp=self.controller.arp,
            )
            self.fabric.add_node(router)
            for port in router_ports:
                self.fabric.link(
                    (router.name, port.port_id),
                    (self.controller.switch.name, port.port_id),
                )
            lan = LearningSwitch(f"lan-{participant.name}", ports=["uplink"])
            self.fabric.add_node(lan)
            self.fabric.link((router.name, router.internal_port), (lan.name, "uplink"))
            self.routers[participant.name] = router
            self._lans[participant.name] = lan
            self.controller.attach_router(participant.name, router)

    # -- topology building ------------------------------------------------------

    def add_host(
        self,
        name: str,
        participant: str,
        address: "IPv4Address | str",
        originate: "IPv4Prefix | str | None" = None,
    ) -> Host:
        """Attach a host to a participant's internal LAN.

        ``originate`` additionally marks a prefix as locally delivered
        by the participant's router (traffic from the fabric for that
        prefix flows down to the LAN).
        """
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        router = self.routers[participant]
        host = Host(name, address, self._host_macs.allocate())
        self.fabric.add_node(host)
        lan = self._lans[participant]
        lan_port = f"to-{name}"
        lan.add_port(lan_port)
        self.fabric.link((host.name, host.port), (lan.name, lan_port))
        if originate is not None:
            router.originate(originate)
        self.hosts[name] = host
        self._host_owner[name] = participant
        return host

    def add_chain_middlebox(self, name: str, port_id: str, transform=None):
        """Attach an in-line (bump-in-the-wire) middlebox to an appliance port.

        Unlike :meth:`add_middlebox` (a passive sink), this device
        re-emits received frames — transformed by ``transform`` when
        given — so the fabric's service-chain continuation rules can
        carry them onward.
        """
        from repro.dataplane.appliance import MiddleboxAppliance

        if port_id not in self._appliance_ports:
            raise ValueError(f"port {port_id!r} was not declared an appliance port")
        if name in self.hosts or name in self.middleboxes:
            raise ValueError(f"duplicate host name {name!r}")
        appliance = MiddleboxAppliance(name, transform=transform)
        self.fabric.add_node(appliance)
        self.fabric.link(
            (appliance.name, appliance.port), (self.controller.switch.name, port_id)
        )
        self.middleboxes[name] = appliance
        return appliance

    def add_middlebox(self, name: str, port_id: str) -> Host:
        """Attach a middlebox directly to an appliance port.

        The device assumes the port's configured interface address and
        MAC (it *is* the thing plugged into that port) and captures all
        frames it receives, like the paper's video transcoder on E1.
        """
        if port_id not in self._appliance_ports:
            raise ValueError(
                f"port {port_id!r} was not declared an appliance port"
            )
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        port = self.config.owner_of_port(port_id).port(port_id)
        host = Host(name, port.address, port.hardware, promiscuous=True)
        self.fabric.add_node(host)
        self.fabric.link(
            (host.name, host.port), (self.controller.switch.name, port_id)
        )
        self.hosts[name] = host
        return host

    # -- traffic -----------------------------------------------------------------

    def send(self, host_name: str, **headers) -> int:
        """Source one packet from a host and run it through the fabric.

        Returns the number of fabric hops the packet (and any copies)
        traversed; 0 means it died at the first hop (no route, ARP
        failure, or a drop rule).
        """
        host = self.hosts[host_name]
        packet = host.build_packet(**headers)
        return self.fabric.send_from(host.name, host.port, packet)

    def inject_at_port(self, port_id: str, packet: Packet) -> int:
        """Deliver a raw packet into the SDX switch at a physical port."""
        return self.fabric.inject(self.controller.switch.name, port_id, packet)

    # -- measurement ----------------------------------------------------------------

    def delivered_to(self, host_name: str) -> int:
        """Packets a host has received so far."""
        return len(self.hosts[host_name].received)

    def carried_upstream_by(self, participant: str) -> int:
        """Packets a participant's router carried toward its backbone."""
        return len(self.routers[participant].carried_upstream)

    def reset_traffic_counters(self) -> None:
        """Clear host/router/fabric packet logs (not the flow-table counters)."""
        for host in self.hosts.values():
            host.received.clear()
        for router in self.routers.values():
            router.carried_upstream.clear()
            router.delivered.clear()
        self.fabric.reset_counters()

    def __repr__(self) -> str:
        return (
            f"EmulatedIXP(participants={len(self.config)}, hosts={len(self.hosts)})"
        )
