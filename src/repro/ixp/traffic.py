"""Traffic generation and rate measurement for the deployment timelines.

The paper's Figure 5 plots per-path traffic rates (Mbps) over time
while policies are installed and routes withdrawn.  :class:`UDPFlow`
replays the paper's constant-rate 1 Mbps UDP flows on the virtual
clock; :class:`RateMeter` samples arbitrary packet counters per tick
and converts them to Mbps series.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ixp.deployment import EmulatedIXP
from repro.sim.clock import Simulator

__all__ = ["RateMeter", "UDPFlow"]

#: Bytes per emulated UDP datagram (a typical MTU-sized video packet).
PACKET_BYTES = 1250


class UDPFlow:
    """A constant-rate UDP flow sourced from an emulated host.

    ``rate_mbps`` is honoured by sending the right number of
    ``PACKET_BYTES``-sized packets per one-second tick (1 Mbps = 100
    packets of 1250 bytes).  The flow can be retargeted mid-run (the
    wide-area load-balancing experiment rewrites nothing at the source —
    retargeting here models *new clients*, not policy effects).
    """

    def __init__(
        self,
        ixp: EmulatedIXP,
        source_host: str,
        rate_mbps: float = 1.0,
        **headers: Any,
    ) -> None:
        self.ixp = ixp
        self.source_host = source_host
        self.rate_mbps = rate_mbps
        self.headers = dict(headers)
        self.active = False
        self.packets_sent = 0

    @property
    def packets_per_second(self) -> int:
        return max(1, int(self.rate_mbps * 1_000_000 / 8 / PACKET_BYTES))

    def start(self, simulator: Simulator, until: float, interval: float = 1.0) -> None:
        """Schedule the flow on the simulator until virtual time ``until``."""
        self.active = True
        per_tick = max(1, int(self.packets_per_second * interval))

        def send_burst() -> None:
            if not self.active:
                return
            for _ in range(per_tick):
                self.ixp.send(self.source_host, **self.headers)
                self.packets_sent += 1

        # The tick at t covers the traffic of (t - interval, t]; starting
        # one interval in keeps "N seconds of flow" equal to N bursts.
        simulator.schedule_every(
            interval, send_burst, start=simulator.now + interval, until=until
        )

    def stop(self) -> None:
        self.active = False


class RateMeter:
    """Samples named packet counters each tick into Mbps time series."""

    def __init__(self, simulator: Simulator, interval: float = 1.0) -> None:
        self.simulator = simulator
        self.interval = interval
        self._counters: Dict[str, Callable[[], int]] = {}
        self._previous: Dict[str, int] = {}
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    def watch(self, name: str, counter: Callable[[], int]) -> None:
        """Track a monotonically increasing packet counter under ``name``."""
        self._counters[name] = counter
        self._previous[name] = counter()
        self.series[name] = []

    def watch_host(self, name: str, ixp: EmulatedIXP, host: str) -> None:
        """Track deliveries to an emulated host."""
        self.watch(name, lambda: ixp.delivered_to(host))

    def watch_upstream(self, name: str, ixp: EmulatedIXP, participant: str) -> None:
        """Track packets a participant's router carries upstream."""
        self.watch(name, lambda: ixp.carried_upstream_by(participant))

    def start(self, until: float) -> None:
        """Schedule periodic sampling until virtual time ``until``."""

        def sample() -> None:
            now = self.simulator.now
            for name, counter in self._counters.items():
                current = counter()
                delta = current - self._previous[name]
                self._previous[name] = current
                mbps = delta * PACKET_BYTES * 8 / 1_000_000 / self.interval
                self.series[name].append((now, mbps))

        self.simulator.schedule_every(self.interval, sample, until=until)

    def rates_at(self, time: float) -> Dict[str, float]:
        """The measured Mbps of every series at (or just before) ``time``."""
        out: Dict[str, float] = {}
        for name, points in self.series.items():
            rate = 0.0
            for at, mbps in points:
                if at > time:
                    break
                rate = mbps
            out[name] = rate
        return out
