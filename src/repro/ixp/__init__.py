"""IXP modelling: static exchange configuration and deployment helpers."""

from repro.ixp.topology import IXPConfig, ParticipantSpec, PortSpec

__all__ = ["EmulatedIXP", "IXPConfig", "ParticipantSpec", "PortSpec", "RateMeter", "UDPFlow"]

_LAZY = {
    # Deployment helpers depend on repro.core, which itself imports the
    # topology types above; loading them lazily breaks the cycle.
    "EmulatedIXP": "repro.ixp.deployment",
    "RateMeter": "repro.ixp.traffic",
    "UDPFlow": "repro.ixp.traffic",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
