"""Static SDX configuration: participants, ports, addressing.

This is the "SDX configuration" input of Figure 3 — the static record
of which ASes connect to the fabric, on which ports, with which
interface addresses.  Everything else (policies, routes) is dynamic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

from repro.netutils.ip import IPv4Address, IPv4Prefix
from repro.netutils.mac import MACAddress

__all__ = ["IXPConfig", "ParticipantSpec", "PortSpec"]


class PortSpec(NamedTuple):
    """One physical port on the SDX fabric.

    ``port_id`` is the fabric-facing name (``"A1"``); ``address`` and
    ``hardware`` describe the participant router interface plugged into
    it (the peering-LAN IP and physical MAC).
    """

    port_id: str
    address: IPv4Address
    hardware: MACAddress


class ParticipantSpec:
    """One participating AS: name, ASN, and its physical ports.

    Remote participants (wide-area load balancing, Section 3.1) have an
    empty port list — they hold a virtual switch and may announce
    prefixes and install policies without any physical presence.
    """

    def __init__(self, name: str, asn: int, ports: Iterable[PortSpec] = ()) -> None:
        self.name = name
        self.asn = asn
        self.ports: Tuple[PortSpec, ...] = tuple(ports)
        seen = set()
        for port in self.ports:
            if port.port_id in seen:
                raise ValueError(f"duplicate port id {port.port_id!r} on {name!r}")
            seen.add(port.port_id)

    @property
    def is_remote(self) -> bool:
        """True for participants with no physical port at the exchange."""
        return not self.ports

    @property
    def port_ids(self) -> Tuple[str, ...]:
        return tuple(port.port_id for port in self.ports)

    def port(self, port_id: str) -> PortSpec:
        """The port spec for ``port_id`` (KeyError if absent)."""
        for port in self.ports:
            if port.port_id == port_id:
                return port
        raise KeyError(f"participant {self.name!r} has no port {port_id!r}")

    def port_for_address(self, address: "IPv4Address | str") -> Optional[PortSpec]:
        """The port whose interface IP is ``address`` (next-hop resolution)."""
        address = IPv4Address(address)
        for port in self.ports:
            if port.address == address:
                return port
        return None

    def __repr__(self) -> str:
        return (
            f"ParticipantSpec({self.name!r}, asn={self.asn}, "
            f"ports={[p.port_id for p in self.ports]})"
        )


class IXPConfig:
    """The exchange's static configuration.

    Besides the participant table, it fixes the two virtual resource
    pools of Section 4.2: the IP block virtual next-hops are allocated
    from and (implicitly, via the controller's MAC allocator) the VMAC
    block.

    Builder-style usage::

        config = IXPConfig()
        config.add_participant("A", asn=65001, ports=[("A1", "172.0.0.1", "08:00:27:00:00:01")])
    """

    def __init__(
        self,
        vnh_pool: "IPv4Prefix | str" = "172.16.0.0/12",
        name: Optional[str] = None,
    ) -> None:
        self._participants: Dict[str, ParticipantSpec] = {}
        self.vnh_pool = IPv4Prefix(vnh_pool)
        #: optional exchange name; federated deployments label each
        #: member IXP so violations and telemetry can name the fabric
        self.name = name
        # Lazy reverse indexes (registration is append-only, so they are
        # invalidated in add_participant and nowhere else).
        self._port_owners: Optional[Dict[str, ParticipantSpec]] = None
        self._address_owners: Optional[Dict[IPv4Address, ParticipantSpec]] = None
        # Live uniqueness sets so registering N participants costs
        # O(total ports), not O(total ports²) — data-driven topologies
        # ingest hundreds of members and tests build thousands.
        self._used_port_ids: set = set()
        self._used_addresses: set = set()
        self._used_macs: set = set()

    def add_participant(
        self,
        name: str,
        asn: int,
        ports: Iterable[Tuple[str, str, str]] = (),
    ) -> ParticipantSpec:
        """Register a participant from (port_id, ip, mac) triples."""
        if name in self._participants:
            raise ValueError(f"duplicate participant {name!r}")
        specs = [
            PortSpec(port_id, IPv4Address(address), MACAddress(hardware))
            for port_id, address, hardware in ports
        ]
        participant = ParticipantSpec(name, asn, specs)
        self._check_port_collisions(participant)
        self._participants[name] = participant
        for port in participant.ports:
            self._used_port_ids.add(port.port_id)
            self._used_addresses.add(port.address)
            self._used_macs.add(port.hardware)
        self._port_owners = None
        self._address_owners = None
        return participant

    def _check_port_collisions(self, new: ParticipantSpec) -> None:
        for candidate in new.ports:
            if candidate.port_id in self._used_port_ids:
                raise ValueError(f"port id {candidate.port_id!r} already in use")
            if candidate.address in self._used_addresses:
                raise ValueError(f"address {candidate.address} already in use")
            if candidate.hardware in self._used_macs:
                raise ValueError(f"MAC {candidate.hardware} already in use")

    def participant(self, name: str) -> ParticipantSpec:
        return self._participants[name]

    def participant_with_asn(self, asn: int) -> Optional[ParticipantSpec]:
        """The unique participant operating AS ``asn``, if any.

        Federation joins exchanges on ASNs (a transit AS may appear
        under different local names at each IXP), so ambiguity within
        one exchange is an error rather than a silent first-match.
        """
        found = [spec for spec in self._participants.values() if spec.asn == asn]
        if len(found) > 1:
            names = ", ".join(sorted(spec.name for spec in found))
            raise ValueError(f"ASN {asn} registered by multiple participants: {names}")
        return found[0] if found else None

    def participants(self) -> Tuple[ParticipantSpec, ...]:
        return tuple(self._participants.values())

    def participant_names(self) -> Tuple[str, ...]:
        return tuple(self._participants)

    def physical_ports(self) -> Tuple[PortSpec, ...]:
        """All physical ports across participants."""
        return tuple(
            port
            for participant in self._participants.values()
            for port in participant.ports
        )

    def owner_of_port(self, port_id: str) -> ParticipantSpec:
        """The participant owning a given physical port."""
        if self._port_owners is None:
            self._port_owners = {
                port.port_id: participant
                for participant in self._participants.values()
                for port in participant.ports
            }
        try:
            return self._port_owners[port_id]
        except KeyError:
            raise KeyError(f"no participant owns port {port_id!r}") from None

    def owner_of_address(self, address: "IPv4Address | str") -> Optional[ParticipantSpec]:
        """The participant whose interface has ``address``, if any."""
        if self._address_owners is None:
            self._address_owners = {
                port.address: participant
                for participant in self._participants.values()
                for port in participant.ports
            }
        return self._address_owners.get(IPv4Address(address))

    def __contains__(self, name: str) -> bool:
        return name in self._participants

    def __len__(self) -> int:
        return len(self._participants)

    def __repr__(self) -> str:
        return f"IXPConfig(participants={len(self._participants)})"
