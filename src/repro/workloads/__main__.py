"""``python -m repro.workloads`` — the churn-replay smoke CLI.

Delegates to :func:`repro.workloads.scenarios._main`; a package-level
entry point avoids runpy's double-import warning (``__init__`` already
imports :mod:`.scenarios` eagerly).
"""

import sys

from repro.workloads.scenarios import _main

if __name__ == "__main__":
    sys.exit(_main())
